"""Serving-hardening bench: what the WAL and breakers cost at steady state.

The hardening layer (PR 5) must be effectively free on the path that
dominates a steady-state server -- the cache hit.  By construction the
hit path touches neither the journal (hits mutate nothing) nor the
breaker (hits never reach the solve path), so the measured overhead is
the honest price of carrying :class:`~repro.serve.wal.DurablePlanCache`
and a wired :class:`~repro.serve.breaker.BreakerBoard` through the
engine: method-resolution, the extra branch, nothing else.

* **Hit-path overhead** -- serving a repeated identical request through a
  hardened engine (durable cache + breaker board) vs. the plain engine,
  at ``p`` in {4, 16, 64}.  ``overhead_frac`` is gated at <= 5% by
  ``harness.py --check-regression`` (:func:`harness.check_serve_resilience`).
* **Durable insert cost** (informational) -- a journaled, fsynced ``put``
  vs. a plain in-memory ``put``.  This is the price of the durability
  guarantee itself, paid only on cache *misses*; it is recorded so the
  trade is visible, not gated.

Writes ``BENCH_serve_resilience.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_serve_resilience.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve_resilience.py -m bench_smoke
"""

from __future__ import annotations

import gc
import json
import statistics
import tempfile
import time
from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.serve import BreakerBoard, DurablePlanCache, PlanCache, PlanEngine

from bench_plan_cache import SOLVE_OPTIONS, TOTAL, build_models
from harness import fmt, print_table

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_serve_resilience.json"
)

RANKS = (4, 16, 64)


def bench_hit_overhead(
    ranks: Sequence[int] = RANKS, reps: int = 50
) -> Dict[str, Dict]:
    """Cache-hit latency: hardened engine vs. plain engine.

    Identical request streams against identically-primed caches; the only
    difference is the durable cache subclass and the breaker board being
    wired in.  Both sides pay the model fingerprint, the lock and the LRU
    lookup -- the delta is the hardening tax, gated at <= 5%.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        models = build_models(p)
        with tempfile.TemporaryDirectory() as scratch:
            plain = PlanEngine(cache=PlanCache(capacity=16), warm=False)
            hardened = PlanEngine(
                cache=DurablePlanCache(
                    Path(scratch) / "plans.json", capacity=16
                ),
                breakers=BreakerBoard(),
                warm=False,
            )

            def plain_hit():
                return plain.plan(models, TOTAL, options=SOLVE_OPTIONS)

            def hardened_hit():
                return hardened.plan(models, TOTAL, options=SOLVE_OPTIONS)

            assert not plain_hit().cached and plain_hit().cached
            assert not hardened_hit().cached and hardened_hit().cached
            # Pair the two sides round-by-round and take the *median* of
            # the per-round ratios: clock-frequency and scheduler drift
            # hit both halves of a pair equally (so each ratio is clean),
            # and the median discards the rounds a GC pause or a context
            # switch did land in.  GC stays off inside the timed region.
            batch = 4
            ratios = []
            plain_s = hardened_s = float("inf")
            gc_was_enabled = gc.isenabled()
            gc.disable()
            gc.collect()
            try:
                for rep in range(reps):
                    # Alternate which side goes first: any warm-cache
                    # advantage of running second cancels in the median.
                    first, second = (
                        (plain_hit, hardened_hit)
                        if rep % 2 == 0
                        else (hardened_hit, plain_hit)
                    )
                    t0 = time.perf_counter()
                    for _ in range(batch):
                        first()
                    first_s = (time.perf_counter() - t0) / batch
                    t0 = time.perf_counter()
                    for _ in range(batch):
                        second()
                    second_s = (time.perf_counter() - t0) / batch
                    p_round, h_round = (
                        (first_s, second_s)
                        if rep % 2 == 0
                        else (second_s, first_s)
                    )
                    ratios.append(h_round / p_round)
                    plain_s = min(plain_s, p_round)
                    hardened_s = min(hardened_s, h_round)
            finally:
                if gc_was_enabled:
                    gc.enable()
            # Geometric-mean each plain-first/hardened-first pair of
            # rounds: the systematic run-second advantage cancels
            # exactly, leaving the median over pair estimates to absorb
            # whatever scheduling noise remains.
            paired = [
                (ratios[i] * ratios[i + 1]) ** 0.5
                for i in range(0, len(ratios) - 1, 2)
            ]
            assert plain.counters.computations == 1
            assert hardened.counters.computations == 1
            hardened.cache.wal.close()
        out[str(p)] = {
            "plain_hit_s": plain_s,
            "hardened_hit_s": hardened_s,
            "overhead_frac": statistics.median(paired) - 1.0,
            "hits_per_s": 1.0 / hardened_s,
        }
    return out


def bench_durable_put(
    ranks: Sequence[int] = (4,), inserts: int = 64
) -> Dict[str, Dict]:
    """The price of a durable insert (journaled + fsynced) vs. in-memory.

    Informational: this cost is paid once per cache *miss* and buys the
    crash-recovery guarantee.  ``fsync=False`` is included to show how
    much of it is the disk barrier rather than the journalling itself.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        models = build_models(p)
        seed_engine = PlanEngine(cache=PlanCache(capacity=inserts + 1),
                                 warm=False)
        result = seed_engine.plan(models, TOTAL, options=SOLVE_OPTIONS)

        def time_puts(cache) -> float:
            t0 = time.perf_counter()
            for i in range(inserts):
                cache.put(f"bench-key-{i}", result, "bench-models")
            return (time.perf_counter() - t0) / inserts

        plain_s = time_puts(PlanCache(capacity=inserts + 1))
        with tempfile.TemporaryDirectory() as scratch:
            durable = DurablePlanCache(
                Path(scratch) / "a.json", capacity=inserts + 1,
                compact_every=10 * inserts,
            )
            durable_s = time_puts(durable)
            durable.wal.close()
            nosync = DurablePlanCache(
                Path(scratch) / "b.json", capacity=inserts + 1,
                compact_every=10 * inserts, fsync=False,
            )
            nosync_s = time_puts(nosync)
            nosync.wal.close()
        out[str(p)] = {
            "plain_put_s": plain_s,
            "durable_put_s": durable_s,
            "durable_nosync_put_s": nosync_s,
        }
    return out


def run_bench(ranks: Sequence[int] = RANKS, write: bool = True) -> Dict:
    """Run every section; optionally write the repo-root baseline file."""
    results = {
        "total_units": TOTAL,
        "serve_resilience": bench_hit_overhead(ranks=ranks),
        "durable_put": bench_durable_put(),
    }
    if write:
        RESULT_PATH.write_text(
            json.dumps(results, indent=2) + "\n", encoding="utf-8"
        )
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    print_table(
        "hardened vs plain cache-hit latency (WAL + breakers wired)",
        ["p", "plain s", "hardened s", "overhead", "hits/s"],
        [
            [p, fmt(row["plain_hit_s"], 6), fmt(row["hardened_hit_s"], 6),
             fmt(100.0 * row["overhead_frac"], 2) + "%",
             fmt(row["hits_per_s"], 0)]
            for p, row in results["serve_resilience"].items()
        ],
    )
    print_table(
        "durable insert cost (per put, paid on misses only)",
        ["p", "plain s", "journaled+fsync s", "journaled s"],
        [
            [p, fmt(row["plain_put_s"], 6), fmt(row["durable_put_s"], 6),
             fmt(row["durable_nosync_put_s"], 6)]
            for p, row in results["durable_put"].items()
        ],
    )


@pytest.mark.bench_smoke
def test_bench_smoke(capsys):
    """Reduced sweep: hardening must stay under the 5% hit-path ceiling."""
    results = run_bench(ranks=(4, 64), write=False)
    with capsys.disabled():
        report(results)
    from harness import check_serve_resilience

    failures = check_serve_resilience(results)
    assert not failures, "hardening overhead: " + "; ".join(failures)
    for p, row in results["durable_put"].items():
        assert row["durable_put_s"] > 0.0, f"degenerate timing at p={p}"


if __name__ == "__main__":
    report(run_bench())
    print(f"\nresults written to {RESULT_PATH}")
