"""Ablation A6 -- why measurement must be synchronised on multicores.

Section 4.1 of the paper: on multicore nodes, parallel processes interfere
through shared memory, so individual cores must be benchmarked *together*,
synchronised, with resources shared between the maximum number of
processes.  Models built from solo (one-process-at-a-time) benchmarks see
speeds the application will never reach.

We build models both ways on a node with strong contention, partition with
each, and judge by the ground-truth makespan of the *contended* execution
(all processes computing simultaneously, as in the real application).

Shapes asserted: solo models overestimate every core's speed by roughly the
contention factor; the synchronised-model partition achieves an (at least
marginally) better contended makespan and much better predicted-vs-actual
fidelity.
"""

from __future__ import annotations

from harness import achieved_makespan, achieved_times, fmt, imbalance, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.geometric import partition_geometric
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import GaussianNoise
from repro.platform.profiles import CacheHierarchyProfile, ConstantProfile

UNIT_FLOPS = gemm_unit_flops(32)
TOTAL = 30_000
MODEL_SIZES = sorted({int(round(64 * 2 ** (k / 2))) for k in range(18)})


def _platform() -> Platform:
    # A 4-core node with heavy memory-bus contention plus one uncontended
    # uniprocessor: the contention asymmetry is what mis-partitions naive
    # models.
    noise = GaussianNoise(0.02)
    cores = [
        Device(
            f"mc-cpu{i}",
            CacheHierarchyProfile(levels=[(800.0, 5.0e9)], paged_flops=2.0e9),
            noise=noise,
        )
        for i in range(4)
    ]
    solo = Device("uni-cpu0", ConstantProfile(3.0e9), noise=noise)
    return Platform(
        [
            Node("mc", cores, contention=[1.0, 0.75, 0.6, 0.5]),
            Node("uni", [solo]),
        ]
    )


def run_experiment(seed: int = 0):
    platform = _platform()
    bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)

    sync_models, _ = build_full_models(
        bench, PiecewiseModel, MODEL_SIZES, synchronised=True
    )
    solo_models, _ = build_full_models(
        bench, PiecewiseModel, MODEL_SIZES, synchronised=False
    )

    sync_dist = partition_geometric(TOTAL, sync_models)
    solo_dist = partition_geometric(TOTAL, solo_models)

    return platform, sync_models, solo_models, sync_dist, solo_dist


def test_ablation_synchronised_measurement(benchmark):
    platform, sync_models, solo_models, sync_dist, solo_dist = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    sync_mk = achieved_makespan(platform, sync_dist, UNIT_FLOPS)
    solo_mk = achieved_makespan(platform, solo_dist, UNIT_FLOPS)
    sync_imb = imbalance(achieved_times(platform, sync_dist, UNIT_FLOPS))
    solo_imb = imbalance(achieved_times(platform, solo_dist, UNIT_FLOPS))

    print_table(
        f"A6: measurement methodology vs contended execution ({TOTAL} units)",
        ["models from", "distribution", "real makespan(s)", "real imbalance"],
        [
            ["synchronised", str(sync_dist.sizes), fmt(sync_mk, 4), fmt(sync_imb, 3)],
            ["solo (naive)", str(solo_dist.sizes), fmt(solo_mk, 4), fmt(solo_imb, 3)],
        ],
    )
    probe = 2000.0
    ratio = solo_models[0].speed(probe) / sync_models[0].speed(probe)
    print(f"solo/sync modelled speed of a multicore core at {int(probe)} units: "
          f"{ratio:.2f}x (node contention factor for 4 cores is 0.50)")

    # Shape 1: solo models overestimate multicore speed by ~1/contention.
    assert ratio > 1.5
    # Shape 2: synchronised models give the better (or equal) contended run.
    assert sync_mk <= solo_mk * 1.02
    # Shape 3: the synchronised partition is genuinely balanced under
    # contention; the naive one is visibly worse.
    assert sync_imb < 0.1
    assert solo_imb > sync_imb
