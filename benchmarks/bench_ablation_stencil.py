"""Ablation A11 -- the stencil application: balancing + communication scaling.

Two questions about the CFD-style stencil substrate:

1. does the framework's load balancer drive the halo-exchange application
   to the same speed-proportional distribution as the allgather-based
   Jacobi (it should -- the balancer only sees compute times)?
2. do the communication patterns scale as theory says -- Jacobi's
   allgather moves O(rows) bytes per iteration while the stencil's halo
   exchange moves O(1) -- so the stencil's communication share stays flat
   as the problem grows?

Shapes asserted: balanced rows ~16:11:9 for the stencil; stencil per-
iteration communication time is essentially independent of the row count
while Jacobi's grows with it.
"""

from __future__ import annotations

import math

from harness import fmt, print_table
from repro.apps.jacobi.distributed import run_balanced_jacobi
from repro.apps.stencil.distributed import run_balanced_stencil
from repro.core.models import PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import fig4_trio

WIDTH = 64
ROW_COUNTS = [240, 960, 3840]


def _balancer(size, rows, threshold=math.inf, initial=None):
    models = [PiecewiseModel() for _ in range(size)]
    return LoadBalancer(
        partition_geometric, models, rows, threshold=threshold, initial=initial
    )


def _comm_per_iteration(records):
    """Mean (makespan - max compute) over the steady iterations."""
    steady = [r for r in records[2:] if not r.rebalanced]
    if not steady:
        steady = records[2:]
    return sum(r.makespan - max(r.compute_times) for r in steady) / len(steady)


def run_experiment(seed: int = 0):
    platform = fig4_trio(noisy=True)

    # Part 1: the stencil balances like Jacobi does.
    balancer = _balancer(platform.size, 360, threshold=0.05)
    balanced = run_balanced_stencil(
        platform, balancer, nx=WIDTH, eps=-1.0, max_iterations=12,
        noise_seed=seed,
    )

    # Part 2: communication scaling, balancing disabled (fixed optimal
    # rows, no redistribution noise in the comm numbers).
    comm_rows = {}
    for rows in ROW_COUNTS:
        optimal = Distribution.from_sizes(
            [round(rows * w) for w in (16 / 36, 11 / 36, 9 / 36)]
        )
        pad = rows - optimal.total
        optimal = Distribution.from_sizes(
            [optimal.sizes[0] + pad] + optimal.sizes[1:]
        )
        stencil = run_balanced_stencil(
            platform,
            _balancer(platform.size, rows, initial=optimal),
            nx=WIDTH, eps=-1.0, max_iterations=8, noise_seed=seed,
        )
        jacobi = run_balanced_jacobi(
            platform,
            _balancer(platform.size, rows, initial=optimal),
            eps=-1.0, max_iterations=8, noise_seed=seed,
        )
        comm_rows[rows] = (
            _comm_per_iteration(stencil.records),
            _comm_per_iteration(jacobi.records),
        )
    return balanced, comm_rows


def test_ablation_stencil(benchmark):
    balanced, comm_rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_table(
        "A11a: stencil dynamic balancing (360 rows, fig4 trio)",
        ["iter", "rows", "rebalanced"],
        [
            [r.iteration, str(r.sizes), "yes" if r.rebalanced else ""]
            for r in balanced.records[:6]
        ],
    )
    print(f"final rows: {balanced.final_sizes}")
    print_table(
        "A11b: per-iteration communication time vs problem size",
        ["rows", "stencil (halo)", "jacobi (allgather)"],
        [
            [rows, fmt(comm_rows[rows][0], 6), fmt(comm_rows[rows][1], 6)]
            for rows in ROW_COUNTS
        ],
    )

    # Shape 1: the stencil balances to the 16:11:9 speed ratio.
    expected = [160, 110, 90]
    for got, want in zip(balanced.final_sizes, expected):
        assert abs(got - want) <= 15
    # Shape 2: halo communication is O(1) in the row count...
    stencil_small = comm_rows[ROW_COUNTS[0]][0]
    stencil_large = comm_rows[ROW_COUNTS[-1]][0]
    assert stencil_large <= 2.0 * stencil_small
    # ...while the allgather grows with it (bandwidth term; the latency
    # floor keeps the small sizes close together).
    jacobi_small = comm_rows[ROW_COUNTS[0]][1]
    jacobi_mid = comm_rows[ROW_COUNTS[1]][1]
    jacobi_large = comm_rows[ROW_COUNTS[-1]][1]
    assert jacobi_small < jacobi_mid < jacobi_large
    assert jacobi_large > 2.5 * jacobi_small
    # Shape 3: at the large size, halo beats allgather outright.
    assert stencil_large < jacobi_large
