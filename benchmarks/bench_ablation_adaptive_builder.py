"""Ablation A5 -- adaptive vs uniform model construction.

The framework promises models "to a given accuracy and cost-effectiveness".
A uniform sweep spreads its measurements evenly; the adaptive builder
(:func:`repro.core.builder.build_adaptive_model`) bisects exactly where the
model's prediction disagrees with reality.

Two regimes, both printed:

* a **cliff** device (cache hierarchy with sharp paging transitions, flat
  elsewhere) -- irregularity is localised, so the adaptive builder should
  beat the uniform sweep clearly at equal budget;
* the **wiggly** Netlib-like device -- irregularity is everywhere, so
  uniform sampling is already near-optimal and adaptive should only tie.

That pair is the honest characterisation of when adaptivity pays.
"""

from __future__ import annotations

import numpy as np

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import Benchmark
from repro.core.builder import build_adaptive_model
from repro.core.kernel import SimulatedKernel
from repro.core.models import AkimaModel
from repro.core.precision import Precision
from repro.platform.device import Device
from repro.platform.noise import GaussianNoise
from repro.platform.presets import fig2_device
from repro.platform.profiles import CacheHierarchyProfile

UNIT_FLOPS = gemm_unit_flops(32)
BUDGET = 17


def _cliff_device() -> Device:
    profile = CacheHierarchyProfile(
        levels=[(900.0, 6.0e9), (12000.0, 4.0e9)],
        paged_flops=0.6e9,
        transition_width=0.03,  # sharp cliffs
    )
    return Device("cliff-cpu", profile, noise=GaussianNoise(0.01))


def _mean_error(device, model, eval_sizes) -> float:
    errs = []
    for d in eval_sizes:
        true_speed = device.ideal_speed(UNIT_FLOPS * d, d)
        predicted = model.speed_flops(d, lambda x: UNIT_FLOPS * x)
        errs.append(abs(predicted - true_speed) / true_speed)
    return float(np.mean(errs))


def _compare(device, size_range, seed):
    kernel = SimulatedKernel(device, UNIT_FLOPS, rng=np.random.default_rng(seed))
    bench = Benchmark(kernel, Precision(reps_min=5, reps_max=25, relative_error=0.01))
    eval_sizes = np.linspace(size_range[0] + 10, size_range[1] - 10, 160)
    eval_sizes = [int(d) for d in eval_sizes]

    adaptive = build_adaptive_model(
        bench.run, AkimaModel, size_range, accuracy=0.02, max_points=BUDGET,
        initial_points=5,
    )
    uniform = AkimaModel()
    for d in np.linspace(size_range[0], size_range[1], adaptive.points_used):
        uniform.update(bench.run(int(round(d))))

    return (
        adaptive,
        _mean_error(device, adaptive.model, eval_sizes),
        _mean_error(device, uniform, eval_sizes),
    )


def run_experiment(seed: int = 0):
    cliff = _compare(_cliff_device(), (50, 60_000), seed)
    wiggly = _compare(fig2_device(noisy=True), (50, 4_950), seed)
    return cliff, wiggly


def test_ablation_adaptive_builder(benchmark):
    cliff, wiggly = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    (cliff_res, cliff_adaptive, cliff_uniform) = cliff
    (wiggly_res, wiggly_adaptive, wiggly_uniform) = wiggly

    print_table(
        f"A5: adaptive vs uniform model construction ({BUDGET}-point budget)",
        ["device", "adaptive err", "uniform err", "adaptive/uniform"],
        [
            ["cliff (localised)", fmt(cliff_adaptive), fmt(cliff_uniform),
             fmt(cliff_adaptive / cliff_uniform, 2)],
            ["wiggly (everywhere)", fmt(wiggly_adaptive), fmt(wiggly_uniform),
             fmt(wiggly_adaptive / wiggly_uniform, 2)],
        ],
    )
    print(f"cliff adaptive probes: {sorted(p.d for p in cliff_res.model.points)}")

    # Shape 1: localised irregularity -> adaptive wins clearly.
    assert cliff_adaptive < 0.8 * cliff_uniform
    # Shape 2: irregularity everywhere -> adaptive must not lose badly.
    assert wiggly_adaptive <= 1.4 * wiggly_uniform
    # Shape 3: budgets respected.
    assert cliff_res.points_used <= BUDGET
    assert wiggly_res.points_used <= BUDGET
