"""Ablation A4 -- end-to-end heterogeneous matrix multiplication.

The full pipeline of Section 4.1 on the simulated hybrid platform: build
FPMs with the GEMM block kernel, partition the block grid, arrange the
submatrices column-based, and simulate the whole iterated application
(pivot broadcasts + block updates).  Compared against the homogeneous
(even) layout and the CPM layout, across blocking factors.

Shapes asserted: FPM partitioning yields the shortest simulated execution
time on the heterogeneous platform; the win over `even` is large (the
platform has a GPU); execution time scales with the blocking factor's
communication/computation trade-off without changing the ranking.
"""

from __future__ import annotations

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.apps.matmul.partition2d import partition_columns, sum_half_perimeters
from repro.apps.matmul.simulation import simulate_matmul
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import ConstantModel, PiecewiseModel
from repro.core.partition.basic import partition_constant
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import heterogeneous_cluster

NB = 64
BLOCKS = [16, 32, 64]
MODEL_SIZES = sorted({int(round(16 * 2 ** (k / 2))) for k in range(18)})


def run_experiment(seed: int = 0):
    platform = heterogeneous_cluster(noisy=True)
    results = {}
    for b in BLOCKS:
        unit_flops = gemm_unit_flops(b)
        bench = PlatformBenchmark(platform, unit_flops=unit_flops, seed=seed)
        pw_models, _ = build_full_models(bench, PiecewiseModel, MODEL_SIZES)
        cpm_models, _ = build_full_models(bench, ConstantModel, [256])
        total = NB * NB
        layouts = {
            "even": partition_columns([1.0] * platform.size, NB),
            "cpm": partition_columns(
                [float(d) for d in partition_constant(total, cpm_models).sizes], NB
            ),
            "fpm": partition_columns(
                [float(d) for d in partition_geometric(total, pw_models).sizes], NB
            ),
        }
        results[b] = {
            name: (simulate_matmul(platform, layout, b=b, seed=seed), layout)
            for name, layout in layouts.items()
        }
    return platform, results


def test_ablation_matmul_end_to_end(benchmark):
    platform, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for b in BLOCKS:
        for name in ("even", "cpm", "fpm"):
            sim, layout = results[b][name]
            rows.append(
                [
                    b,
                    name,
                    fmt(sim.total_time, 3),
                    fmt(sim.compute_imbalance, 3),
                    sum_half_perimeters(layout),
                ]
            )
    print_table(
        f"A4: simulated {NB}x{NB}-block matmul on the hybrid platform",
        ["b", "layout", "time(s)", "imbalance", "half-perim"],
        rows,
    )
    for b in BLOCKS:
        even_t = results[b]["even"][0].total_time
        fpm_t = results[b]["fpm"][0].total_time
        print(f"b={b}: fpm speedup over even = {even_t / fpm_t:.2f}x")

    for b in BLOCKS:
        even_sim = results[b]["even"][0]
        cpm_sim = results[b]["cpm"][0]
        fpm_sim = results[b]["fpm"][0]
        # Shape 1: FPM wins (or ties CPM within noise) at every blocking
        # factor, and beats the even layout clearly.
        assert fpm_sim.total_time < 0.8 * even_sim.total_time
        assert fpm_sim.total_time <= 1.1 * cpm_sim.total_time
        # Shape 2: FPM balances the computation.
        assert fpm_sim.compute_imbalance < even_sim.compute_imbalance
