"""Experiment F4 -- Fig. 4: dynamic load balancing of the Jacobi method.

Fig. 4 of the paper plots the per-iteration time of the Jacobi application
on three heterogeneous processors: the first iteration (even distribution)
is slow and imbalanced; after a few load-balancing steps the iteration time
drops and stays flat, with the balanced row counts annotated (16, 11, 9 in
the paper's ratio).

Printed series: per-iteration makespan, observed compute imbalance, and the
row distribution -- the same series as the figure.  Shapes asserted: the
first iteration is the worst; balance is reached within a few iterations
and stays; the final rows are in the 16:11:9 speed ratio; and the system is
actually solved (the math is real).
"""

from __future__ import annotations

from harness import fmt, imbalance, print_table
from repro.plot import ascii_plot
from repro.apps.jacobi.distributed import run_balanced_jacobi
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import fig4_trio

ROWS = 360  # 16+11+9 = 36 scaled by 10


def run_experiment(seed: int = 0):
    platform = fig4_trio(noisy=True)
    models = [PiecewiseModel() for _ in range(platform.size)]
    balancer = LoadBalancer(partition_geometric, models, ROWS, threshold=0.05)
    result = run_balanced_jacobi(
        platform,
        balancer,
        eps=1e-12,
        max_iterations=12,
        noise_seed=seed,
        matrix_seed=seed,
    )
    return platform, result


def test_fig4_jacobi_dynamic_balancing(benchmark):
    platform, result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for rec in result.records:
        rows.append(
            [
                rec.iteration,
                fmt(rec.makespan, 5),
                fmt(imbalance(rec.compute_times), 3),
                str(rec.sizes),
                "yes" if rec.rebalanced else "",
            ]
        )
    print_table(
        f"Fig. 4: Jacobi with dynamic load balancing ({ROWS} rows, 3 processes)",
        ["iter", "makespan(s)", "imbalance", "rows", "rebalanced"],
        rows,
    )
    print(f"solution error vs exact: {result.solution_error:.2e}")
    print()
    print(ascii_plot(
        {"makespan": [(r.iteration, r.makespan) for r in result.records]},
        title="Fig. 4: per-iteration time under dynamic load balancing",
        x_label="iteration",
        y_label="seconds",
        height=12,
    ))

    makespans = result.iteration_makespans
    # Shape 1: the even first iteration is the slowest compute-wise; by the
    # tail of the run the makespan has dropped substantially.
    tail = makespans[4:]
    assert tail
    assert min(tail) < makespans[0]
    # Shape 2: the observed imbalance collapses from ~40% to a few percent.
    assert imbalance(result.records[0].compute_times) > 0.25
    assert imbalance(result.records[-1].compute_times) < 0.10
    # Shape 3: the balanced rows are ~16:11:9 (the paper's annotation).
    assert result.final_sizes[0] > result.final_sizes[1] > result.final_sizes[2]
    expected = [160, 110, 90]
    for got, want in zip(result.final_sizes, expected):
        assert abs(got - want) <= 15
    # Shape 4: the mathematics is real -- the system is solved.
    assert result.solution_error < 1e-6
