"""Ablation A8 -- analytical (linear) models vs functional models.

Section 3 of the paper walks the model hierarchy of the related work:
constants (CPM), the Qilin-style *linear* time model (ref. [12]), and the
piecewise analytical model of ref. [14], noting that "linear models might
not fit the actual performance in the case of resource contention" or when
tasks straddle memory-hierarchy levels -- which is the argument for the
general FPM.

We quantify that claim: partition with CPM, Linear, piecewise FPM and
Akima FPM and judge by ground-truth makespan, across three regimes:

* a benign platform (constant speeds): every model family ties;
* a cliff platform at a SMALL total, where the optimum sits in the fast
  region below the cliff: the least-squares linear fit is dominated by the
  paged region and starves the fast device, while CPM (benchmarked at a
  small size) happens to be right;
* the same cliff platform at a LARGE total, where the optimum sits deep in
  the paged region: now CPM (still calibrated below the cliff) collapses
  and the linear model happens to be right.

The functional models are the only family balanced in *all three* regimes
-- precisely the paper's argument.
"""

from __future__ import annotations

from harness import achieved_makespan, achieved_times, fmt, imbalance, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import (
    AkimaModel,
    ConstantModel,
    LinearModel,
    PiecewiseModel,
    SegmentedLinearModel,
)
from repro.core.partition.basic import partition_constant
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device
from repro.platform.noise import GaussianNoise
from repro.platform.profiles import CacheHierarchyProfile, ConstantProfile

UNIT_FLOPS = gemm_unit_flops(32)
SMALL_TOTAL = 2_500
LARGE_TOTAL = 40_000
MODEL_SIZES = sorted({int(round(64 * 2 ** (k / 2))) for k in range(19)})


def _benign_platform() -> Platform:
    noise = GaussianNoise(0.02)
    nodes = [
        Node(f"b{i}", [Device(f"b{i}-cpu", ConstantProfile(s), noise=noise)])
        for i, s in enumerate([6.0e9, 3.0e9, 1.5e9])
    ]
    return Platform(nodes)


def _cliff_platform() -> Platform:
    noise = GaussianNoise(0.02)
    cliff = Device(
        "c0-cpu",
        CacheHierarchyProfile(
            levels=[(2000.0, 8.0e9)], paged_flops=0.8e9, transition_width=0.03
        ),
        noise=noise,
    )
    steady = Device("c1-cpu", ConstantProfile(2.5e9), noise=noise)
    slow = Device("c2-cpu", ConstantProfile(1.0e9), noise=noise)
    return Platform([Node("c0", [cliff]), Node("c1", [steady]), Node("c2", [slow])])


def _evaluate(platform, total, seed):
    bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
    out = {}
    for name, (model_cls, algorithm, sizes) in {
        "cpm": (ConstantModel, partition_constant, [1024]),
        "linear": (LinearModel, partition_numerical, MODEL_SIZES),
        "segmented": (SegmentedLinearModel, partition_numerical, MODEL_SIZES),
        "piecewise": (PiecewiseModel, partition_geometric, MODEL_SIZES),
        "akima": (AkimaModel, partition_numerical, MODEL_SIZES),
    }.items():
        models, _ = build_full_models(bench, model_cls, sizes)
        dist = algorithm(total, models)
        out[name] = (
            achieved_makespan(platform, dist, UNIT_FLOPS),
            imbalance(achieved_times(platform, dist, UNIT_FLOPS)),
        )
    return out


def run_experiment(seed: int = 0):
    return (
        _evaluate(_benign_platform(), LARGE_TOTAL, seed),
        _evaluate(_cliff_platform(), SMALL_TOTAL, seed),
        _evaluate(_cliff_platform(), LARGE_TOTAL, seed),
    )


def test_ablation_analytical_models(benchmark):
    benign, cliff_small, cliff_large = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    rows = []
    for regime, results in (
        (f"benign/{LARGE_TOTAL}", benign),
        (f"cliff/{SMALL_TOTAL}", cliff_small),
        (f"cliff/{LARGE_TOTAL}", cliff_large),
    ):
        for name in ("cpm", "linear", "segmented", "piecewise", "akima"):
            mk, imb = results[name]
            rows.append([regime, name, fmt(mk, 4), fmt(imb, 3)])
    print_table(
        "A8: model family vs platform regime (real makespan)",
        ["platform/total", "model", "makespan(s)", "imbalance"],
        rows,
    )

    # Shape 1: benign regime -- every model family is competitive.
    best_benign = min(mk for mk, _ in benign.values())
    for name, (mk, _imb) in benign.items():
        assert mk <= 1.10 * best_benign, name
    # Shape 2: the FPMs are balanced in BOTH cliff regimes.
    for results in (cliff_small, cliff_large):
        assert results["piecewise"][1] < 0.25
        assert results["akima"][1] < 0.25
    # Shape 3: each analytical model has a regime where it breaks.
    # Small total: the linear fit (dominated by paged sizes) starves the
    # fast device.
    assert cliff_small["linear"][0] > 1.3 * cliff_small["piecewise"][0]
    # Large total: CPM (calibrated below the cliff) collapses.
    assert cliff_large["cpm"][0] > 1.3 * cliff_large["piecewise"][0]
    # Shape 4: the segmented analytical model (ref. [14]) can represent the
    # cliff and stays competitive in BOTH regimes -- the "high accuracy"
    # the paper grants it, achieved here with a generic construction.
    for results in (cliff_small, cliff_large):
        assert results["segmented"][0] <= 1.2 * results["piecewise"][0]
