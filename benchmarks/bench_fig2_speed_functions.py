"""Experiment F2 -- Fig. 2: speed functions of the Netlib BLAS GEMM kernel.

The paper shows the measured (wiggly, ~5 GFLOPS) speed function of the
matrix-multiplication kernel approximated by (a) the coarsened
piecewise-linear FPM and (b) the Akima-spline FPM, with the spline hugging
the curve much more closely.

We rebuild both models from statistically controlled measurements of the
simulated Netlib-like device, then compare against the device's ground-truth
speed function on a dense grid.  The shape to reproduce: the Akima model is
the (much) better approximation, and the coarsened piecewise model is a
conservative banding of the curve that satisfies the FPM shape restrictions.
"""

from __future__ import annotations

import numpy as np

from harness import fmt, print_table
from repro.plot import ascii_plot
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import Benchmark
from repro.core.kernel import SimulatedKernel
from repro.core.models import AkimaModel, PiecewiseModel
from repro.core.precision import Precision
from repro.interp.coarsening import satisfies_fpm_shape
from repro.platform.presets import fig2_device

#: Blocking factor of the paper's GEMM kernel.
BLOCK = 32
UNIT_FLOPS = gemm_unit_flops(BLOCK)
#: Problem sizes benchmarked to build the models (units; Fig. 2 spans 0-5000).
MEASURED_SIZES = [25 + 225 * k for k in range(23)]  # 25 .. 4975
#: Dense evaluation grid for the approximation error.
EVAL_SIZES = list(range(50, 5000, 25))


def build_models(seed: int = 0):
    """Benchmark the Netlib-like device and fit both FPMs."""
    device = fig2_device(noisy=True)
    kernel = SimulatedKernel(device, UNIT_FLOPS, rng=np.random.default_rng(seed))
    bench = Benchmark(kernel, Precision(reps_min=5, reps_max=30, relative_error=0.01))
    piecewise = PiecewiseModel()
    akima = AkimaModel()
    for d in MEASURED_SIZES:
        point = bench.run(d)
        piecewise.update(point)
        akima.update(point)
    return device, piecewise, akima


def relative_errors(device, model):
    """Relative speed-prediction errors of ``model`` over the dense grid."""
    errs = []
    for d in EVAL_SIZES:
        true_speed = device.ideal_speed(UNIT_FLOPS * d, d)
        predicted = model.speed_flops(d, lambda x: UNIT_FLOPS * x)
        errs.append(abs(predicted - true_speed) / true_speed)
    return errs


def run_experiment(seed: int = 0):
    device, piecewise, akima = build_models(seed)
    pw_err = relative_errors(device, piecewise)
    ak_err = relative_errors(device, akima)
    return device, piecewise, akima, pw_err, ak_err


def test_fig2_speed_function_models(benchmark):
    device, piecewise, akima, pw_err, ak_err = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    rows = []
    for d in range(250, 5000, 250):
        true_speed = device.ideal_speed(UNIT_FLOPS * d, d) / 1e9
        pw = piecewise.speed_flops(d, lambda x: UNIT_FLOPS * x) / 1e9
        ak = akima.speed_flops(d, lambda x: UNIT_FLOPS * x) / 1e9
        rows.append([d, fmt(true_speed, 3), fmt(pw, 3), fmt(ak, 3)])
    print_table(
        "Fig. 2: Netlib BLAS speed function (GFLOPS)",
        ["size", "true", "piecewise", "akima"],
        rows,
    )
    print_table(
        "Fig. 2: approximation error (relative speed error)",
        ["model", "mean", "max"],
        [
            ["piecewise", fmt(float(np.mean(pw_err))), fmt(float(np.max(pw_err)))],
            ["akima", fmt(float(np.mean(ak_err))), fmt(float(np.max(ak_err)))],
        ],
    )

    # Draw the figure itself: the wiggly true curve with both FPMs.
    def curve(fn):
        return [(d, fn(d) / 1e9) for d in range(100, 5000, 60)]

    print()
    print(ascii_plot(
        {
            "true": curve(lambda d: device.ideal_speed(UNIT_FLOPS * d, d)),
            "akima": curve(lambda d: akima.speed_flops(d, lambda x: UNIT_FLOPS * x)),
            "piecewise": curve(
                lambda d: piecewise.speed_flops(d, lambda x: UNIT_FLOPS * x)
            ),
        },
        title="Fig. 2: Netlib BLAS speed function and its FPM approximations",
        x_label="size (units)",
        y_label="GFLOPS",
    ))

    # Shape 1 (paper): the Akima spline is the better approximation.
    assert np.mean(ak_err) < np.mean(pw_err)
    # Shape 2: Akima tracks the wiggly curve closely.
    assert np.mean(ak_err) < 0.05
    # Shape 3: the coarsened piecewise speed satisfies the Lastovetsky-
    # Reddy restriction (every ray from the origin crosses once).
    assert satisfies_fpm_shape(piecewise.coarsened_speed_points, strict=False)
    # Shape 4: coarsening may only clip speeds downward, so the piecewise
    # model never exceeds the measured speeds by more than the noise.
    for point in piecewise.points:
        assert piecewise.speed(point.d) <= point.speed * 1.02
