"""Shared helpers for the experiment benches.

Every bench reproduces one figure (or ablation) from DESIGN.md's experiment
index.  The pattern is uniform:

* a ``run_*`` function computes the experiment's data (deterministic,
  seeded);
* the ``test_*`` function times it through pytest-benchmark and prints the
  same rows/series the paper's figure shows, then asserts the qualitative
  *shape* the paper reports (who wins, what converges, what collapses).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.partition.dist import Distribution
from repro.platform.cluster import Platform


def achieved_times(
    platform: Platform,
    dist: Distribution,
    unit_flops: float,
) -> List[float]:
    """Ground-truth per-rank times of a distribution on a platform.

    Uses the devices' noise-free time at the *assigned* sizes -- what the
    application would actually experience, as opposed to what the models
    predicted.  Node contention is applied for all simultaneously active
    ranks, exactly as in a real run of the data-parallel application.
    This is the judge for every partitioning comparison.
    """
    active = [rank for rank, part in enumerate(dist.parts) if part.d > 0]
    times = []
    for rank, part in enumerate(dist.parts):
        if part.d == 0:
            times.append(0.0)
            continue
        device = platform.device(rank)
        contention = platform.group_contention(rank, active)
        times.append(device.ideal_time(unit_flops * part.d, part.d) / contention)
    return times


def achieved_makespan(
    platform: Platform, dist: Distribution, unit_flops: float
) -> float:
    """Slowest rank's ground-truth time under a distribution."""
    return max(achieved_times(platform, dist, unit_flops))


def imbalance(times: Sequence[float]) -> float:
    """Relative imbalance ``(max - min) / max`` over the active ranks."""
    active = [t for t in times if t > 0.0]
    if not active or max(active) == 0.0:
        return 0.0
    return (max(active) - min(active)) / max(active)


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print an aligned experiment table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))


def fmt(x: float, digits: int = 4) -> str:
    """Format a float for experiment tables."""
    return f"{x:.{digits}f}"
