"""Shared helpers for the experiment benches.

Every bench reproduces one figure (or ablation) from DESIGN.md's experiment
index.  The pattern is uniform:

* a ``run_*`` function computes the experiment's data (deterministic,
  seeded);
* the ``test_*`` function times it through pytest-benchmark and prints the
  same rows/series the paper's figure shows, then asserts the qualitative
  *shape* the paper reports (who wins, what converges, what collapses).

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.

The module doubles as a CLI for throughput-regression gating::

    python benchmarks/harness.py --check-regression [CURRENT] [BASELINE]

compares two ``BENCH_hotpath_models.json``-style result files (defaults:
the repo-root file against itself is a no-op; pass a fresh run as CURRENT)
and exits non-zero when any throughput metric dropped by more than 20%,
when the happy-path degradation-ladder overhead (the
``partition_ladder`` section's ``overhead_frac``) exceeds 5%, when the
plan-cache hit path (the repo-root ``BENCH_plan_cache.json``, if present)
is less than 10x faster than a cold solve, when the serving-hardening
tax (the repo-root ``BENCH_serve_resilience.json``, if present) puts the
WAL-backed, breaker-wired engine more than 5% over the plain engine on
the cache-hit path, or when the fleet gates (the repo-root
``BENCH_fleet_scaling.json``, if present) fail: 4 workers under 3x one
worker, the asyncio front end behind the threaded one, or FPM routing
losing to round-robin on a skewed fleet.  The partition-tolerance gates
(the repo-root ``BENCH_partition_tolerance.json``, if present) hold the
replication tax on the warm hit path to 5% and require that a SIGKILL
on a quiesced replicated fleet loses zero acked plans.  The disk-fault
gates (the repo-root ``BENCH_disk_faults.json``, if present) hold the
durability guard's tax on the cache-hit path to 5%, require a dead
disk to surface zero request-path errors, and require every plan
accepted while degraded to survive the heal re-sync.  The
bi-objective gates (the repo-root ``BENCH_energy_pareto.json``, if
present) cap a 16-point (time, energy) Pareto sweep at 8x one
time-only solve and the objective plumbing's tax on the cached
``"time"`` hit path at 5%.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence

from repro.core.partition.dist import Distribution
from repro.platform.cluster import Platform

#: Result-file keys treated as "higher is better" throughput metrics.
THROUGHPUT_KEYS = ("scalar_pts_per_s", "batch_pts_per_s", "partitions_per_s", "speedup")

#: Ceiling on the happy-path DegradationPolicy tax over a direct
#: partitioner call (the ``partition_ladder`` bench section).
LADDER_OVERHEAD_LIMIT = 0.05

#: Floor on the plan-cache hit path's advantage over a cold solve (the
#: ``plan_cache`` bench section's ``hit_speedup``).
PLAN_CACHE_SPEEDUP_FLOOR = 10.0

#: Ceiling on the serving-hardening tax (WAL-backed cache + breaker
#: board) over the plain engine on the cache-hit path (the
#: ``serve_resilience`` bench section).
SERVE_RESILIENCE_OVERHEAD_LIMIT = 0.05

#: Floor on the 4-worker fleet's throughput over a single worker (the
#: ``fleet_scaling`` bench section's ``scale_at_4``).
FLEET_SCALING_FLOOR = 3.0

#: Ceiling on the closed-loop tax (attached feedback controller +
#: model lineage) over a plain server on the cache-hit path (the
#: ``feedback_loop`` bench section).
FEEDBACK_OVERHEAD_LIMIT = 0.05

#: Floor on the asyncio front end's hit-path throughput relative to the
#: threaded stdlib front end (``frontend_http.aio_over_threaded``).
AIO_PARITY_FLOOR = 1.0

#: Ceiling on the replication tax (``replicas=2`` over ``replicas=1``)
#: on the warm hit path (the ``replication_tax`` bench section).
PARTITION_OVERHEAD_LIMIT = 0.05

#: Ceiling on the durability guard's tax on the cache-hit path (the
#: ``disk_guard_tax`` bench section's per-rank ``overhead_frac``).
DISK_GUARD_OVERHEAD_LIMIT = 0.05

#: Ceiling on a 16-point (time, energy) Pareto front sweep's cost
#: relative to one time-only solve (the ``energy_front`` bench
#: section's ``front_over_single``).
ENERGY_FRONT_COST_LIMIT = 8.0

#: Ceiling on the objective-machinery tax on the cached ``"time"`` hit
#: path (the ``energy_time_path`` section's ``time_hit_overhead_frac``).
ENERGY_TIME_PATH_OVERHEAD_LIMIT = 0.05


def achieved_times(
    platform: Platform,
    dist: Distribution,
    unit_flops: float,
) -> List[float]:
    """Ground-truth per-rank times of a distribution on a platform.

    Uses the devices' noise-free time at the *assigned* sizes -- what the
    application would actually experience, as opposed to what the models
    predicted.  Node contention is applied for all simultaneously active
    ranks, exactly as in a real run of the data-parallel application.
    This is the judge for every partitioning comparison.
    """
    active = [rank for rank, part in enumerate(dist.parts) if part.d > 0]
    times = []
    for rank, part in enumerate(dist.parts):
        if part.d == 0:
            times.append(0.0)
            continue
        device = platform.device(rank)
        contention = platform.group_contention(rank, active)
        times.append(device.ideal_time(unit_flops * part.d, part.d) / contention)
    return times


def achieved_makespan(
    platform: Platform, dist: Distribution, unit_flops: float
) -> float:
    """Slowest rank's ground-truth time under a distribution."""
    return max(achieved_times(platform, dist, unit_flops))


def imbalance(times: Sequence[float]) -> float:
    """Relative imbalance ``(max - min) / max`` over the active ranks."""
    active = [t for t in times if t > 0.0]
    if not active or max(active) == 0.0:
        return 0.0
    return (max(active) - min(active)) / max(active)


def print_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print an aligned experiment table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))


def fmt(x: float, digits: int = 4) -> str:
    """Format a float for experiment tables."""
    return f"{x:.{digits}f}"


def _throughput_metrics(results: Dict, prefix: str = "") -> Dict[str, float]:
    """Flatten a results tree to ``{dotted.path: value}`` throughput rows."""
    out: Dict[str, float] = {}
    for key, value in results.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            out.update(_throughput_metrics(value, path))
        elif key in THROUGHPUT_KEYS and isinstance(value, (int, float)):
            out[path] = float(value)
    return out


def check_regression(
    current: Dict, baseline: Dict, threshold: float = 0.20
) -> List[str]:
    """Compare two bench result trees; report >threshold throughput drops.

    Only metrics present in *both* trees are compared (a renamed or new
    bench is not a regression).  Returns human-readable failure strings,
    empty when everything is within the threshold.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    cur = _throughput_metrics(current)
    base = _throughput_metrics(baseline)
    failures: List[str] = []
    for path, old in sorted(base.items()):
        new = cur.get(path)
        if new is None or old <= 0.0:
            continue
        drop = (old - new) / old
        if drop > threshold:
            failures.append(
                f"{path}: {new:.3g} vs baseline {old:.3g} (-{100 * drop:.0f}%)"
            )
    return failures


def check_ladder_overhead(
    current: Dict, limit: float = LADDER_OVERHEAD_LIMIT
) -> List[str]:
    """Gate the degradation ladder's happy-path tax.

    Reads the ``partition_ladder`` section of a result tree and reports
    every rank count whose ``overhead_frac`` (ladder time over direct
    partitioner time, minus one) exceeds *limit*.  A missing section is
    not a failure -- older baselines predate the ladder bench.
    """
    if limit <= 0.0:
        raise ValueError(f"limit must be positive, got {limit}")
    failures: List[str] = []
    for p, row in sorted(current.get("partition_ladder", {}).items()):
        frac = row.get("overhead_frac")
        if isinstance(frac, (int, float)) and frac > limit:
            failures.append(
                f"partition_ladder.{p}: overhead {100 * frac:.1f}% "
                f"(limit {100 * limit:.0f}%)"
            )
    return failures


def check_plan_cache(
    current: Dict, floor: float = PLAN_CACHE_SPEEDUP_FLOOR
) -> List[str]:
    """Gate the plan-cache hit path's speedup over a cold solve.

    Reads the ``plan_cache`` section of a result tree (the
    ``bench_plan_cache`` bench) and reports every rank count whose
    ``hit_speedup`` (cold solve time over cache-hit serve time) falls
    below *floor*.  A missing section is not a failure -- hotpath result
    files predate the serving bench.
    """
    if floor <= 1.0:
        raise ValueError(f"floor must exceed 1, got {floor}")
    failures: List[str] = []
    for p, row in sorted(current.get("plan_cache", {}).items()):
        speedup = row.get("hit_speedup")
        if isinstance(speedup, (int, float)) and speedup < floor:
            failures.append(
                f"plan_cache.{p}: hit path only {speedup:.1f}x faster than "
                f"a cold solve (floor {floor:.0f}x)"
            )
    return failures


def check_serve_resilience(
    current: Dict, limit: float = SERVE_RESILIENCE_OVERHEAD_LIMIT
) -> List[str]:
    """Gate the serving-hardening tax on the cache-hit path.

    Reads the ``serve_resilience`` section of a result tree (the
    ``bench_serve_resilience`` bench) and reports every rank count whose
    ``overhead_frac`` (hardened hit time over plain hit time, minus one)
    exceeds *limit*.  The hit path touches neither the journal nor the
    breaker, so anything above noise means the hardening leaked into the
    steady-state loop.  A missing section is not a failure -- older
    result files predate the hardening bench.
    """
    if limit <= 0.0:
        raise ValueError(f"limit must be positive, got {limit}")
    failures: List[str] = []
    for p, row in sorted(current.get("serve_resilience", {}).items()):
        frac = row.get("overhead_frac")
        if isinstance(frac, (int, float)) and frac > limit:
            failures.append(
                f"serve_resilience.{p}: hardened hit path "
                f"{100 * frac:.1f}% over plain (limit {100 * limit:.0f}%)"
            )
    return failures


def check_fleet_scaling(
    current: Dict,
    scale_floor: float = FLEET_SCALING_FLOOR,
    aio_floor: float = AIO_PARITY_FLOOR,
) -> List[str]:
    """Gate the fleet layer's three claims (the ``bench_fleet_scaling`` bench).

    * ``frontend_http.aio_over_threaded`` -- the asyncio front end must
      meet or beat the threaded stdlib one on the single-worker hit path;
    * ``fleet_scaling.scale_at_4`` -- four workers must sustain at least
      *scale_floor* times one worker's throughput on the mixed flood;
    * ``fpm_vs_rr`` -- on the skewed fleet, FPM routing must match or
      beat round-robin on throughput *and* p99 latency.

    Missing sections are not failures -- older result files predate the
    fleet bench, and the smoke run skips the routing duel.
    """
    if scale_floor <= 1.0:
        raise ValueError(f"scale_floor must exceed 1, got {scale_floor}")
    failures: List[str] = []
    frontend = current.get("frontend_http", {})
    ratio = frontend.get("aio_over_threaded")
    if isinstance(ratio, (int, float)) and ratio < aio_floor:
        failures.append(
            f"frontend_http: asyncio at {ratio:.2f}x the threaded front "
            f"end (floor {aio_floor:.1f}x)"
        )
    scaling = current.get("fleet_scaling", {})
    scale = scaling.get("scale_at_4")
    if isinstance(scale, (int, float)) and scale < scale_floor:
        failures.append(
            f"fleet_scaling: 4 workers at {scale:.2f}x one worker "
            f"(floor {scale_floor:.1f}x)"
        )
    duel = current.get("fpm_vs_rr", {})
    fpm_over_rr = duel.get("fpm_over_rr_throughput")
    if isinstance(fpm_over_rr, (int, float)) and fpm_over_rr < 1.0:
        failures.append(
            f"fpm_vs_rr: FPM routing at {fpm_over_rr:.2f}x round-robin "
            "throughput (must match or beat it)"
        )
    p99_ratio = duel.get("fpm_p99_over_rr_p99")
    if isinstance(p99_ratio, (int, float)) and p99_ratio > 1.0:
        failures.append(
            f"fpm_vs_rr: FPM p99 at {p99_ratio:.2f}x round-robin's "
            "(must match or beat it)"
        )
    return failures


def check_feedback_loop(
    current: Dict, limit: float = FEEDBACK_OVERHEAD_LIMIT
) -> List[str]:
    """Gate the closed-loop tax on the cache-hit path.

    Reads the ``feedback_loop`` section of a result tree (the
    ``bench_feedback_loop`` bench) and reports every rank count whose
    ``overhead_frac`` (hit time with an attached feedback controller
    over a plain server's, minus one) exceeds *limit*.  The lineage
    check on the hit path is one atomic reference read of
    ``server.models``, so anything above noise means refinement
    machinery leaked into plan serving.  A missing section is not a
    failure -- older result files predate the closed loop.
    """
    if limit <= 0.0:
        raise ValueError(f"limit must be positive, got {limit}")
    failures: List[str] = []
    for p, row in sorted(current.get("feedback_loop", {}).items()):
        frac = row.get("overhead_frac")
        if isinstance(frac, (int, float)) and frac > limit:
            failures.append(
                f"feedback_loop.{p}: closed-loop hit path "
                f"{100 * frac:.1f}% over plain (limit {100 * limit:.0f}%)"
            )
    return failures


def check_partition_tolerance(
    current: Dict, limit: float = PARTITION_OVERHEAD_LIMIT
) -> List[str]:
    """Gate the replication tax and the acked-plan survival guarantee.

    Reads the ``replication_tax`` and ``failover`` sections of a result
    tree (the ``bench_partition_tolerance`` bench).  Replication fires
    only on cold commits and runs on a background thread, so the warm
    hit path of a ``replicas=2`` fleet must stay within *limit* of a
    single-copy fleet's; and after a SIGKILL on a quiesced replicated
    fleet, every acked plan must still be served from a replica copy
    (``lost_acked`` zero, ``post_kill_hit_rate`` 1.0).  Missing sections
    are not failures -- older result files predate replication.
    """
    if limit <= 0.0:
        raise ValueError(f"limit must be positive, got {limit}")
    failures: List[str] = []
    tax = current.get("replication_tax", {})
    frac = tax.get("overhead_frac")
    if isinstance(frac, (int, float)) and frac > limit:
        failures.append(
            f"replication_tax: replicas=2 hit path {100 * frac:.1f}% over "
            f"replicas=1 (limit {100 * limit:.0f}%)"
        )
    failover = current.get("failover", {})
    lost = failover.get("lost_acked")
    if isinstance(lost, (int, float)) and lost > 0:
        failures.append(
            f"failover: {lost:.0f} acked plan(s) lost after a SIGKILL on a "
            "quiesced replicated fleet (must be 0)"
        )
    rate = failover.get("post_kill_hit_rate")
    if isinstance(rate, (int, float)) and rate < 1.0:
        failures.append(
            f"failover: post-kill replica hit rate {rate:.3f} < 1.0 "
            "(acked plans were re-solved instead of replica-served)"
        )
    return failures


def check_disk_faults(
    current: Dict, limit: float = DISK_GUARD_OVERHEAD_LIMIT
) -> List[str]:
    """Gate the durability guard (the ``bench_disk_faults`` bench).

    * ``disk_guard_tax.*.overhead_frac`` -- arming the degradation
      ladder (``durability_budget``) must stay within *limit* of the
      fail-fast durable cache on the hit path (hits mutate nothing, so
      the guard's price is one ack-path check);
    * ``degraded_throughput.errors`` -- a dead disk must surface zero
      request-path errors (absorbed, never raised);
    * ``heal_recovery.lost`` -- every plan accepted while degraded must
      reach the disk in the heal re-sync and survive a SIGKILL.

    A missing section is not a failure -- older result files predate
    the storage-fault work.
    """
    if limit <= 0.0:
        raise ValueError(f"limit must be positive, got {limit}")
    failures: List[str] = []
    for p, row in sorted(current.get("disk_guard_tax", {}).items()):
        frac = row.get("overhead_frac")
        if isinstance(frac, (int, float)) and frac > limit:
            failures.append(
                f"disk_guard_tax.{p}: guarded hit path {100 * frac:.1f}% "
                f"over fail-fast (limit {100 * limit:.0f}%)"
            )
    degraded = current.get("degraded_throughput", {})
    errors = degraded.get("errors")
    if isinstance(errors, (int, float)) and errors > 0:
        failures.append(
            f"degraded_throughput: {errors:.0f} put(s) raised against a "
            "dead disk (the ladder must absorb every one)"
        )
    heal = current.get("heal_recovery", {})
    lost = heal.get("lost")
    if isinstance(lost, (int, float)) and lost > 0:
        failures.append(
            f"heal_recovery: {lost:.0f} degraded-mode plan(s) missing "
            "after the heal re-sync (must be 0)"
        )
    return failures


def check_energy_pareto(
    current: Dict,
    cost_limit: float = ENERGY_FRONT_COST_LIMIT,
    overhead_limit: float = ENERGY_TIME_PATH_OVERHEAD_LIMIT,
) -> List[str]:
    """Gate the bi-objective subsystem (the ``bench_energy_pareto`` bench).

    * ``energy_front.*.front_over_single`` -- a 16-point Pareto sweep
      must cost at most *cost_limit* times one time-only solve (the
      batched interior bisection's whole claim);
    * ``energy_time_path.*.time_hit_overhead_frac`` -- the objective
      plumbing must not tax the pre-existing cached ``"time"`` hit path
      beyond *overhead_limit* (it short-circuits to the legacy
      fingerprint, so anything above noise is a leak).

    Missing sections are not failures -- older result files predate the
    bi-objective subsystem.
    """
    if cost_limit <= 1.0:
        raise ValueError(f"cost_limit must exceed 1, got {cost_limit}")
    if overhead_limit <= 0.0:
        raise ValueError(
            f"overhead_limit must be positive, got {overhead_limit}"
        )
    failures: List[str] = []
    for p, row in sorted(current.get("energy_front", {}).items()):
        ratio = row.get("front_over_single")
        if isinstance(ratio, (int, float)) and ratio > cost_limit:
            failures.append(
                f"energy_front.{p}: {ratio:.1f}x one time-only solve "
                f"(limit {cost_limit:.0f}x)"
            )
    for p, row in sorted(current.get("energy_time_path", {}).items()):
        frac = row.get("time_hit_overhead_frac")
        if isinstance(frac, (int, float)) and frac > overhead_limit:
            failures.append(
                f"energy_time_path.{p}: time hit path {100 * frac:.1f}% "
                f"over the pre-kind engine (limit {100 * overhead_limit:.0f}%)"
            )
    return failures


def _load_results(path: Path) -> Dict:
    """Load one bench result file, raising ``SystemExit(2)`` on damage."""
    if not path.exists():
        print(f"missing results file: {path}", file=sys.stderr)
        raise SystemExit(2)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"malformed results file {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(data, dict):
        print(f"malformed results file {path}: expected a JSON object, "
              f"got {type(data).__name__}", file=sys.stderr)
        raise SystemExit(2)
    return data


def _check_regression_cli(argv: Sequence[str]) -> int:
    default = Path(__file__).resolve().parent.parent / "BENCH_hotpath_models.json"
    current_path = Path(argv[0]) if len(argv) > 0 else default
    baseline_path = Path(argv[1]) if len(argv) > 1 else default
    try:
        current = _load_results(current_path)
        baseline = _load_results(baseline_path)
    except SystemExit as exc:
        return int(exc.code or 2)
    failures = check_regression(current, baseline)
    if failures:
        print("throughput regressions (>20% below baseline):")
        for line in failures:
            print(f"  {line}")
        return 1
    overhead_failures = check_ladder_overhead(current)
    if overhead_failures:
        print("degradation-ladder overhead above the "
              f"{100 * LADDER_OVERHEAD_LIMIT:.0f}% ceiling:")
        for line in overhead_failures:
            print(f"  {line}")
        return 1
    # The plan-cache bench writes its own result file; gate it whenever a
    # committed baseline is present (its absence predates the serving layer).
    plan_cache_path = (
        Path(__file__).resolve().parent.parent / "BENCH_plan_cache.json"
    )
    if plan_cache_path.exists():
        try:
            plan_cache = _load_results(plan_cache_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        cache_failures = check_plan_cache(plan_cache)
        if cache_failures:
            print("plan-cache hit path below the "
                  f"{PLAN_CACHE_SPEEDUP_FLOOR:.0f}x floor:")
            for line in cache_failures:
                print(f"  {line}")
            return 1
    # Likewise for the serving-hardening bench (WAL + breakers).
    resilience_path = (
        Path(__file__).resolve().parent.parent / "BENCH_serve_resilience.json"
    )
    if resilience_path.exists():
        try:
            resilience = _load_results(resilience_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        resilience_failures = check_serve_resilience(resilience)
        if resilience_failures:
            print("serving-hardening overhead above the "
                  f"{100 * SERVE_RESILIENCE_OVERHEAD_LIMIT:.0f}% ceiling:")
            for line in resilience_failures:
                print(f"  {line}")
            return 1
    # And for the fleet bench (asyncio front end, sharding, FPM routing).
    fleet_path = (
        Path(__file__).resolve().parent.parent / "BENCH_fleet_scaling.json"
    )
    if fleet_path.exists():
        try:
            fleet = _load_results(fleet_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        fleet_failures = check_fleet_scaling(fleet)
        if fleet_failures:
            print("fleet-serving gates failed:")
            for line in fleet_failures:
                print(f"  {line}")
            return 1
    # And for the closed-loop bench (feedback controller + lineage).
    feedback_path = (
        Path(__file__).resolve().parent.parent / "BENCH_feedback_loop.json"
    )
    if feedback_path.exists():
        try:
            feedback = _load_results(feedback_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        feedback_failures = check_feedback_loop(feedback)
        if feedback_failures:
            print("closed-loop overhead above the "
                  f"{100 * FEEDBACK_OVERHEAD_LIMIT:.0f}% ceiling:")
            for line in feedback_failures:
                print(f"  {line}")
            return 1
    # And for the partition-tolerance bench (replication tax + failover).
    partition_path = (
        Path(__file__).resolve().parent.parent
        / "BENCH_partition_tolerance.json"
    )
    if partition_path.exists():
        try:
            partition = _load_results(partition_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        partition_failures = check_partition_tolerance(partition)
        if partition_failures:
            print("partition-tolerance gates failed:")
            for line in partition_failures:
                print(f"  {line}")
            return 1
    # And for the disk-fault bench (durability-guard tax + degradation).
    disk_path = (
        Path(__file__).resolve().parent.parent / "BENCH_disk_faults.json"
    )
    if disk_path.exists():
        try:
            disk = _load_results(disk_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        disk_failures = check_disk_faults(disk)
        if disk_failures:
            print("disk-fault gates failed:")
            for line in disk_failures:
                print(f"  {line}")
            return 1
    # And for the bi-objective bench (Pareto sweep cost + time-path tax).
    energy_path = (
        Path(__file__).resolve().parent.parent / "BENCH_energy_pareto.json"
    )
    if energy_path.exists():
        try:
            energy = _load_results(energy_path)
        except SystemExit as exc:
            return int(exc.code or 2)
        energy_failures = check_energy_pareto(energy)
        if energy_failures:
            print("bi-objective gates failed:")
            for line in energy_failures:
                print(f"  {line}")
            return 1
    compared = len(
        set(_throughput_metrics(current)) & set(_throughput_metrics(baseline))
    )
    print(f"no throughput regressions ({compared} metrics compared); "
          "ladder overhead, plan-cache floor, serving-hardening "
          "overhead, fleet, closed-loop, partition-tolerance, "
          "disk-fault and bi-objective gates within limits")
    return 0


if __name__ == "__main__":
    args = sys.argv[1:]
    if args and args[0] == "--check-regression":
        raise SystemExit(_check_regression_cli(args[1:]))
    print(__doc__)
