"""Ablation A1 -- partitioning quality vs heterogeneity regime.

The paper's core claim: constant performance models (CPM) mispartition when
the per-process problem sizes straddle different levels of the memory
hierarchy or different code paths (cases (i)-(ii) in Section 3), while
functional models stay balanced.  We sweep the total problem size on a
platform whose devices have memory cliffs and GPU ramps, and judge every
algorithm by the *achieved* (ground-truth) makespan, not by its own
predictions.

Shapes asserted: in the small-problem regime all algorithms roughly tie;
in the cliff-straddling regime the FPM algorithms beat both CPM and the
even baseline by a clear factor; geometric and numerical agree.
"""

from __future__ import annotations

from harness import achieved_makespan, achieved_times, fmt, imbalance, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.basic import partition_constant
from repro.core.partition.dist import Distribution
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.platform.presets import heterogeneous_cluster

UNIT_FLOPS = gemm_unit_flops(32)
TOTALS = [2_000, 20_000, 200_000]
# Log-spaced sweep at half-octave steps: dense enough to capture the
# cache/paging transitions of the CPU cores and the GPU ramp.
MODEL_SIZES = sorted({int(round(64 * 2 ** (k / 2))) for k in range(23)})


def run_experiment(seed: int = 0):
    platform = heterogeneous_cluster(noisy=True)
    bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
    pw_models, _ = build_full_models(bench, PiecewiseModel, MODEL_SIZES)
    ak_models, _ = build_full_models(bench, AkimaModel, MODEL_SIZES)
    # CPM as used in practice: one benchmark at a moderate size.
    cpm_models, _ = build_full_models(bench, ConstantModel, [1024])

    results = {}
    for total in TOTALS:
        even = Distribution.even(total, platform.size)
        dists = {
            "even": even,
            "cpm": partition_constant(total, cpm_models),
            "geometric": partition_geometric(total, pw_models),
            "numerical": partition_numerical(total, ak_models),
        }
        results[total] = {
            name: (
                achieved_makespan(platform, dist, UNIT_FLOPS),
                imbalance(achieved_times(platform, dist, UNIT_FLOPS)),
                dist,
            )
            for name, dist in dists.items()
        }
    return platform, results


def test_ablation_partitioner_quality(benchmark):
    platform, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for total in TOTALS:
        for name in ("even", "cpm", "geometric", "numerical"):
            makespan, imb, _dist = results[total][name]
            rows.append([total, name, fmt(makespan, 4), fmt(imb, 3)])
    print_table(
        "A1: achieved makespan by partitioning algorithm (ground truth)",
        ["total units", "algorithm", "makespan(s)", "imbalance"],
        rows,
    )

    for total in TOTALS:
        even_t = results[total]["even"][0]
        cpm_t = results[total]["cpm"][0]
        geo_t = results[total]["geometric"][0]
        num_t = results[total]["numerical"][0]
        # Shape 1: model-based partitioning never loses to the even split.
        assert geo_t <= even_t * 1.02
        # Shape 2: geometric and numerical agree on achieved makespan.
        assert abs(geo_t - num_t) <= 0.15 * max(geo_t, num_t)
        # Shape 3: FPM partitioning is never (meaningfully) worse than CPM.
        assert geo_t <= cpm_t * 1.05

    # Shape 4: in the large regime (GPU ramp saturated, CPU cores paging)
    # the FPMs win big against both baselines.
    big = TOTALS[-1]
    assert results[big]["geometric"][0] < 0.8 * results[big]["even"][0]
    assert results[big]["geometric"][1] < 0.15  # actually balanced
