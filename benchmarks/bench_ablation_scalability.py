"""Ablation A10 -- cost of the partitioning algorithms vs process count.

The paper positions the dynamic algorithms as cheap enough to run *inside*
an application's iteration loop.  That only holds if the partitioning
algorithms themselves scale: the geometrical algorithm is
O(p log(1/eps) log D) bisections, the numerical algorithm solves a dense
p x p Newton system per iteration, the basic algorithm is O(p).  This
bench times all three on synthetic functional models at increasing process
counts -- pytest-benchmark's own timing is the measurement here.

Shapes asserted: results remain exact partitions at every scale, and the
per-call wall time stays in interactive territory (well under a second at
p = 128), which is the property dynamic load balancing relies on.
"""

from __future__ import annotations

import time

import pytest

from repro.core.models import AkimaModel, ConstantModel, PiecewiseModel
from repro.core.partition.basic import partition_constant
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.core.point import MeasurementPoint

TOTAL = 1_000_000
SIZES = [100, 1000, 10_000, 100_000, 1_000_000]


def _make_models(model_cls, p: int):
    """Heterogeneous synthetic models: speeds spread over ~8x."""
    models = []
    for i in range(p):
        speed = 1000.0 * (1.0 + 7.0 * (i / max(p - 1, 1)))
        model = model_cls()
        model.update_many(
            [MeasurementPoint(d=d, t=d / speed) for d in SIZES]
        )
        models.append(model)
    return models


@pytest.mark.parametrize("p", [4, 32, 128])
def test_scalability_geometric(benchmark, p):
    models = _make_models(PiecewiseModel, p)
    dist = benchmark(lambda: partition_geometric(TOTAL, models))
    assert dist.total == TOTAL
    assert all(part.d >= 0 for part in dist.parts)


@pytest.mark.parametrize("p", [4, 32, 128])
def test_scalability_numerical(benchmark, p):
    models = _make_models(AkimaModel, p)
    dist = benchmark(lambda: partition_numerical(TOTAL, models))
    assert dist.total == TOTAL


@pytest.mark.parametrize("p", [4, 32, 128])
def test_scalability_basic(benchmark, p):
    models = _make_models(ConstantModel, p)
    dist = benchmark(lambda: partition_constant(TOTAL, models))
    assert dist.total == TOTAL


def test_scalability_interactive_at_p128(benchmark):
    """The load-balancer use case: one repartitioning call must be cheap."""
    models = _make_models(PiecewiseModel, 128)

    def run():
        start = time.perf_counter()
        dist = partition_geometric(TOTAL, models)
        elapsed = time.perf_counter() - start
        return dist, elapsed

    dist, elapsed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert dist.total == TOTAL
    # Interactive territory: far below one application iteration.
    assert elapsed < 1.0
