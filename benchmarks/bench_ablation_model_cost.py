"""Ablation A2 -- cost of full model construction vs dynamic estimation.

Section 4.3 of the paper: building full functional models is worth it only
when the models are reused across many runs; for a one-shot application the
dynamic algorithms reach a near-optimal distribution at a fraction of the
benchmarking cost.  We measure both costs in kernel-seconds (virtual time
actually spent executing the kernel during benchmarking) and compare the
quality of the resulting distributions by achieved makespan.

Shapes asserted: the dynamic cost is several times smaller; the dynamic
distribution's achieved makespan is within a few percent of the full-model
one; and the break-even point (number of application runs after which full
models pay off) is finite and positive.
"""

from __future__ import annotations

from harness import achieved_makespan, fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import heterogeneous_cluster

UNIT_FLOPS = gemm_unit_flops(32)
TOTAL = 60_000
FULL_SWEEP = sorted({int(round(64 * 2 ** (k / 2))) for k in range(21)})


def run_experiment(seed: int = 0):
    platform = heterogeneous_cluster(noisy=True)

    full_bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
    full_models, full_cost = build_full_models(full_bench, PiecewiseModel, FULL_SWEEP)
    full_dist = partition_geometric(TOTAL, full_models)

    dyn_bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed + 1)
    dyn_models = [PiecewiseModel() for _ in range(platform.size)]
    dyn = DynamicPartitioner(
        partition_geometric, dyn_models, TOTAL, dyn_bench.measure_group, eps=0.03
    )
    dyn_result = dyn.run()

    full_makespan = achieved_makespan(platform, full_dist, UNIT_FLOPS)
    dyn_makespan = achieved_makespan(platform, dyn_result.final, UNIT_FLOPS)
    return platform, full_cost, full_makespan, dyn_result, dyn_makespan


def test_ablation_model_construction_cost(benchmark):
    platform, full_cost, full_makespan, dyn_result, dyn_makespan = (
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    )

    # Break-even: how many application runs before the extra cost of full
    # models is repaid by their (possibly) better distribution.
    gain_per_run = max(dyn_makespan - full_makespan, 0.0)
    extra_cost = full_cost - dyn_result.total_cost
    breakeven = extra_cost / gain_per_run if gain_per_run > 0 else float("inf")

    print_table(
        f"A2: full vs dynamic model construction ({TOTAL} units)",
        ["strategy", "benchmark cost (kernel-s)", "achieved makespan (s)"],
        [
            ["full models", fmt(full_cost, 2), fmt(full_makespan, 4)],
            ["dynamic partial", fmt(dyn_result.total_cost, 2), fmt(dyn_makespan, 4)],
        ],
    )
    print(f"dynamic iterations: {dyn_result.iterations}, "
          f"points per rank: {dyn_result.points_per_rank}")
    print(f"break-even: full models pay off after ~{breakeven:.0f} runs"
          if breakeven != float("inf")
          else "break-even: dynamic matched or beat full models outright")

    # Shape 1: dynamic estimation is far cheaper (the paper's motivation).
    assert dyn_result.total_cost < 0.5 * full_cost
    # Shape 2: and nearly as good -- within 15% makespan.
    assert dyn_makespan <= 1.15 * full_makespan
    # Shape 3: the dynamic run converged.
    assert dyn_result.converged
