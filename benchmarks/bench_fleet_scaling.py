"""Fleet-serving bench: asyncio front end, shard scaling, FPM routing.

Three questions from the fleet layer (PR 6), each answered with a
sustained time-boxed throughput run against real server processes:

* **frontend_http** -- does the keep-alive asyncio front end
  (:class:`~repro.serve.aio.AioFrontend`) match the threaded stdlib one
  on the single-worker cache-hit path?  Gated at parity (``>= 1.0x``) in
  the committed baseline by :func:`harness.check_fleet_scaling`.
* **fleet_scaling** -- does a sharded fleet actually scale?  Workers get
  a uniform **simulated service time** (``--slowdown``: a blocking sleep
  in the worker's event loop, so it genuinely consumes that worker's
  serving capacity; the host has a single core, so scaling must come
  from overlapping service time across processes, exactly as it would
  across machines).  A seeded mixed hit/miss flood
  (:func:`repro.faults.serve.flood_totals`) is driven through the
  router at 1, 2 and 4 workers; ``scale_at_4`` is gated at >= 3.0x.
* **fpm_vs_rr** -- does dogfooding the repo's own partitioners beat
  round-robin on a *skewed* fleet?  Four workers with service times
  6/12/24/48 ms serve a non-affinitised (``"affinity": false``) warm
  stream under both routing policies.  Round-robin feeds every worker
  an equal share, so the slowest bounds the system; the FPM balancer
  apportions the stream by each worker's fitted performance model.
  Gated: FPM throughput >= round-robin's, FPM p99 <= round-robin's.

Writes ``BENCH_fleet_scaling.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_fleet_scaling.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scaling.py -m bench_smoke
"""

from __future__ import annotations

import json
import statistics
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import pytest

from repro.cli import main as cli_main
from repro.faults.serve import flood_totals
from repro.serve import AioFrontend, PlanFleet, PlanServer, ShardClient
from repro.serve.frontend import make_http_server
from repro.serve.worker import load_model_set

from harness import fmt, print_table

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_fleet_scaling.json"
)

#: Uniform simulated per-request service time for the scaling sweep (ms).
SCALING_SLOWDOWN_MS = 20.0

#: Skewed simulated service times for the routing-policy duel (ms).
SKEWED_SLOWDOWNS_MS = (6.0, 12.0, 24.0, 48.0)

#: Warm totals driven in the routing duel (pre-solved on every shard).
DUEL_POOL = tuple(100_000 + 1_000 * i for i in range(8))


def build_points(out_dir: Path) -> Path:
    """A small ``build`` output for the workers to load models from."""
    code = cli_main([
        "build", "--platform", "fig4", "--sizes", "32,128,512",
        "--out", str(out_dir),
    ])
    assert code == 0, "build failed"
    return out_dir


def drive(
    url: str,
    payloads: Callable[[int], Sequence[Dict]],
    duration: float,
    threads: int = 16,
) -> Tuple[float, List[float]]:
    """Flood ``url`` from ``threads`` keep-alive clients for ``duration`` s.

    ``payloads(i)`` is driver *i*'s request sequence (cycled if it runs
    out).  Returns ``(throughput_rps, latencies)`` over successful
    replies; errored replies (shed load, dead fleet) are not counted.
    """
    start = threading.Barrier(threads + 1)
    latencies: List[List[float]] = [[] for _ in range(threads)]
    stop = threading.Event()

    def worker(idx: int) -> None:
        client = ShardClient(url, f"driver{idx}", timeout=30.0)
        stream = list(payloads(idx))
        start.wait()
        pos = 0
        while not stop.is_set():
            payload = stream[pos % len(stream)]
            pos += 1
            t0 = time.perf_counter()
            reply = client.plan(payload)
            if "error" not in reply:
                latencies[idx].append(time.perf_counter() - t0)
        client.close()

    drivers = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(threads)
    ]
    for thread in drivers:
        thread.start()
    start.wait()
    t0 = time.perf_counter()
    time.sleep(duration)
    stop.set()
    for thread in drivers:
        thread.join(timeout=30.0)
    elapsed = time.perf_counter() - t0
    flat = [lat for per_thread in latencies for lat in per_thread]
    return len(flat) / elapsed, flat


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of ``values`` (nearest-rank)."""
    if not values:
        return float("nan")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered)) - 1))
    return ordered[rank]


def bench_frontend_http(
    points: Path, duration: float = 1.5, threads: int = 8
) -> Dict[str, float]:
    """Threaded stdlib front end vs. asyncio front end, hit path, in-process.

    One PlanServer, one pre-warmed total, keep-alive drivers: the
    difference is purely the HTTP front end (thread-per-connection stdlib
    server vs. a single event loop with an inline cache-hit fast lane).
    """
    models = load_model_set(points)
    warm = [{"cmd": "plan", "total": 77_000}]

    def hit_stream(_idx: int) -> Sequence[Dict]:
        return warm

    out: Dict[str, float] = {}
    with PlanServer(models) as server:
        httpd = make_http_server(server, port=0)
        host, port = httpd.server_address[:2]
        runner = threading.Thread(target=httpd.serve_forever, daemon=True)
        runner.start()
        try:
            ShardClient(f"http://{host}:{port}").plan(warm[0])  # pre-warm
            rps, _ = drive(f"http://{host}:{port}", hit_stream,
                           duration, threads)
            out["threaded_hits_per_s"] = rps
        finally:
            httpd.shutdown()
            httpd.server_close()
    with PlanServer(models) as server:
        frontend = AioFrontend(server, port=0)
        frontend.start()
        try:
            ShardClient(frontend.url).plan(warm[0])  # pre-warm
            rps, _ = drive(frontend.url, hit_stream, duration, threads)
            out["aio_hits_per_s"] = rps
        finally:
            frontend.stop()
    out["aio_over_threaded"] = (
        out["aio_hits_per_s"] / out["threaded_hits_per_s"]
    )
    return out


def bench_fleet_scaling(
    points: Path,
    workers: Sequence[int] = (1, 2, 4),
    duration: float = 2.5,
    threads: int = 16,
    slowdown_ms: float = SCALING_SLOWDOWN_MS,
) -> Dict[str, object]:
    """Sustained mixed hit/miss throughput through the router vs. fleet size.

    Every worker carries the same simulated service time, so ideal
    scaling is linear; the measured curve pays the router hop, the
    consistent-hash fan-out of the warm pool across shards, and the cold
    solves the miss fraction injects.  The flood is seeded: every fleet
    size serves the identical request stream.
    """
    out: Dict[str, object] = {
        "slowdown_ms": slowdown_ms,
        "simulated_service_time": True,
        "duration_s": duration,
    }
    stream = flood_totals(4096, pool=16, miss_rate=0.1, seed=42)

    def mixed_stream(idx: int) -> Sequence[Dict]:
        return [{"cmd": "plan", "total": t} for t in stream[idx::threads]]

    for count in workers:
        with PlanFleet(
            points, workers=count, slowdowns_ms=[slowdown_ms],
            probe=False,
        ) as fleet:
            # Warm the pool once so the timed region is the steady state
            # (each pool total cached on its home shard after one solve).
            warm_client = ShardClient(fleet.url, timeout=30.0)
            for total in sorted(set(stream[:64])):
                warm_client.plan({"cmd": "plan", "total": total})
            warm_client.close()
            rps, lats = drive(fleet.url, mixed_stream, duration, threads)
            out[str(count)] = {
                "hits_per_s": rps,
                "requests": len(lats),
                "p50_s": percentile(lats, 0.50),
                "p99_s": percentile(lats, 0.99),
            }
    if "1" in out and str(workers[-1]) in out:
        base = out["1"]["hits_per_s"]
        out[f"scale_at_{workers[-1]}"] = (
            out[str(workers[-1])]["hits_per_s"] / base if base > 0 else 0.0
        )
    return out


def bench_fpm_vs_rr(
    points: Path,
    duration: float = 2.5,
    threads: int = 16,
    slowdowns_ms: Sequence[float] = SKEWED_SLOWDOWNS_MS,
) -> Dict[str, object]:
    """FPM-dogfooding router vs. round-robin on a skewed four-shard fleet.

    The stream is non-affinitised (``"affinity": false``) so the balancer
    alone decides placement, and pre-warmed on *every* shard so any shard
    can serve any request from cache -- the duel measures routing policy,
    nothing else.  The FPM side seeds its per-worker performance models
    from the startup probes and keeps refitting from observed latencies.
    """
    payloads = [
        {"cmd": "plan", "total": total, "affinity": False}
        for total in DUEL_POOL
    ]

    def duel_stream(idx: int) -> Sequence[Dict]:
        return payloads[idx % len(payloads):] + payloads[:idx % len(payloads)]

    out: Dict[str, object] = {
        "slowdowns_ms": list(slowdowns_ms),
        "simulated_service_time": True,
        "duration_s": duration,
    }
    for routing, label in (("fpm", "fpm"), ("round-robin", "round_robin")):
        with PlanFleet(
            points, workers=len(slowdowns_ms), routing=routing,
            slowdowns_ms=slowdowns_ms, probe=(routing == "fpm"),
        ) as fleet:
            for sid in fleet.shards:  # pre-warm every shard directly
                shard = fleet.shard_client(sid)
                for payload in payloads:
                    shard.plan(payload)
            rps, lats = drive(fleet.url, duel_stream, duration, threads)
            section = {
                "throughput_rps": rps,
                "requests": len(lats),
                "p50_s": percentile(lats, 0.50),
                "p99_s": percentile(lats, 0.99),
                "mean_s": statistics.fmean(lats) if lats else float("nan"),
            }
            if routing == "fpm":
                section["weights"] = fleet.router.balancer.weights()
            out[label] = section
    fpm, rr = out["fpm"], out["round_robin"]
    out["fpm_over_rr_throughput"] = (
        fpm["throughput_rps"] / rr["throughput_rps"]
        if rr["throughput_rps"] > 0 else 0.0
    )
    out["fpm_p99_over_rr_p99"] = (
        fpm["p99_s"] / rr["p99_s"] if rr["p99_s"] > 0 else float("nan")
    )
    return out


def run_bench(
    workers: Sequence[int] = (1, 2, 4),
    duration: float = 2.5,
    frontend_duration: float = 1.5,
    duel: bool = True,
    write: bool = True,
) -> Dict:
    """Run every section; optionally write the repo-root baseline file."""
    with tempfile.TemporaryDirectory() as scratch:
        points = build_points(Path(scratch) / "points")
        results: Dict[str, object] = {
            "frontend_http": bench_frontend_http(
                points, duration=frontend_duration
            ),
            "fleet_scaling": bench_fleet_scaling(
                points, workers=workers, duration=duration
            ),
        }
        if duel:
            results["fpm_vs_rr"] = bench_fpm_vs_rr(points, duration=duration)
    if write:
        RESULT_PATH.write_text(
            json.dumps(results, indent=2) + "\n", encoding="utf-8"
        )
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    fh = results["frontend_http"]
    print_table(
        "single-worker front end (sustained cache hits/s)",
        ["frontend", "hits/s"],
        [
            ["threaded", fmt(fh["threaded_hits_per_s"], 0)],
            ["asyncio", fmt(fh["aio_hits_per_s"], 0)],
            ["aio/threaded", fmt(fh["aio_over_threaded"], 2) + "x"],
        ],
    )
    scaling = results["fleet_scaling"]
    rows = []
    for key, row in scaling.items():
        if key.isdigit():
            rows.append([
                key, fmt(row["hits_per_s"], 1), row["requests"],
                fmt(1000 * row["p50_s"], 1), fmt(1000 * row["p99_s"], 1),
            ])
    print_table(
        f"fleet scaling, {scaling['slowdown_ms']:.0f} ms simulated "
        "service time, mixed hit/miss flood",
        ["workers", "req/s", "served", "p50 ms", "p99 ms"],
        rows,
    )
    for key, value in scaling.items():
        if key.startswith("scale_at_"):
            print(f"  {key} = {value:.2f}x")
    duel = results.get("fpm_vs_rr")
    if duel:
        print_table(
            f"routing duel, skewed shards {duel['slowdowns_ms']} ms, "
            "affinity off",
            ["policy", "req/s", "p50 ms", "p99 ms"],
            [
                [label, fmt(duel[label]["throughput_rps"], 1),
                 fmt(1000 * duel[label]["p50_s"], 1),
                 fmt(1000 * duel[label]["p99_s"], 1)]
                for label in ("fpm", "round_robin")
            ],
        )
        print(f"  fpm/rr throughput = {duel['fpm_over_rr_throughput']:.2f}x, "
              f"fpm p99 / rr p99 = {duel['fpm_p99_over_rr_p99']:.2f}")
        print(f"  fpm weights: {duel['fpm']['weights']}")


@pytest.mark.bench_smoke
@pytest.mark.fleet
def test_bench_smoke(capsys):
    """Reduced sweep: the fleet must still scale and aio must stay close.

    Floors are looser than the committed baseline's
    (:func:`harness.check_fleet_scaling`) because the reduced duration
    leaves more room for scheduler noise on a loaded CI host.
    """
    results = run_bench(
        workers=(1, 4), duration=1.2, frontend_duration=0.8,
        duel=False, write=False,
    )
    with capsys.disabled():
        report(results)
    assert results["frontend_http"]["aio_over_threaded"] >= 0.7, (
        "asyncio front end fell far behind the threaded one"
    )
    assert results["fleet_scaling"]["scale_at_4"] >= 2.0, (
        "4-worker fleet below 2x the single worker (reduced-sweep floor)"
    )


if __name__ == "__main__":
    results = run_bench()
    report(results)
    print(f"\nresults written to {RESULT_PATH}")
