"""Ablation A13 -- cost of the distributed partitioning protocol (ref. [11]).

The distributed formulation of dynamic partitioning has every process
exchange only its newest measurement point per round (an allgather of a few
dozen bytes) and recompute the partition locally.  The claim implicit in
the paper's "low execution cost ... suitable for employment in
self-adaptable applications" is that the protocol's own communication is
negligible next to the benchmarking it orchestrates.

We run the protocol on clusters of increasing size and print the cost
split.  Shapes asserted: the distributed run converges to the same
distribution as the centralised one; protocol time stays below a few
percent of the total at every size; and per-round protocol cost grows only
logarithmically-ish with the process count (ring allgather of tiny
payloads is latency-bound).
"""

from __future__ import annotations

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark
from repro.core.models import PiecewiseModel
from repro.core.partition.distributed import distributed_partition
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import parametric_cluster

UNIT_FLOPS = gemm_unit_flops(32)
TOTAL = 40_000
CLUSTERS = [(1, 2), (2, 6), (4, 12)]  # (hybrid nodes, cpu nodes)


def run_experiment(seed: int = 0):
    results = []
    for hybrids, cpus in CLUSTERS:
        platform = parametric_cluster(
            hybrid_nodes=hybrids, cpu_nodes=cpus, noisy=True, seed=seed
        )
        bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
        dist_result = distributed_partition(
            bench, partition_geometric, PiecewiseModel, TOTAL, eps=0.03
        )
        central_bench = PlatformBenchmark(
            platform, unit_flops=UNIT_FLOPS, seed=seed
        )
        central = DynamicPartitioner(
            partition_geometric,
            [PiecewiseModel() for _ in range(platform.size)],
            TOTAL,
            central_bench.measure_group,
            eps=0.03,
        ).run()
        results.append((platform.size, dist_result, central))
    return results


def test_ablation_distributed_protocol(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for size, dist_result, _central in results:
        share = dist_result.protocol_time / max(dist_result.total_time, 1e-30)
        rows.append(
            [
                size,
                dist_result.iterations,
                fmt(dist_result.benchmark_cost, 3),
                fmt(dist_result.protocol_time, 6),
                f"{share * 100:.3f}%",
            ]
        )
    print_table(
        f"A13: distributed partitioning protocol cost ({TOTAL} units)",
        ["processes", "rounds", "benchmark (kernel-s)", "protocol (s)",
         "protocol share"],
        rows,
    )

    for size, dist_result, central in results:
        # Shape 1: distributed and centralised agree (same measurements,
        # same deterministic algorithm).
        assert dist_result.converged
        for a, b in zip(dist_result.final.sizes, central.final.sizes):
            assert abs(a - b) <= 0.05 * TOTAL
        # Shape 2: the protocol is a rounding error next to the benchmarks.
        assert dist_result.protocol_time < 0.02 * dist_result.total_time
    # Shape 3: protocol cost per round grows slowly with the cluster size
    # (tiny latency-bound allgather), staying within ~(p-1) ring steps.
    small = results[0]
    large = results[-1]
    per_round_small = small[1].protocol_time / small[1].iterations
    per_round_large = large[1].protocol_time / large[1].iterations
    ring_growth = (large[0] - 1) / (small[0] - 1)
    assert per_round_large <= ring_growth * per_round_small * 1.5
