"""Ablation A12 -- process binding and outlier rejection in measurement.

Section 4.1 of the paper: "automatic rearranging of the processes provided
by operating system may result in performance degradation, therefore, we
bind processes to cores to ensure a stable performance".  The simulator
models an unbound process as broad timing jitter plus occasional migration
spikes.  This ablation measures what that costs the *models* and what the
robust-statistics machinery (MAD outlier rejection, Precision's
``outlier_threshold``) recovers:

* bound measurement -- the baseline;
* unbound, naive statistics -- spikes inflate the means;
* unbound + outlier rejection -- most of the damage is filtered.

Shapes asserted: unbound-naive models misestimate speeds noticeably more
than bound ones; outlier rejection recovers a large part of the gap.
"""

from __future__ import annotations

import numpy as np

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.precision import Precision
from repro.platform.presets import fig4_trio

UNIT_FLOPS = gemm_unit_flops(32)
MODEL_SIZES = [64, 256, 1024, 4096]
EVAL_SIZES = [100, 500, 2000, 3000]


def _model_error(platform, models) -> float:
    """Mean relative speed error of the models vs device ground truth."""
    errs = []
    for rank, model in enumerate(models):
        device = platform.devices[rank]
        for d in EVAL_SIZES:
            true_speed = device.ideal_speed(UNIT_FLOPS * d, d)
            predicted = model.speed_flops(d, lambda x: UNIT_FLOPS * x)
            errs.append(abs(predicted - true_speed) / true_speed)
    return float(np.mean(errs))


def run_experiment(seed: int = 0):
    platform = fig4_trio(noisy=True)
    reps = Precision(reps_min=10, reps_max=10)
    robust = Precision(reps_min=10, reps_max=10, outlier_threshold=3.5)

    results = {}
    for label, bound, precision in (
        ("bound", True, reps),
        ("unbound (naive)", False, reps),
        ("unbound + MAD filter", False, robust),
    ):
        bench = PlatformBenchmark(
            platform, unit_flops=UNIT_FLOPS, precision=precision,
            seed=seed, bound=bound,
        )
        models, _ = build_full_models(bench, PiecewiseModel, MODEL_SIZES)
        results[label] = _model_error(platform, models)
    return results


def test_ablation_binding_and_outliers(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_table(
        "A12: measurement methodology vs model accuracy "
        "(mean relative speed error)",
        ["methodology", "model error"],
        [[label, fmt(err)] for label, err in results.items()],
    )

    bound = results["bound"]
    naive = results["unbound (naive)"]
    filtered = results["unbound + MAD filter"]
    # Shape 1: skipping binding costs model accuracy.
    assert naive > 2.0 * bound
    # Shape 2: robust statistics recover a large part of the damage.
    assert filtered < 0.6 * naive
    # Shape 3: but binding remains the right answer.
    assert bound <= filtered * 1.05
