"""Closed-loop refinement bench: what the lineage costs where it matters.

The feedback loop (PR 7) refines served models, but the request hot
path must not pay for it.  By construction the lineage check on a plan
request is a single reference read -- ``server.models`` is swapped
atomically at epoch commits, never locked or versioned per request --
so the measured overhead is the honest price of carrying an attached
:class:`~repro.serve.feedback.FeedbackController` (and its lineage)
through :meth:`~repro.serve.server.PlanServer.request`: an attribute
branch, nothing else.

* **Hit-path overhead** -- serving a repeated identical request through a
  server with the closed loop attached vs. a plain server, at ``p`` in
  {4, 16, 64}.  ``overhead_frac`` is gated at <= 5% by
  ``harness.py --check-regression`` (:func:`harness.check_feedback_loop`).
* **Trust-boundary throughput** (informational) -- honest and
  adversarial reports scored per second through
  :meth:`~repro.serve.feedback.FeedbackController.handle`: the cost of
  admitting feedback, paid off the plan path.
* **Refit cost** (informational) -- one gated refit end to end
  (clone-and-extend, regression gate, commit, cache reconcile), the
  price of an epoch.

Writes ``BENCH_feedback_loop.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_feedback_loop.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_feedback_loop.py -m bench_smoke
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

from repro.errors import FeedbackRejected
from repro.serve import (
    FeedbackController,
    FeedbackQuarantine,
    ModelLineage,
    PlanServer,
)

from bench_plan_cache import SOLVE_OPTIONS, TOTAL, build_models
from harness import fmt, print_table

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_feedback_loop.json"
)

RANKS = (4, 16, 64)


def _loop_server(models, max_strikes: int = 3) -> PlanServer:
    server = PlanServer(models, max_workers=2)
    lineage = ModelLineage(server.models)
    server.attach_feedback(FeedbackController(
        server, lineage,
        quarantine=FeedbackQuarantine(max_strikes=max_strikes),
        refit_every=1_000_000,  # never refit inside the timed region
    ))
    return server


def _honest_payload(server: PlanServer, source: str = "bench") -> Dict:
    plan = server.request(TOTAL, options=SOLVE_OPTIONS)
    return {
        "source": source,
        "total": TOTAL,
        "sizes": list(plan.sizes),
        "times": [float(t) for t in plan.times],
    }


def bench_hit_overhead(
    ranks: Sequence[int] = RANKS, reps: int = 50
) -> Dict[str, Dict]:
    """Cache-hit latency: closed-loop server vs. plain server.

    Identical request streams against identically-primed caches; the
    only difference is the attached controller and lineage.  The paired
    round-by-round median ratio (the ``bench_serve_resilience``
    technique) cancels clock drift and run-order advantage; GC stays off
    inside the timed region.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        plain = PlanServer(build_models(p), max_workers=2)
        looped = _loop_server(build_models(p))

        def plain_hit():
            return plain.request(TOTAL, options=SOLVE_OPTIONS)

        def looped_hit():
            return looped.request(TOTAL, options=SOLVE_OPTIONS)

        assert not plain_hit().cached and plain_hit().cached
        assert not looped_hit().cached and looped_hit().cached
        batch = 4
        ratios: List[float] = []
        plain_s = looped_s = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.disable()
        gc.collect()
        try:
            for rep in range(reps):
                first, second = (
                    (plain_hit, looped_hit)
                    if rep % 2 == 0
                    else (looped_hit, plain_hit)
                )
                t0 = time.perf_counter()
                for _ in range(batch):
                    first()
                first_s = (time.perf_counter() - t0) / batch
                t0 = time.perf_counter()
                for _ in range(batch):
                    second()
                second_s = (time.perf_counter() - t0) / batch
                p_round, l_round = (
                    (first_s, second_s)
                    if rep % 2 == 0
                    else (second_s, first_s)
                )
                ratios.append(l_round / p_round)
                plain_s = min(plain_s, p_round)
                looped_s = min(looped_s, l_round)
        finally:
            if gc_was_enabled:
                gc.enable()
        paired = [
            (ratios[i] * ratios[i + 1]) ** 0.5
            for i in range(0, len(ratios) - 1, 2)
        ]
        plain.close()
        looped.close()
        out[str(p)] = {
            "plain_hit_s": plain_s,
            "looped_hit_s": looped_s,
            "overhead_frac": statistics.median(paired) - 1.0,
            "hits_per_s": 1.0 / looped_s,
        }
    return out


def bench_admit_throughput(p: int = 16, reports: int = 200) -> Dict[str, Dict]:
    """Reports scored per second: honest accepts vs. adversarial rejects.

    Informational -- this cost rides the feedback path, never the plan
    path.  The adversarial case is the cheaper one to matter: a flood of
    lies must burn as little server time as possible.
    """
    out: Dict[str, Dict] = {}
    # A bottomless strike budget: the timed flood must keep exercising
    # the scoring path, not fall into the (cheaper) standing-quarantine
    # rejection after three strikes.
    server = _loop_server(build_models(p), max_strikes=10 * reports)
    honest = _honest_payload(server)
    lie = dict(honest, times=[t * 1e3 for t in honest["times"]])
    t0 = time.perf_counter()
    for _ in range(reports):
        server.feedback.handle(honest)
    honest_s = (time.perf_counter() - t0) / reports
    t0 = time.perf_counter()
    rejected = 0
    for _ in range(reports):
        try:
            server.feedback.handle(lie)
        except FeedbackRejected:
            rejected += 1
    lie_s = (time.perf_counter() - t0) / reports
    server.close()
    assert rejected > 0
    out[str(p)] = {
        "honest_admits_per_s": 1.0 / honest_s,
        "adversarial_rejects_per_s": 1.0 / lie_s,
    }
    return out


def bench_refit_cost(p: int = 16, reports: int = 16) -> Dict[str, Dict]:
    """One epoch end to end: propose, gate, commit, reconcile the cache.

    Informational -- paid every ``refit_every`` accepted reports, off
    the request path.
    """
    out: Dict[str, Dict] = {}
    server = PlanServer(build_models(p), max_workers=2)
    lineage = ModelLineage(server.models)
    controller = FeedbackController(
        server, lineage, quarantine=FeedbackQuarantine(),
        refit_every=reports,
    )
    server.attach_feedback(controller)
    honest = _honest_payload(server)  # also primes one cache entry
    t0 = time.perf_counter()
    for i in range(reports):
        server.feedback.handle(dict(honest, source=f"bench{i}"))
    elapsed = time.perf_counter() - t0
    assert lineage.epoch == 1, "the last report must have committed an epoch"
    server.close()
    out[str(p)] = {
        "epoch_commit_s": elapsed,
        "invalidated_plans": controller.counters.invalidated_plans,
        "resolved_plans": controller.counters.resolved_plans,
    }
    return out


def run_bench(ranks: Sequence[int] = RANKS, write: bool = True) -> Dict:
    """Run every section; optionally write the repo-root baseline file."""
    results = {
        "total_units": TOTAL,
        "feedback_loop": bench_hit_overhead(ranks=ranks),
        "feedback_admit": bench_admit_throughput(),
        "feedback_refit": bench_refit_cost(),
    }
    if write:
        RESULT_PATH.write_text(
            json.dumps(results, indent=2) + "\n", encoding="utf-8"
        )
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    print_table(
        "closed-loop vs plain cache-hit latency (controller + lineage wired)",
        ["p", "plain s", "looped s", "overhead", "hits/s"],
        [
            [p, fmt(row["plain_hit_s"], 6), fmt(row["looped_hit_s"], 6),
             fmt(100.0 * row["overhead_frac"], 2) + "%",
             fmt(row["hits_per_s"], 0)]
            for p, row in results["feedback_loop"].items()
        ],
    )
    print_table(
        "trust-boundary throughput (reports scored per second)",
        ["p", "honest/s", "adversarial/s"],
        [
            [p, fmt(row["honest_admits_per_s"], 0),
             fmt(row["adversarial_rejects_per_s"], 0)]
            for p, row in results["feedback_admit"].items()
        ],
    )
    print_table(
        "epoch cost (refit + gate + commit + cache reconcile)",
        ["p", "commit s", "invalidated", "re-solved"],
        [
            [p, fmt(row["epoch_commit_s"], 4),
             str(row["invalidated_plans"]), str(row["resolved_plans"])]
            for p, row in results["feedback_refit"].items()
        ],
    )


@pytest.mark.bench_smoke
def test_bench_smoke(capsys):
    """Reduced sweep: the loop must stay under the 5% hit-path ceiling."""
    results = run_bench(ranks=(4, 64), write=False)
    with capsys.disabled():
        report(results)
    from harness import check_feedback_loop

    failures = check_feedback_loop(results)
    assert not failures, "\n".join(failures)


if __name__ == "__main__":
    results = run_bench()
    report(results)
    print(f"\nwrote {RESULT_PATH}")
