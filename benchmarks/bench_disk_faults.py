"""Disk-fault bench: what the durability guard costs, and what it buys.

The degradation ladder (the ``DurabilityGuard`` inside
:class:`~repro.serve.wal.DurablePlanCache`) must be free where it
matters and honest where it fires:

* **disk_guard_tax** (gated <= 5% by
  :func:`harness.check_disk_faults`) -- the guarded cache vs. the
  fail-fast cache on the cache-hit path, at ``p`` in {4, 64}.  Hits
  mutate nothing, so the guard's price is one attribute check on the
  ack path; anything above noise means the ladder leaked into
  steady-state serving.
* **degraded_throughput** (zero-error gate) -- puts against a dead
  disk (a seeded :class:`~repro.faults.disk.DiskFaultPlan` failing
  every WAL op).  Every mutation must be absorbed, never raised, and
  memory-only puts should run at in-memory speed -- the ladder's
  payoff: a dead disk costs durability, not availability.
* **heal_recovery** (zero-loss gate) -- plans accepted while degraded
  must all reach the disk after the heal re-sync and survive a
  simulated SIGKILL (a fresh cache recovering from the same files).

Writes ``BENCH_disk_faults.json`` at the repo root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_disk_faults.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_disk_faults.py -m bench_smoke
"""

from __future__ import annotations

import gc
import json
import statistics
import tempfile
import time
from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.faults import DiskFaultPlan, DiskFaults, faulty_open
from repro.serve import DurablePlanCache, PlanEngine, PlanResult

from bench_plan_cache import SOLVE_OPTIONS, TOTAL, build_models
from harness import fmt, print_table

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_disk_faults.json"
)

RANKS = (4, 64)


def _dead_disk_cache(scratch: Path, budget: int = 2, **kwargs):
    """A guarded durable cache whose WAL device never writes a byte."""
    plan = DiskFaultPlan({
        "plans.wal*": DiskFaults(fail_after=0, error="ENOSPC"),
    })
    return DurablePlanCache(
        scratch / "plans", durability_budget=budget,
        probe_interval=kwargs.pop("probe_interval", 3600.0),
        opener=faulty_open(plan), **kwargs,
    )


def bench_guard_tax(
    ranks: Sequence[int] = RANKS, reps: int = 50
) -> Dict[str, Dict]:
    """Cache-hit latency: guarded durable cache vs. fail-fast durable cache.

    Identical engines over identically-primed caches; the only delta is
    ``durability_budget=3`` arming the degradation ladder.  Paired
    rounds with alternating order, geometric-mean per pair, median over
    pairs -- the same noise discipline as the hardening bench.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        models = build_models(p)
        with tempfile.TemporaryDirectory() as scratch:
            plain = PlanEngine(
                cache=DurablePlanCache(Path(scratch) / "plain.json",
                                       capacity=16),
                warm=False,
            )
            guarded = PlanEngine(
                cache=DurablePlanCache(Path(scratch) / "guarded.json",
                                       capacity=16, durability_budget=3,
                                       probe_interval=3600.0),
                warm=False,
            )

            def plain_hit():
                return plain.plan(models, TOTAL, options=SOLVE_OPTIONS)

            def guarded_hit():
                return guarded.plan(models, TOTAL, options=SOLVE_OPTIONS)

            assert not plain_hit().cached and plain_hit().cached
            assert not guarded_hit().cached and guarded_hit().cached
            batch = 4
            ratios = []
            plain_s = guarded_s = float("inf")
            gc_was_enabled = gc.isenabled()
            gc.disable()
            gc.collect()
            try:
                for rep in range(reps):
                    first, second = (
                        (plain_hit, guarded_hit)
                        if rep % 2 == 0
                        else (guarded_hit, plain_hit)
                    )
                    t0 = time.perf_counter()
                    for _ in range(batch):
                        first()
                    first_s = (time.perf_counter() - t0) / batch
                    t0 = time.perf_counter()
                    for _ in range(batch):
                        second()
                    second_s = (time.perf_counter() - t0) / batch
                    p_round, g_round = (
                        (first_s, second_s)
                        if rep % 2 == 0
                        else (second_s, first_s)
                    )
                    ratios.append(g_round / p_round)
                    plain_s = min(plain_s, p_round)
                    guarded_s = min(guarded_s, g_round)
            finally:
                if gc_was_enabled:
                    gc.enable()
            paired = [
                (ratios[i] * ratios[i + 1]) ** 0.5
                for i in range(0, len(ratios) - 1, 2)
            ]
            plain.cache.close()
            guarded.cache.close()
        out[str(p)] = {
            "plain_hit_s": plain_s,
            "guarded_hit_s": guarded_s,
            "overhead_frac": statistics.median(paired) - 1.0,
            "hits_per_s": 1.0 / guarded_s,
        }
    return out


def _bench_result(i: int) -> PlanResult:
    return PlanResult(
        key=f"bench-{i}", total=1000 + i, sizes=(600 + i, 400),
        times=(0.6, 0.4), algorithm="geometric",
    )


def bench_degraded_throughput(inserts: int = 256) -> Dict[str, object]:
    """Put throughput on a dead disk: absorbed, memory-speed, zero errors.

    The first ``budget`` puts each pay one doomed journal attempt; after
    the trip the ladder stops touching the device entirely, so the
    steady-state memory-only put should price like a plain dict insert.
    """
    with tempfile.TemporaryDirectory() as scratch:
        cache = _dead_disk_cache(Path(scratch), capacity=inserts + 1)
        errors = 0
        t0 = time.perf_counter()
        for i in range(inserts):
            try:
                cache.put(f"k{i}", _bench_result(i), "bench-models")
            except Exception:
                errors += 1
        elapsed = time.perf_counter() - t0
        stats = cache.durability_stats()
        accepted = len(cache)
        cache.close()
    return {
        "inserts": inserts,
        "errors": errors,
        "accepted": accepted,
        "puts_per_s": inserts / elapsed if elapsed > 0 else float("inf"),
        "mode_after": stats["mode"],
        "trips": stats["trips"],
    }


def bench_heal_recovery(inserts: int = 64) -> Dict[str, object]:
    """Degraded-mode plans must survive the heal re-sync and a SIGKILL."""
    with tempfile.TemporaryDirectory() as scratch:
        scratch_path = Path(scratch)
        # Dies on the third device op, heals once the probe loop has
        # burned through the window; probe_now() is driven by hand.
        plan = DiskFaultPlan({
            "plans.wal*": DiskFaults(fail_after=2, heal_after=16,
                                     error="EIO"),
        })
        cache = DurablePlanCache(
            scratch_path / "plans", durability_budget=2,
            probe_interval=3600.0, opener=faulty_open(plan),
            capacity=inserts + 1,
        )
        for i in range(inserts):
            cache.put(f"k{i}", _bench_result(i), "bench-models")
        assert cache.durability_mode == "memory-only"
        t0 = time.perf_counter()
        probes = 0
        while not cache.probe_now():
            probes += 1
            assert probes < 64, "the fault window never healed"
        heal_s = time.perf_counter() - t0
        accepted = set(cache._entries)
        cache.close()
        # SIGKILL simulation: a pristine cache over the same files.
        fresh = DurablePlanCache(scratch_path / "plans",
                                 capacity=inserts + 1)
        fresh.recover()
        recovered = set(fresh._entries)
        fresh.close()
    return {
        "accepted_while_degraded": len(accepted),
        "recovered_after_heal": len(recovered & accepted),
        "lost": len(accepted - recovered),
        "probes_to_heal": probes + 1,
        "heal_resync_s": heal_s,
    }


def run_bench(ranks: Sequence[int] = RANKS, reps: int = 50,
              write: bool = True) -> Dict:
    """Run every section; optionally write the repo-root baseline file."""
    results = {
        "total_units": TOTAL,
        "disk_guard_tax": bench_guard_tax(ranks=ranks, reps=reps),
        "degraded_throughput": bench_degraded_throughput(),
        "heal_recovery": bench_heal_recovery(),
    }
    if write:
        RESULT_PATH.write_text(
            json.dumps(results, indent=2) + "\n", encoding="utf-8"
        )
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    print_table(
        "durability-guard tax on the cache-hit path",
        ["p", "fail-fast s", "guarded s", "overhead", "hits/s"],
        [
            [p, fmt(row["plain_hit_s"], 6), fmt(row["guarded_hit_s"], 6),
             fmt(100.0 * row["overhead_frac"], 2) + "%",
             fmt(row["hits_per_s"], 0)]
            for p, row in results["disk_guard_tax"].items()
        ],
    )
    degraded = results["degraded_throughput"]
    print_table(
        "puts against a dead disk (ENOSPC on every WAL op)",
        ["inserts", "errors", "accepted", "puts/s", "mode", "trips"],
        [[
            degraded["inserts"], degraded["errors"], degraded["accepted"],
            fmt(degraded["puts_per_s"], 0), degraded["mode_after"],
            degraded["trips"],
        ]],
    )
    heal = results["heal_recovery"]
    print_table(
        "heal re-sync + SIGKILL recovery of degraded-mode plans",
        ["accepted", "recovered", "lost", "probes", "re-sync s"],
        [[
            heal["accepted_while_degraded"], heal["recovered_after_heal"],
            heal["lost"], heal["probes_to_heal"],
            fmt(heal["heal_resync_s"], 4),
        ]],
    )


@pytest.mark.bench_smoke
@pytest.mark.disk
def test_bench_smoke(capsys):
    """Reduced sweep: the guard must stay under the 5% hit-path ceiling."""
    results = run_bench(ranks=(4,), reps=30, write=False)
    with capsys.disabled():
        report(results)
    from harness import check_disk_faults

    failures = check_disk_faults(results)
    assert not failures, "disk-fault gates: " + "; ".join(failures)


if __name__ == "__main__":
    results = run_bench()
    report(results)
    print(f"\nresults written to {RESULT_PATH}")
