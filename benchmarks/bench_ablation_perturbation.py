"""Ablation A9 -- dynamic load balancing under a performance perturbation.

The paper targets *dedicated* platforms, whose stability is what makes
statically built models reusable; its dynamic load balancing (ref. [6]) is
the mechanism that keeps an application balanced when that assumption
breaks.  This ablation breaks it on purpose: mid-run, the fastest device
halves in speed (an external job, a thermal limit).  We compare

* **static**: rows partitioned once from the pre-perturbation optimum
  (the exact 16:11:9 speed ratio) and never moved (threshold = infinity
  disables rebalancing);
* **dynamic**: the paper's load balancer, starting from the same optimum
  and observing real iteration times.

Shapes asserted: both run identically before the event; after it, the
static run's makespan jumps and stays high, while the dynamic run
rebalances within a few iterations and recovers most of the loss.
"""

from __future__ import annotations

import math

import pytest

from harness import fmt, print_table
from repro.apps.jacobi.distributed import run_balanced_jacobi
from repro.core.models import PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import LoadBalancer
from repro.core.partition.geometric import partition_geometric
from repro.platform.perturbation import PerturbationSchedule, SpeedStep
from repro.platform.presets import fig4_trio

ROWS = 720
ITERATIONS = 20
#: Virtual time at which rank 0 (the fastest device) halves in speed --
#: chosen to land mid-run after the initial balancing has settled
#: (iterations cost ~0.4 ms of virtual time each).
EVENT_TIME = 0.002
SLOWDOWN = 0.5


def _run(threshold: float, seed: int = 0):
    platform = fig4_trio(noisy=True)
    models = [PiecewiseModel() for _ in range(platform.size)]
    # Both strategies start from the pre-perturbation optimum (16:11:9).
    optimum = Distribution.from_sizes([320, 220, 180])
    balancer = LoadBalancer(
        partition_geometric, models, ROWS, threshold=threshold, initial=optimum
    )
    schedule = PerturbationSchedule([SpeedStep(0, EVENT_TIME, SLOWDOWN)])
    # eps < 0 forces the run to use every iteration: this experiment is
    # about the timing series, not numerical convergence.
    return run_balanced_jacobi(
        platform,
        balancer,
        eps=-1.0,
        max_iterations=ITERATIONS,
        noise_seed=seed,
        matrix_seed=seed,
        perturbations=schedule,
    )


def run_experiment(seed: int = 0):
    dynamic = _run(threshold=0.05, seed=seed)
    static = _run(threshold=math.inf, seed=seed)
    return dynamic, static


def test_ablation_perturbation_recovery(benchmark):
    dynamic, static = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    rows = []
    for d_rec, s_rec in zip(dynamic.records, static.records):
        rows.append(
            [
                d_rec.iteration,
                fmt(max(s_rec.compute_times), 5),
                fmt(max(d_rec.compute_times), 5),
                str(d_rec.sizes),
                "yes" if d_rec.rebalanced else "",
            ]
        )
    print_table(
        f"A9: Jacobi under a mid-run 2x slowdown of the fastest device "
        f"({ROWS} rows)",
        ["iter", "static compute max", "dynamic compute max", "dynamic rows",
         "rebalanced"],
        rows,
    )
    print(f"final dynamic rows: {dynamic.final_sizes}")

    # Locate the event: first iteration whose static compute max jumps.
    static_max = [max(r.compute_times) for r in static.records]
    pre = static_max[1]
    event_iter = next(
        i for i, t in enumerate(static_max) if t > 1.4 * pre
    )
    assert event_iter >= 2, "event must land after initial balancing"

    dynamic_max = [max(r.compute_times) for r in dynamic.records]
    # Shape 1: before the event both strategies are equally balanced.
    assert dynamic_max[event_iter - 1] == pytest.approx(
        static_max[event_iter - 1], rel=0.15
    )
    # Shape 2: after the event the static run stays degraded...
    static_tail = static_max[event_iter + 3:]
    assert min(static_tail) > 1.3 * pre
    # ...while the dynamic run rebalances and recovers most of the loss.
    dynamic_tail = dynamic_max[event_iter + 3:]
    assert min(dynamic_tail) < 0.8 * min(static_tail)
    # Shape 3: the balancer actually moved rows off the slowed device.
    assert dynamic.final_sizes[0] < static.final_sizes[0]

