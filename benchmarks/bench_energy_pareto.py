"""Bi-objective serving bench: front-solve cost and time-path overhead.

Two claims back the bi-objective subsystem, and
``harness.py --check-regression`` gates both:

* **Front-solve cost** -- a 16-point (time, energy) Pareto sweep through
  :func:`~repro.core.partition.pareto.partition_pareto` must cost at
  most 8x one time-only :func:`partition_geometric` solve
  (``front_over_single``).  The batched interior bisection (one
  vectorized sweep across every scalarization weight, on
  piecewise-linear samplings of the blended cost functions) is what
  makes a 16-way sweep sublinear in the number of points; a naive loop
  of per-alpha solves would cost ~16x and fail the gate.
* **Zero tax on the time hit path** -- serving a cached ``"time"`` plan
  through a :class:`~repro.serve.engine.PlanEngine` must cost the same
  whether or not the objective machinery exists in the request path
  (``time_hit_overhead_frac``, measured engine-with-kind-args over
  engine-with-defaults on the same cache).  The kind-aware key
  derivation short-circuits to the legacy fingerprint for ``"time"``,
  so the overhead budget is noise (5%).

Writes ``BENCH_energy_pareto.json`` at the repo root; gate with
``python benchmarks/harness.py --check-regression``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_energy_pareto.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_energy_pareto.py -m bench_smoke
"""

from __future__ import annotations

import gc
import json
import math
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
import pytest

from repro.core.models import PiecewiseModel
from repro.core.models.base import PerformanceModel
from repro.core.models.energy import PiecewiseEnergyModel
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.pareto import partition_pareto
from repro.core.point import MeasurementPoint
from repro.platform.power import (
    ConstantPower,
    GpuPower,
    energy_points_from_power,
)
from repro.serve import PlanCache, PlanEngine

from harness import fmt, print_table

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_energy_pareto.json"

TOTAL = 1_000_000
RANKS = (4, 16)
FRONT_POINTS = 16


def _time_fn(rank: int) -> Callable[[float], float]:
    """A heterogeneous, mildly non-linear time function for rank ``rank``."""
    speed = 50.0 + 17.0 * ((rank * 7919) % 97)

    def t(d: float) -> float:
        return d / speed * (1.0 + 0.15 * math.sin(1e-5 * d + rank))

    return t


def build_model_pairs(
    p: int, n_points: int = 24
) -> Tuple[List[PerformanceModel], List[PerformanceModel]]:
    """Fitted (speed, energy) model pairs on a skewed CPU/GPU mix.

    Even ranks draw like CPUs (low idle, modest dynamic watts), odd
    ranks like accelerators (high draw with transfer energy), so time-
    and energy-optimal distributions genuinely conflict.
    """
    sizes = np.geomspace(100, TOTAL, n_points)
    models: List[PerformanceModel] = []
    emodels: List[PerformanceModel] = []
    for rank in range(p):
        fn = _time_fn(rank)
        pts = [
            MeasurementPoint(d=int(d), t=max(fn(int(d)), 1e-9)) for d in sizes
        ]
        m = PiecewiseModel()
        m.update_many(pts)
        m.is_ready  # resolve the lazy fit outside the timed region
        models.append(m)
        if rank % 2 == 0:
            profile = ConstantPower(
                idle_watts=5.0 + rank, dynamic_watts=20.0 + 3.0 * rank
            )
        else:
            profile = GpuPower(
                idle_watts=25.0, base_watts=60.0 + 5.0 * (rank % 16),
                peak_watts=250.0, ramp_units=TOTAL / 8,
                transfer_watts=12.0, bytes_per_unit=8.0,
            )
        em = PiecewiseEnergyModel()
        em.update_many(energy_points_from_power(pts, profile))
        em.is_ready
        emodels.append(em)
    return models, emodels


def _best_time(fn: Callable[[], object], reps: int) -> float:
    """Fastest of ``reps`` timed calls -- robust against one-sided OS noise."""
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_front_solve(
    ranks: Sequence[int] = RANKS, reps: int = 5
) -> Dict[str, Dict]:
    """Cost of a 16-point front sweep relative to one time-only solve."""
    out: Dict[str, Dict] = {}
    for p in ranks:
        models, emodels = build_model_pairs(p)

        def single():
            return partition_geometric(TOTAL, models)

        def front():
            return partition_pareto(
                TOTAL, models, emodels, npoints=FRONT_POINTS
            )

        # Warm interpreter paths and check the parity contract once.
        f = front()
        assert f.points[0].sizes == tuple(single().sizes), (
            "front time-endpoint diverged from partition_geometric"
        )
        single_s = _best_time(single, reps)
        front_s = _best_time(front, reps)
        out[str(p)] = {
            "single_s": single_s,
            "front_s": front_s,
            "front_points": len(f.points),
            "front_over_single": front_s / single_s,
        }
    return out


def _best_pair(
    fn_a: Callable[[], object],
    fn_b: Callable[[], object],
    reps: int,
    batch: int = 40,
) -> Tuple[float, float]:
    """Interleaved best-of timing for two paths on one clock.

    Each timed sample runs ``batch`` consecutive calls (the paths here
    are ~100 microseconds, below the stability of a single
    ``perf_counter`` window), and the two paths alternate inside one
    loop so slow clock and cache drift cannot be attributed to
    whichever path ran second.  Returns per-call seconds.
    """
    best_a = best_b = math.inf
    was_enabled = gc.isenabled()
    gc.disable()  # a collection landing in one window skews the ratio
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            for _ in range(batch):
                fn_a()
            t1 = time.perf_counter()
            for _ in range(batch):
                fn_b()
            t2 = time.perf_counter()
            best_a = min(best_a, (t1 - t0) / batch)
            best_b = min(best_b, (t2 - t1) / batch)
    finally:
        if was_enabled:
            gc.enable()
    return best_a, best_b


#: Rank counts for the overhead section: larger than the front sweep's,
#: because the quantity gated is a *ratio* of two identical sub-millisecond
#: paths and only longer hit paths push scheduler noise below the gate.
OVERHEAD_RANKS = (16, 64)


def bench_time_hit_overhead(
    ranks: Sequence[int] = OVERHEAD_RANKS, reps: int = 9
) -> Dict[str, Dict]:
    """Tax of the objective machinery on the cached ``"time"`` hit path.

    Both engines serve the *same* repeated request from a primed cache;
    the second passes the kind/objective arguments explicitly (the code
    path every front end now takes).  ``"time"`` requests short-circuit
    to the legacy fingerprint, so any measurable difference is overhead
    the new plumbing leaked into the pre-existing hot path.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        models, _ = build_model_pairs(p)
        engine = PlanEngine(cache=PlanCache(capacity=16), warm=False)
        engine.plan(models, TOTAL)  # prime

        def hit_legacy():
            return engine.plan(models, TOTAL)

        def hit_kinded():
            return engine.plan(
                models, TOTAL, kind="time", objective=None,
                energy_models=None,
            )

        assert hit_legacy().cached and hit_kinded().cached
        assert hit_legacy().key == hit_kinded().key, (
            "kind-aware path changed the time-plan cache key"
        )
        legacy_s, kinded_s = _best_pair(hit_legacy, hit_kinded, reps)
        out[str(p)] = {
            "legacy_hit_s": legacy_s,
            "kinded_hit_s": kinded_s,
            "time_hit_overhead_frac": kinded_s / legacy_s - 1.0,
        }
    return out


def run_bench(ranks: Sequence[int] = RANKS, write: bool = True) -> Dict:
    """Run every section; optionally write the repo-root baseline file."""
    results = {
        "total_units": TOTAL,
        "front_points": FRONT_POINTS,
        "energy_front": bench_front_solve(ranks=ranks),
        "energy_time_path": bench_time_hit_overhead(),
    }
    if write:
        RESULT_PATH.write_text(
            json.dumps(results, indent=2) + "\n", encoding="utf-8"
        )
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    print_table(
        f"{FRONT_POINTS}-point pareto front vs one time-only solve",
        ["p", "single s", "front s", "points", "front/single"],
        [
            [p, fmt(row["single_s"]), fmt(row["front_s"]),
             row["front_points"], fmt(row["front_over_single"], 2) + "x"]
            for p, row in results["energy_front"].items()
        ],
    )
    print_table(
        "objective plumbing tax on the cached time hit path",
        ["p", "legacy hit s", "kinded hit s", "overhead"],
        [
            [p, fmt(row["legacy_hit_s"], 6), fmt(row["kinded_hit_s"], 6),
             fmt(100.0 * row["time_hit_overhead_frac"], 1) + "%"]
            for p, row in results["energy_time_path"].items()
        ],
    )


@pytest.mark.bench_smoke
def test_bench_smoke(capsys):
    """Reduced sweep: the front solve must clear the 8x ceiling.

    Same totals and front width as the full bench so the committed
    baseline stays comparable; only the rank sweep is reduced.
    """
    results = run_bench(ranks=(4,), write=False)
    with capsys.disabled():
        report(results)
    for row in results["energy_front"].values():
        assert row["front_over_single"] <= 8.0


if __name__ == "__main__":
    results = run_bench()
    report(results)
    print(f"\nwrote {RESULT_PATH}")
