"""Experiment F3 -- Fig. 3: partial FPM construction by dynamic partitioning.

Fig. 3 of the paper shows a few steps of dynamic data partitioning with
piecewise-linear partial FPMs and the geometrical algorithm: starting from
the even distribution, each iteration benchmarks the kernel at the current
per-process sizes, refines the partial estimates and re-partitions, until
the distribution stabilises.

Printed series: the distribution after every iteration plus the number of
points each partial model accumulated.  Shapes asserted: convergence in a
handful of iterations; the final distribution agrees with what *full*
models would produce; the partial models hold far fewer points than a full
sweep (that is the entire point of the dynamic algorithm).
"""

from __future__ import annotations

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.dynamic import DynamicPartitioner
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import heterogeneous_cluster

UNIT_FLOPS = gemm_unit_flops(32)
TOTAL = 40_000
FULL_SWEEP = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768]


def run_experiment(seed: int = 0):
    platform = heterogeneous_cluster(noisy=True)

    # Dynamic: partial estimation while partitioning.
    dyn_bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
    models = [PiecewiseModel() for _ in range(platform.size)]
    dyn = DynamicPartitioner(
        partition_geometric, models, TOTAL, dyn_bench.measure_group, eps=0.03
    )
    result = dyn.run()

    # Reference: full models built in advance.
    full_bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed + 1)
    full_models, full_cost = build_full_models(full_bench, PiecewiseModel, FULL_SWEEP)
    reference = partition_geometric(TOTAL, full_models)
    return platform, result, reference, full_cost, models


def test_fig3_partial_fpm_construction(benchmark):
    platform, result, reference, full_cost, models = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    rows = []
    for i, dist in enumerate(result.distributions, start=1):
        rows.append([i, str(dist.sizes), fmt(dist.predicted_imbalance, 3)])
    print_table(
        f"Fig. 3: dynamic partitioning of {TOTAL} units on {platform.size} processes",
        ["iter", "distribution", "predicted imbalance"],
        rows,
    )
    print_table(
        "Fig. 3: partial vs full model construction",
        ["quantity", "dynamic (partial)", "full sweep"],
        [
            ["points per process", str(result.points_per_rank),
             str([len(FULL_SWEEP)] * platform.size)],
            ["benchmark cost (kernel-s)", fmt(result.total_cost, 2),
             fmt(full_cost, 2)],
        ],
    )
    print(f"final (dynamic):   {result.final.sizes}")
    print(f"final (full FPMs): {reference.sizes}")

    # The "lines through the origin" of the figure: re-run the geometrical
    # algorithm on the final partial models with tracing enabled and show
    # how the bisection narrows onto the balanced time level.
    steps = []
    partition_geometric(TOTAL, models, trace=steps)
    shown = steps[:3] + steps[-3:] if len(steps) > 6 else steps
    print("\nbisection lines (slope k in speed space = 1/T):")
    for step in shown:
        print(f"  T={step.level:10.6f}s  k={step.slope:12.3f}  "
              f"excess={step.excess:+12.1f}")
    # The bisection terminates with a (near-)zero residual.
    assert abs(steps[-1].excess) <= max(1.0, 1e-6 * TOTAL)

    # Shape 1: the dynamic algorithm converges in a handful of iterations.
    assert result.converged
    assert result.iterations <= 10
    # Shape 2: partial models stay partial -- far fewer points than the
    # full sweep needs.
    assert max(result.points_per_rank) < len(FULL_SWEEP)
    # Shape 3: the resulting distribution matches the full-model optimum.
    for a, b in zip(result.final.sizes, reference.sizes):
        assert abs(a - b) <= 0.1 * TOTAL
    # Shape 4: partial estimation is cheaper than the full sweep.
    assert result.total_cost < full_cost
