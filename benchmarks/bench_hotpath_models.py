"""Hot-path throughput bench: scalar vs. batched model evaluation.

Measures the two fast paths this repo's partitioners rely on:

* **Model throughput** -- points/second of the scalar ``time`` loop vs.
  one ``time_batch`` call, for every model class;
* **Partition wall time** -- the batched multi-section
  :func:`~repro.core.partition.geometric.partition_geometric` vs. a
  scalar reference implementation of the same algorithm (bisection on the
  level with one scalar inverse bisection per model per probe -- the
  pre-vectorization seed code), at ``p`` in {4, 16, 64, 256};
* **Ladder overhead** -- the happy-path cost of routing the same
  partition through :class:`~repro.degrade.DegradationPolicy` (fallback
  bookkeeping, certificates) relative to calling the partitioner
  directly.  ``harness.py --check-regression`` gates this at < 5%.

Writes ``BENCH_hotpath_models.json`` at the repo root; compare runs with
``python benchmarks/harness.py --check-regression``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_hotpath_models.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_hotpath_models.py -m bench_smoke
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np
import pytest

from repro.core.models import (
    AkimaModel,
    ConstantModel,
    LinearModel,
    PchipModel,
    PiecewiseModel,
    SegmentedLinearModel,
)
from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.core.partition.geometric import partition_geometric
from repro.core.point import MeasurementPoint
from repro.degrade import DegradationPolicy
from repro.solver.bisect import bisect_monotone_inverse, bisect_root

from harness import fmt, print_table

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath_models.json"

MODEL_CLASSES = {
    "ConstantModel": ConstantModel,
    "LinearModel": LinearModel,
    "PiecewiseModel": PiecewiseModel,
    "AkimaModel": AkimaModel,
    "PchipModel": PchipModel,
    "SegmentedLinearModel": SegmentedLinearModel,
}

TOTAL = 1_000_000
PARTITION_SIZES = (4, 16, 64, 256)


def _time_fn(rank: int) -> Callable[[float], float]:
    """A heterogeneous, mildly non-linear time function for rank ``rank``."""
    speed = 50.0 + 17.0 * ((rank * 7919) % 97)

    def t(d: float) -> float:
        return d / speed * (1.0 + 0.15 * math.sin(1e-5 * d + rank))

    return t


def build_models(cls, p: int, n_points: int = 24) -> List[PerformanceModel]:
    """One fitted model per rank, ``n_points`` sizes spanning the range."""
    sizes = np.geomspace(100, TOTAL, n_points)
    models: List[PerformanceModel] = []
    for rank in range(p):
        fn = _time_fn(rank)
        m = cls()
        m.update_many(
            [MeasurementPoint(d=int(d), t=max(fn(int(d)), 1e-9)) for d in sizes]
        )
        m.is_ready  # resolve the lazy fit outside the timed region
        models.append(m)
    return models


def scalar_reference_partition(
    total: int,
    models: Sequence[PerformanceModel],
    tol: float = 1e-10,
    max_iter: int = 200,
) -> Distribution:
    """The pre-vectorization geometric algorithm: all-scalar bisection.

    Kept verbatim as the baseline the batched implementation is judged
    against; both must produce the same distribution.
    """

    def allocation_at(model: PerformanceModel, level: float) -> float:
        if level <= 0.0:
            return 0.0
        if model.time(total) <= level:
            return float(total)
        x = bisect_monotone_inverse(
            model.time, level, 0.0, float(total), tol=1e-9, expand=False
        )
        return min(max(x, 0.0), float(total))

    t_hi = min(model.time(total) for model in models)

    def excess(level: float) -> float:
        return sum(allocation_at(m, level) for m in models) - float(total)

    level = bisect_root(excess, 0.0, t_hi, tol=tol, max_iter=max_iter)
    shares = [allocation_at(m, level) for m in models]
    sizes = round_preserving_sum(shares, total)
    return Distribution(
        Part(d, models[i].time(d) if d > 0 else 0.0) for i, d in enumerate(sizes)
    )


def _best_time(fn: Callable[[], object], reps: int) -> float:
    """Fastest of ``reps`` timed calls -- robust against one-sided OS noise."""
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_model_throughput(batch_size: int = 4096, reps: int = 5) -> Dict[str, Dict]:
    """Points/second of scalar ``time`` loops vs. one ``time_batch`` call."""
    xs = np.geomspace(1, TOTAL, batch_size)
    out: Dict[str, Dict] = {}
    for name, cls in MODEL_CLASSES.items():
        model = build_models(cls, 1)[0]

        def scalar_loop():
            for x in xs:
                model.time(float(x))

        scalar_s = _best_time(scalar_loop, reps)
        batch_s = _best_time(lambda: model.time_batch(xs), reps)
        batch = model.time_batch(xs)
        scalar_ref = np.asarray([model.time(float(x)) for x in xs])
        np.testing.assert_allclose(batch, scalar_ref, rtol=1e-12, atol=1e-15)
        out[name] = {
            "scalar_pts_per_s": batch_size / scalar_s,
            "batch_pts_per_s": batch_size / batch_s,
            "speedup": scalar_s / batch_s,
        }
    return out


def bench_partition(
    ranks: Sequence[int] = PARTITION_SIZES, reps: int = 3
) -> Dict[str, Dict]:
    """Geometric partition wall time, batched vs. scalar reference."""
    out: Dict[str, Dict] = {}
    for p in ranks:
        models = build_models(PiecewiseModel, p)
        batched = partition_geometric(TOTAL, models)
        reference = scalar_reference_partition(TOTAL, models)
        max_drift = max(
            abs(a - b) for a, b in zip(batched.sizes, reference.sizes)
        )
        batched_s = _best_time(lambda: partition_geometric(TOTAL, models), reps)
        scalar_s = _best_time(
            lambda: scalar_reference_partition(TOTAL, models), reps
        )
        out[str(p)] = {
            "batched_s": batched_s,
            "scalar_s": scalar_s,
            "speedup": scalar_s / batched_s,
            "partitions_per_s": 1.0 / batched_s,
            "max_size_drift_units": float(max_drift),
        }
    return out


def bench_ladder_overhead(
    ranks: Sequence[int] = (4, 64), reps: int = 5
) -> Dict[str, Dict]:
    """Happy-path :class:`DegradationPolicy` cost vs. direct geometric.

    On healthy models the ladder never descends, so its only cost is
    bookkeeping: the strict-mode probe call, certificate recording, and
    report plumbing.  That tax must stay negligible -- the harness gate
    fails a run whose ``overhead_frac`` exceeds 5%.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        models = build_models(PiecewiseModel, p)
        policy = DegradationPolicy()
        dist = policy.partition(TOTAL, models)
        assert not policy.report.steps, (
            f"ladder bench expects a happy path, got fallbacks: "
            f"{policy.report.summary()}"
        )
        direct = partition_geometric(TOTAL, models)
        assert dist.sizes == direct.sizes
        direct_s = _best_time(lambda: partition_geometric(TOTAL, models), reps)
        ladder_s = _best_time(
            lambda: DegradationPolicy().partition(TOTAL, models), reps
        )
        out[str(p)] = {
            "ladder_s": ladder_s,
            "direct_s": direct_s,
            "overhead_frac": ladder_s / direct_s - 1.0,
        }
    return out


def run_bench(
    ranks: Sequence[int] = PARTITION_SIZES,
    batch_size: int = 4096,
    write: bool = True,
) -> Dict:
    results = {
        "total_units": TOTAL,
        "model_throughput": bench_model_throughput(batch_size=batch_size),
        "partition_geometric": bench_partition(ranks=ranks),
        "partition_ladder": bench_ladder_overhead(),
    }
    if write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def report(results: Dict) -> None:
    print_table(
        "model throughput (points/s)",
        ["model", "scalar", "batch", "speedup"],
        [
            [name, fmt(row["scalar_pts_per_s"], 0), fmt(row["batch_pts_per_s"], 0),
             fmt(row["speedup"], 1) + "x"]
            for name, row in results["model_throughput"].items()
        ],
    )
    print_table(
        "geometric partition wall time (piecewise FPMs)",
        ["p", "scalar s", "batched s", "speedup", "size drift"],
        [
            [p, fmt(row["scalar_s"]), fmt(row["batched_s"]),
             fmt(row["speedup"], 1) + "x", fmt(row["max_size_drift_units"], 0)]
            for p, row in results["partition_geometric"].items()
        ],
    )
    print_table(
        "degradation-ladder overhead (happy path, piecewise FPMs)",
        ["p", "direct s", "ladder s", "overhead"],
        [
            [p, fmt(row["direct_s"]), fmt(row["ladder_s"]),
             fmt(100.0 * row["overhead_frac"], 1) + "%"]
            for p, row in results["partition_ladder"].items()
        ],
    )


@pytest.mark.bench_smoke
def test_bench_smoke(capsys):
    """Reduced sweep: batched geometric must beat the scalar seed >= 5x at p=64.

    Uses the full bench's batch size so throughput numbers are comparable
    with the committed baseline; only the rank sweep is reduced.
    """
    results = run_bench(ranks=(4, 64), write=False)
    with capsys.disabled():
        report(results)
    p64 = results["partition_geometric"]["64"]
    assert p64["speedup"] >= 5.0, f"expected >= 5x at p=64, got {p64['speedup']:.1f}x"
    # Both implementations agree on the answer (within integer rounding).
    assert p64["max_size_drift_units"] <= 2.0
    from harness import check_ladder_overhead, check_regression

    # Ladder bookkeeping must stay near-free; the smoke gate is looser
    # than the harness CLI's 5% to ride out shared-CI timing noise.
    overhead = check_ladder_overhead(results, limit=0.25)
    assert not overhead, "ladder overhead: " + "; ".join(overhead)
    if RESULT_PATH.exists():
        baseline = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
        # The committed baseline may come from different hardware; gate the
        # smoke run loosely (a lost vectorization shows up as 5-50x, well
        # past 50%).  The harness CLI keeps the strict 20% for same-machine
        # before/after comparisons.
        failures = check_regression(results, baseline, threshold=0.50)
        assert not failures, "throughput regressions: " + "; ".join(failures)


if __name__ == "__main__":
    report(run_bench())
    print(f"\nresults written to {RESULT_PATH}")
