"""Partition-tolerance bench: the price and payoff of plan replication.

Two questions from the replication layer (the partition-tolerant fleet),
each answered against real worker processes:

* **replication_tax** -- what does ``replicas=2`` cost the steady-state
  hit path?  The answer should be nothing measurable: replication fires
  only on *cold commits* and runs on a background thread, so a warm
  affinity stream through the router pays zero replication work per
  request.  Two identical 2-worker fleets (``replicas=1`` vs
  ``replicas=2``) serve the same seeded warm pool; ``overhead_frac`` is
  gated at 5% by :func:`harness.check_partition_tolerance`.
* **failover** -- what does replication buy?  A 3-worker ``replicas=2``
  fleet serves a pool of plans, replication quiesces, and one shard is
  SIGKILLed.  Every previously acked plan must still be served -- as a
  **cache hit** (a replica copy, not a re-solve) with the same shares.
  ``lost_acked`` is gated at zero and ``post_kill_hit_rate`` at 1.0.

Writes ``BENCH_partition_tolerance.json`` at the repo root.  Run
directly::

    PYTHONPATH=src python benchmarks/bench_partition_tolerance.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_partition_tolerance.py -m bench_smoke
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.serve import PlanFleet, ShardClient

from bench_fleet_scaling import build_points, drive, percentile
from harness import fmt, print_table

RESULT_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_partition_tolerance.json"
)

#: Warm totals for the tax measurement (cached before the timed region).
WARM_POOL = tuple(200_000 + 1_000 * i for i in range(8))

#: Distinct totals acked before the kill in the failover section.
FAILOVER_POOL = tuple(300_000 + 7_000 * i for i in range(10))


def quiesce_replication(fleet: PlanFleet, timeout: float = 20.0) -> bool:
    """Wait until every running shard's push queue is empty."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        gauges = [
            fleet.shard_client(sid).metrics()["replication"]
            for sid, shard in fleet.shards.items() if shard.running
        ]
        if all(g["pending_pushes"] == 0 for g in gauges):
            return True
        time.sleep(0.05)
    return False


def bench_replication_tax(
    points: Path, duration: float = 2.5, threads: int = 12
) -> Dict[str, object]:
    """Warm-pool hit throughput: single-copy fleet vs replicated fleet.

    The pool is pre-solved (and, on the replicated fleet, fully pushed)
    before the timed region, so both sides serve pure affinity cache
    hits -- the measured difference is exactly what the replication
    hooks cost the request path.
    """
    payloads = [{"cmd": "plan", "total": t} for t in WARM_POOL]

    def hit_stream(idx: int) -> Sequence[Dict]:
        offset = idx % len(payloads)
        return payloads[offset:] + payloads[:offset]

    out: Dict[str, object] = {"duration_s": duration}
    for replicas, label in ((1, "replicas_1"), (2, "replicas_2")):
        with PlanFleet(points, workers=2, probe=False,
                       replicas=replicas) as fleet:
            warm = ShardClient(fleet.url, timeout=30.0)
            for payload in payloads:
                warm.plan(payload)
            warm.close()
            if replicas > 1:
                assert quiesce_replication(fleet), (
                    "replication never quiesced before the timed region"
                )
            rps, lats = drive(fleet.url, hit_stream, duration, threads)
            out[label] = {
                "hits_per_s": rps,
                "requests": len(lats),
                "p50_s": percentile(lats, 0.50),
                "p99_s": percentile(lats, 0.99),
            }
    single = out["replicas_1"]["hits_per_s"]
    replicated = out["replicas_2"]["hits_per_s"]
    out["overhead_frac"] = (
        single / replicated - 1.0 if replicated > 0 else float("inf")
    )
    return out


def bench_failover(points: Path) -> Dict[str, object]:
    """Acked-plan survival across a SIGKILL on a replicated fleet."""
    with PlanFleet(points, workers=3, probe=False, replicas=2) as fleet:
        client = ShardClient(fleet.url, timeout=30.0)
        try:
            acked = {}
            for total in FAILOVER_POOL:
                reply = client.plan({"cmd": "plan", "total": total})
                assert sum(reply["sizes"]) == total
                acked[total] = reply["sizes"]
            assert quiesce_replication(fleet), "replication never quiesced"
            # Each commit pushes to exactly one peer (replicas=2), so the
            # fleet-wide received count reaching the acked count means
            # every replica copy has been applied, not just sent.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                received = sum(
                    fleet.shard_client(sid).metrics()["replication"][
                        "replicas_received"]
                    for sid in fleet.shards
                )
                if received >= len(acked):
                    break
                time.sleep(0.05)

            victim = "shard1"
            fleet.kill_shard(victim)
            hits = lost = 0
            for total, sizes in acked.items():
                reply = client.plan({"cmd": "plan", "total": total})
                if "error" in reply or reply["sizes"] != sizes:
                    lost += 1
                elif reply.get("cached"):
                    hits += 1
            return {
                "plans": len(acked),
                "victim": victim,
                "post_kill_hit_rate": hits / len(acked),
                "lost_acked": lost,
            }
        finally:
            client.close()


def run_bench(
    duration: float = 2.5, threads: int = 12, write: bool = True
) -> Dict:
    """Run both sections; optionally write the repo-root baseline file."""
    with tempfile.TemporaryDirectory() as scratch:
        points = build_points(Path(scratch) / "points")
        results: Dict[str, object] = {
            "replication_tax": bench_replication_tax(
                points, duration=duration, threads=threads
            ),
            "failover": bench_failover(points),
        }
    if write:
        RESULT_PATH.write_text(
            json.dumps(results, indent=2) + "\n", encoding="utf-8"
        )
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    tax = results["replication_tax"]
    print_table(
        "replication tax on the warm hit path (2 workers)",
        ["fleet", "hits/s", "p50 ms", "p99 ms"],
        [
            [label, fmt(tax[label]["hits_per_s"], 0),
             fmt(1000 * tax[label]["p50_s"], 2),
             fmt(1000 * tax[label]["p99_s"], 2)]
            for label in ("replicas_1", "replicas_2")
        ],
    )
    print(f"  replication overhead = {100 * tax['overhead_frac']:+.1f}%")
    failover = results["failover"]
    print_table(
        "acked-plan survival across a SIGKILL (3 workers, replicas=2)",
        ["plans acked", "victim", "replica hit rate", "lost"],
        [[
            failover["plans"], failover["victim"],
            fmt(failover["post_kill_hit_rate"], 3),
            failover["lost_acked"],
        ]],
    )


@pytest.mark.bench_smoke
@pytest.mark.netsplit
def test_bench_smoke(capsys):
    """Reduced sweep: replication must stay off the hit path.

    The overhead ceiling is looser than the committed baseline's
    (:func:`harness.check_partition_tolerance`) because the reduced
    duration leaves more room for scheduler noise on a loaded CI host;
    the durability claims (nothing lost, served as replica hits) are
    exact at any duration.
    """
    results = run_bench(duration=1.0, threads=8, write=False)
    with capsys.disabled():
        report(results)
    assert results["replication_tax"]["overhead_frac"] <= 0.5, (
        "replication leaked real work onto the warm hit path"
    )
    assert results["failover"]["lost_acked"] == 0, (
        "a SIGKILL with replicas=2 lost acked plans"
    )
    assert results["failover"]["post_kill_hit_rate"] == 1.0, (
        "acked plans were re-solved instead of replica-served"
    )


if __name__ == "__main__":
    results = run_bench()
    report(results)
    print(f"\nresults written to {RESULT_PATH}")
