"""Experiment F1 -- Fig. 1: column-based heterogeneous matmul partitioning.

Fig. 1(a) of the paper shows matrices partitioned over a 2D column-based
arrangement of heterogeneous processors, each rectangle's area proportional
to its processor's speed, submatrices kept as square as possible to
minimise the total communication volume.

We reproduce the layout pipeline: FPMs from synchronised benchmarks ->
model-based partitioning -> Beaumont column arrangement; the printed rows
are the per-rank rectangles.  Shapes asserted: areas track the model-based
shares, the arrangement tiles the grid exactly, and its communication
volume (sum of half-perimeters) beats the naive 1D row layout.
"""

from __future__ import annotations

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.apps.matmul.partition2d import (
    partition_columns,
    partition_rows,
    sum_half_perimeters,
)
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.geometric import partition_geometric
from repro.platform.presets import heterogeneous_cluster

BLOCK = 32
UNIT_FLOPS = gemm_unit_flops(BLOCK)
NB = 64  # blocks per matrix side


def run_experiment(seed: int = 0):
    platform = heterogeneous_cluster(noisy=True)
    bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
    models, _cost = build_full_models(
        bench, PiecewiseModel, sizes=[64, 256, 1024, 4096, 16384]
    )
    dist = partition_geometric(NB * NB, models)
    partition = partition_columns([float(d) for d in dist.sizes], NB)
    return platform, dist, partition




def test_fig1_column_based_partition(benchmark):
    platform, dist, partition = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    rows = []
    for rank, rect in enumerate(partition.rectangles):
        rows.append(
            [
                rank,
                platform.devices[rank].name,
                dist.sizes[rank],
                rect.area,
                f"{rect.height}x{rect.width}",
                f"({rect.row},{rect.col})",
            ]
        )
    print_table(
        f"Fig. 1: column-based partition of a {NB}x{NB} block grid (b={BLOCK})",
        ["rank", "device", "model share", "area", "shape", "origin"],
        rows,
    )
    hp_cols = sum_half_perimeters(partition)
    hp_rows = sum_half_perimeters(partition_rows([1.0] * platform.size, NB))
    print_table(
        "Fig. 1: communication volume (sum of half-perimeters, blocks)",
        ["layout", "half-perimeter"],
        [["column-based", hp_cols], ["1D rows", hp_rows]],
    )

    # Shape 1: exact tiling.
    partition.validate()
    # Shape 2: achieved areas track the model-based shares.
    for share, rect in zip(dist.sizes, partition.rectangles):
        assert abs(rect.area - share) <= 2 * NB + 1
    # Shape 3: the GPU-accelerated process owns the largest rectangle.
    gpu_rank = next(
        r for r, dev in enumerate(platform.devices) if "gpu" in dev.name
    )
    assert partition.rectangles[gpu_rank].area == max(partition.areas())
    # Shape 4: column-based beats the 1D layout on communication volume.
    assert hp_cols < hp_rows
