"""Ablation A3 -- interpolation accuracy vs number of measured points.

Fig. 2 contrasts the two FPM interpolation schemes at one sampling density;
this ablation sweeps the density.  For each point budget we build both
models on the Netlib-like wiggly speed function and record the mean
relative speed-prediction error against ground truth.

Shapes asserted: errors shrink as points are added (for both schemes); the
Akima spline dominates piecewise at every density; with enough points both
land in the low single digits of percent.
"""

from __future__ import annotations

import numpy as np

from harness import fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import Benchmark
from repro.core.kernel import SimulatedKernel
from repro.core.models import AkimaModel, PchipModel, PiecewiseModel
from repro.core.precision import Precision
from repro.platform.presets import fig2_device

UNIT_FLOPS = gemm_unit_flops(32)
POINT_BUDGETS = [5, 9, 17, 33]
SIZE_RANGE = (50, 4950)
EVAL_SIZES = list(range(100, 4900, 40))


def _mean_error(device, model) -> float:
    errs = []
    for d in EVAL_SIZES:
        true_speed = device.ideal_speed(UNIT_FLOPS * d, d)
        predicted = model.speed_flops(d, lambda x: UNIT_FLOPS * x)
        errs.append(abs(predicted - true_speed) / true_speed)
    return float(np.mean(errs))


def run_experiment(seed: int = 0):
    device = fig2_device(noisy=True)
    kernel = SimulatedKernel(device, UNIT_FLOPS, rng=np.random.default_rng(seed))
    bench = Benchmark(kernel, Precision(reps_min=5, reps_max=25, relative_error=0.01))
    results = []
    for budget in POINT_BUDGETS:
        sizes = np.linspace(SIZE_RANGE[0], SIZE_RANGE[1], budget)
        piecewise, akima, pchip = PiecewiseModel(), AkimaModel(), PchipModel()
        for d in sizes:
            point = bench.run(int(round(d)))
            piecewise.update(point)
            akima.update(point)
            pchip.update(point)
        results.append(
            (
                budget,
                _mean_error(device, piecewise),
                _mean_error(device, akima),
                _mean_error(device, pchip),
            )
        )
    return results


def test_ablation_interpolation_accuracy(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    print_table(
        "A3: mean relative speed error vs number of measured points",
        ["points", "piecewise", "akima", "pchip"],
        [[b, fmt(pw), fmt(ak), fmt(pc)] for b, pw, ak, pc in results],
    )

    budgets = [b for b, _pw, _ak, _pc in results]
    pw_errs = [pw for _b, pw, _ak, _pc in results]
    ak_errs = [ak for _b, _pw, ak, _pc in results]
    pc_errs = [pc for _b, _pw, _ak, pc in results]

    # Shape 1: more points -> lower error (ends of the sweep compared, to
    # tolerate local noise wobble).
    assert pw_errs[-1] < pw_errs[0]
    assert ak_errs[-1] < ak_errs[0]
    # Shape 2: Akima dominates piecewise at every density (Fig. 2's story).
    for pw, ak in zip(pw_errs, ak_errs):
        assert ak <= pw * 1.05
    # Shape 3: dense sampling reaches low-single-digit percent error.
    assert ak_errs[-1] < 0.03
    assert pw_errs[-1] < 0.06
    assert budgets == POINT_BUDGETS
    # Shape 4: PCHIP sits between piecewise and Akima -- monotone time
    # functions cost a little accuracy on wiggly data, far less than
    # coarsening does.
    assert pc_errs[-1] < 0.06
    assert pc_errs[-1] < pw_errs[0]
