"""Ablation A7 -- flat vs hierarchical (two-level) partitioning.

The paper frames the platform as "a hierarchical heterogeneous
distributed-memory system".  Two-level partitioning splits the total across
*nodes* using aggregate node models, then across each node's devices.  The
question this ablation answers: how much balance is lost by going through
the node aggregates, and what is bought (a node-level distribution that can
be computed from p_node models instead of p_device models)?

Shapes asserted: the hierarchical flat distribution achieves a ground-truth
makespan within a few percent of the flat (single-level) one; node shares
are proportional to aggregate node speeds; totals are exact at both levels.
"""

from __future__ import annotations

from harness import achieved_makespan, fmt, print_table
from repro.apps.matmul.kernel import gemm_unit_flops
from repro.core.benchmark import PlatformBenchmark, build_full_models
from repro.core.models import PiecewiseModel
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.hierarchical import (
    group_models_by_node,
    partition_hierarchical,
)
from repro.platform.presets import heterogeneous_cluster

UNIT_FLOPS = gemm_unit_flops(32)
TOTAL = 60_000
MODEL_SIZES = sorted({int(round(64 * 2 ** (k / 2))) for k in range(21)})
NODE_SAMPLES = [500, 2000, 8000, 20000, 40000, 60000]


def run_experiment(seed: int = 0):
    platform = heterogeneous_cluster(noisy=True)
    bench = PlatformBenchmark(platform, unit_flops=UNIT_FLOPS, seed=seed)
    models, _ = build_full_models(bench, PiecewiseModel, MODEL_SIZES)

    flat = partition_geometric(TOTAL, models)
    groups = group_models_by_node(platform, models)
    hier = partition_hierarchical(TOTAL, groups, NODE_SAMPLES)

    return platform, flat, hier


def test_ablation_hierarchical_partitioning(benchmark):
    platform, flat, hier = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    flat_mk = achieved_makespan(platform, flat, UNIT_FLOPS)
    hier_mk = achieved_makespan(platform, hier.flat, UNIT_FLOPS)

    print_table(
        f"A7: flat vs hierarchical partitioning of {TOTAL} units",
        ["strategy", "device distribution", "real makespan(s)"],
        [
            ["flat (1-level)", str(flat.sizes), fmt(flat_mk, 4)],
            ["hierarchical (2-level)", str(hier.flat.sizes), fmt(hier_mk, 4)],
        ],
    )
    node_names = [node.name for node in platform.nodes]
    print_table(
        "A7: node-level split (2-level, from aggregate node models)",
        ["node", "share", "aggregate speed (units/s)"],
        [
            [name, part.d, fmt(model.speed(max(part.d, 1)), 0)]
            for name, part, model in zip(
                node_names, hier.node_distribution.parts, hier.node_models
            )
        ],
    )

    # Shape 1: totals exact at both levels.
    assert hier.flat.total == TOTAL
    assert hier.node_distribution.total == TOTAL
    # Shape 2: the hybrid (GPU) node dominates the node-level split.
    hybrid_share = hier.node_distribution.parts[0].d
    assert hybrid_share > 0.6 * TOTAL
    # Shape 3: hierarchical costs at most a few percent of makespan.
    assert hier_mk <= 1.10 * flat_mk
