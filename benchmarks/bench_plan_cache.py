"""Plan-cache serving bench: cache-hit latency vs. cold solves, warm iters.

Measures the serving layer added by :mod:`repro.serve`:

* **Cache-hit latency** -- wall time of serving a repeated identical
  request through :class:`~repro.serve.engine.PlanEngine` (fingerprint +
  LRU lookup, no partitioner run) vs. the cold path (fingerprint + full
  geometric solve), at ``p`` in {4, 16, 64}.  The hit path must be at
  least 10x faster than the cold solve -- that is the whole argument for
  fronting repartitioning loops with the cache, and
  ``harness.py --check-regression`` gates it.
* **Warm-start savings** -- bisection iterations of a cold solve vs. a
  solve warm-started from the nearest cached plan at a nearby total.
  Warm results are bit-identical to cold by construction (see
  ``tests/test_serve_warm_parity.py``); this section records how many
  iterations the narrowed bracket actually saves.

Writes ``BENCH_plan_cache.json`` at the repo root; gate with
``python benchmarks/harness.py --check-regression``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py

or as an opt-in smoke test::

    PYTHONPATH=src python -m pytest benchmarks/bench_plan_cache.py -m bench_smoke
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Callable, Dict, List, Sequence

import numpy as np
import pytest

from repro.core.models import PiecewiseModel
from repro.core.models.base import PerformanceModel
from repro.core.point import MeasurementPoint
from repro.serve import PlanCache, PlanEngine

from harness import fmt, print_table

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_plan_cache.json"

TOTAL = 1_000_000
RANKS = (4, 16, 64)

#: Options pinning the geometric solver to its cheapest configuration, so
#: the cold baseline is the *hardest* one for the cache to beat.
SOLVE_OPTIONS = {"probes": 1}


def _time_fn(rank: int) -> Callable[[float], float]:
    """A heterogeneous, mildly non-linear time function for rank ``rank``."""
    speed = 50.0 + 17.0 * ((rank * 7919) % 97)

    def t(d: float) -> float:
        return d / speed * (1.0 + 0.15 * math.sin(1e-5 * d + rank))

    return t


def build_models(p: int, n_points: int = 24) -> List[PerformanceModel]:
    """One fitted piecewise model per rank, sizes spanning the range."""
    sizes = np.geomspace(100, TOTAL, n_points)
    models: List[PerformanceModel] = []
    for rank in range(p):
        fn = _time_fn(rank)
        m = PiecewiseModel()
        m.update_many(
            [MeasurementPoint(d=int(d), t=max(fn(int(d)), 1e-9)) for d in sizes]
        )
        m.is_ready  # resolve the lazy fit outside the timed region
        models.append(m)
    return models


def _best_time(fn: Callable[[], object], reps: int) -> float:
    """Fastest of ``reps`` timed calls -- robust against one-sided OS noise."""
    best = math.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_cache_hit(
    ranks: Sequence[int] = RANKS, reps: int = 5
) -> Dict[str, Dict]:
    """Serving latency of the cache-hit path vs. the cold solve path.

    Both paths pay the model fingerprint (the engine recomputes it on
    every request, because dynamic loops refit models between calls); the
    cold path additionally runs the partitioner.  The hit path clearing
    that solve is the cache's raison d'etre, so ``hit_speedup`` is gated
    at >= 10x by :func:`harness.check_plan_cache`.
    """
    out: Dict[str, Dict] = {}
    for p in ranks:
        models = build_models(p)
        engine = PlanEngine(cache=PlanCache(capacity=16), warm=False)

        def cold():
            engine.cache.clear()
            return engine.plan(models, TOTAL, options=SOLVE_OPTIONS)

        def hit():
            return engine.plan(models, TOTAL, options=SOLVE_OPTIONS)

        cold()  # warm the interpreter paths
        cold_s = _best_time(cold, reps)
        primed = hit()
        assert primed.cached, "hit bench must be served from the cache"
        hit_s = _best_time(hit, reps)
        assert hit().sizes == primed.sizes
        assert engine.counters.computations == reps + 1, (
            "the hit path ran the partitioner"
        )
        out[str(p)] = {
            "cold_s": cold_s,
            "hit_s": hit_s,
            "hit_speedup": cold_s / hit_s,
            "hits_per_s": 1.0 / hit_s,
        }
    return out


def bench_warm_start(
    ranks: Sequence[int] = RANKS, shift_frac: float = 0.1
) -> Dict[str, Dict]:
    """Bisection iterations saved by warm-starting from a nearby plan."""
    out: Dict[str, Dict] = {}
    near_total = int(TOTAL * (1.0 - shift_frac))
    for p in ranks:
        models = build_models(p)
        cold_engine = PlanEngine(cache=PlanCache(capacity=4), warm=False)
        cold = cold_engine.plan(models, TOTAL, options=SOLVE_OPTIONS)
        warm_engine = PlanEngine(cache=PlanCache(capacity=4), warm=True)
        warm_engine.plan(models, near_total, options=SOLVE_OPTIONS)
        warm = warm_engine.plan(models, TOTAL, options=SOLVE_OPTIONS)
        assert warm.warm, "expected a warm-started solve"
        assert warm.sizes == cold.sizes, "warm start changed the answer"
        cold_iters = cold.cert.iterations
        warm_iters = warm.cert.iterations
        out[str(p)] = {
            "cold_iters": cold_iters,
            "warm_iters": warm_iters,
            "iters_saved_frac": 1.0 - warm_iters / cold_iters,
        }
    return out


def run_bench(ranks: Sequence[int] = RANKS, write: bool = True) -> Dict:
    """Run every section; optionally write the repo-root baseline file."""
    results = {
        "total_units": TOTAL,
        "plan_cache": bench_cache_hit(ranks=ranks),
        "warm_start": bench_warm_start(ranks=ranks),
    }
    if write:
        RESULT_PATH.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    return results


def report(results: Dict) -> None:
    """Print the bench tables for a results tree."""
    print_table(
        "plan-cache serving latency (piecewise FPMs)",
        ["p", "cold s", "hit s", "speedup", "hits/s"],
        [
            [p, fmt(row["cold_s"]), fmt(row["hit_s"], 6),
             fmt(row["hit_speedup"], 1) + "x", fmt(row["hits_per_s"], 0)]
            for p, row in results["plan_cache"].items()
        ],
    )
    print_table(
        "warm-start iteration savings (10% total shift)",
        ["p", "cold iters", "warm iters", "saved"],
        [
            [p, row["cold_iters"], row["warm_iters"],
             fmt(100.0 * row["iters_saved_frac"], 0) + "%"]
            for p, row in results["warm_start"].items()
        ],
    )


@pytest.mark.bench_smoke
def test_bench_smoke(capsys):
    """Reduced sweep: the cache-hit path must clear the 10x floor.

    Same totals and solver options as the full bench so the committed
    baseline stays comparable; only the rank sweep is reduced.
    """
    results = run_bench(ranks=(4, 64), write=False)
    with capsys.disabled():
        report(results)
    from harness import check_plan_cache

    failures = check_plan_cache(results)
    assert not failures, "plan-cache floor: " + "; ".join(failures)
    for p, row in results["warm_start"].items():
        assert row["warm_iters"] <= row["cold_iters"], (
            f"warm start cost iterations at p={p}"
        )


if __name__ == "__main__":
    report(run_bench())
    print(f"\nresults written to {RESULT_PATH}")
