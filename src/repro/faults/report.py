"""Resilience bookkeeping: what failed, what was retried, who survived.

The resilient runtime never hides a fault -- every retry, crash and
quarantine becomes a :class:`ResilienceEvent`, and the final state of the
run (who is still usable) is the :class:`ResilienceReport`.  Reports are
built exclusively from deterministic quantities (ranks, operation indices,
virtual costs), so two runs under the same seeded
:class:`~repro.faults.FaultPlan` produce bit-identical reports -- the
property the determinism tests pin down via :meth:`ResilienceReport.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class ResilienceEvent:
    """One thing that went wrong (or was recovered from).

    Attributes:
        kind: event category: ``"transient"``, ``"retry"``, ``"remeasure"``,
            ``"crash"``, ``"hang"``, ``"quarantine"``,
            ``"collective-drop"``, ``"resume"``, ``"repartition"``,
            ``"convergence"``, ``"ModelFallback"`` or
            ``"PartitionFallback"``.
        rank: the rank involved (-1 for run-wide events).
        detail: human-readable specifics (sizes, attempt counts, ...).
    """

    kind: str
    rank: int
    detail: str = ""


@dataclass(frozen=True)
class DeviceQuarantined:
    """A device excluded from the run instead of crashing it.

    Attributes:
        rank: the quarantined rank.
        device: the device's name.
        failures: failure count accumulated when the decision was made.
        reason: why (``"crash"``, ``"hang"``, ``"retries-exhausted"``,
            ``"failure-budget"``).
    """

    rank: int
    device: str
    failures: int
    reason: str


@dataclass
class ResilienceReport:
    """Aggregated outcome of a resilient run.

    Attributes:
        events: everything that happened, in order.
        quarantined: devices excluded from the run.
        survivors: ranks still usable at the end, sorted.
        retries: total measurement retries performed.
        wasted_cost: kernel-seconds spent on failed attempts and backoff.
    """

    events: List[ResilienceEvent] = field(default_factory=list)
    quarantined: List[DeviceQuarantined] = field(default_factory=list)
    survivors: List[int] = field(default_factory=list)
    retries: int = 0
    wasted_cost: float = 0.0

    def record(self, kind: str, rank: int, detail: str = "") -> None:
        """Append one event."""
        self.events.append(ResilienceEvent(kind=kind, rank=rank, detail=detail))

    def record_cert(self, cert, context: str = "") -> None:
        """Record a partitioner convergence certificate as an event.

        Certs are deterministic (iterations, residuals), so recording them
        keeps :meth:`to_dict` replay-stable.  Non-converged certs are the
        interesting ones; converged certs are recorded too so a report
        shows certification coverage, not just failures.
        """
        prefix = f"{context}: " if context else ""
        self.record("convergence", -1, prefix + cert.summary())

    def quarantine(self, rank: int, device: str, failures: int, reason: str) -> None:
        """Mark ``rank`` as quarantined (idempotent)."""
        if self.is_quarantined(rank):
            return
        self.quarantined.append(
            DeviceQuarantined(rank=rank, device=device, failures=failures,
                              reason=reason)
        )
        self.record("quarantine", rank, f"device={device} reason={reason}")
        if rank in self.survivors:
            self.survivors.remove(rank)

    def is_quarantined(self, rank: int) -> bool:
        """Whether ``rank`` has been quarantined."""
        return any(q.rank == rank for q in self.quarantined)

    def to_dict(self) -> Dict:
        """Fully deterministic representation, for equality checks and JSON."""
        return {
            "events": [
                {"kind": e.kind, "rank": e.rank, "detail": e.detail}
                for e in self.events
            ],
            "quarantined": [
                {"rank": q.rank, "device": q.device, "failures": q.failures,
                 "reason": q.reason}
                for q in self.quarantined
            ],
            "survivors": list(self.survivors),
            "retries": self.retries,
            "wasted_cost": repr(self.wasted_cost),
        }

    def summary(self) -> str:
        """One-paragraph human summary for CLI output."""
        lines = [
            f"resilience: {len(self.events)} events, {self.retries} retries, "
            f"{len(self.quarantined)} quarantined, "
            f"survivors {self.survivors}"
        ]
        for q in self.quarantined:
            lines.append(
                f"  quarantined rank {q.rank} ({q.device}): {q.reason} "
                f"after {q.failures} failures"
            )
        return "\n".join(lines)
