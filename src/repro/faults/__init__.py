"""Fault injection and resilience bookkeeping.

FuPerMod's measurement/partition pipeline assumes a dedicated, healthy
platform; production platforms are neither.  This package provides the
testing substrate for the resilient runtime:

* :class:`FaultPlan` / :class:`RankFaults` -- a deterministic, seeded
  script of rank crashes, transient kernel failures, straggler slowdowns,
  NaN timings and dropped collective participants;
* :class:`FaultyKernel`, :class:`DegradedDevice`,
  :class:`FaultyCommunicator` -- wrappers that make healthy components
  misbehave on that schedule;
* :class:`ResilienceReport` / :class:`ResilienceEvent` /
  :class:`DeviceQuarantined` -- the typed record of what failed, what was
  retried and who survived;
* :class:`SolveFaults` / :func:`chaotic_partitioner` /
  :func:`corrupt_wal` / :class:`FeedbackStorm`
  (:mod:`repro.faults.serve`) -- chaos hooks for the plan-serving
  layer: scheduled solve failures and slowdowns, realistic
  write-ahead-journal damage, and seeded honest/adversarial feedback
  streams for the closed-loop refinement suite;
* :class:`NetFaultPlan` / :class:`NetChaos` (:mod:`repro.faults.net`)
  -- transport faults *between* fleet processes: seeded slow links,
  dropped requests, truncated and garbage responses, and asymmetric
  directed partitions, applied by wrapping the fleet's transports
  (:func:`wrap_shard_client`, :func:`wrap_worker_link`) -- the
  netsplit suite's substrate;
* :class:`DiskFaultPlan` / :class:`DiskFaults` / :func:`faulty_open`
  (:mod:`repro.faults.disk`) -- storage faults *under* the durability
  layer: seeded ENOSPC/EIO on write and fsync, short writes, slow
  I/O, read-side corruption and scripted die-then-heal windows,
  spliced into any journal via its ``opener`` seam -- the disk chaos
  suite's substrate.

The consuming resilience layers live where the healthy code lives:
retry/quarantine in :mod:`repro.core.benchmark`
(:class:`~repro.core.benchmark.ResilientPlatformBenchmark`), graceful
degradation in :mod:`repro.core.builder`
(:func:`~repro.core.builder.build_resilient_models`) and
:mod:`repro.core.partition.resilient`, checkpoint/resume in
:mod:`repro.io.checkpoint`.
"""

from repro.faults.disk import (
    DISK_ERRNOS,
    NO_DISK_FAULTS,
    DiskFaultPlan,
    DiskFaults,
    FaultyFile,
    faulty_open,
)
from repro.faults.inject import DegradedDevice, FaultyCommunicator, FaultyKernel
from repro.faults.net import (
    NO_NET_FAULTS,
    NetChaos,
    NetFaultPlan,
    wrap_shard_client,
    wrap_worker_link,
)
from repro.faults.plan import NO_FAULTS, FaultPlan, RankFaults
from repro.faults.report import (
    DeviceQuarantined,
    ResilienceEvent,
    ResilienceReport,
)
from repro.faults.serve import (
    FEEDBACK_BEHAVIOURS,
    FeedbackStorm,
    SolveFaults,
    WAL_CORRUPTIONS,
    chaotic_partitioner,
    corrupt_wal,
)

__all__ = [
    "DISK_ERRNOS",
    "DegradedDevice",
    "DeviceQuarantined",
    "DiskFaultPlan",
    "DiskFaults",
    "FEEDBACK_BEHAVIOURS",
    "FaultPlan",
    "FaultyCommunicator",
    "FaultyFile",
    "FaultyKernel",
    "FeedbackStorm",
    "NO_DISK_FAULTS",
    "NO_FAULTS",
    "NO_NET_FAULTS",
    "NetChaos",
    "NetFaultPlan",
    "RankFaults",
    "ResilienceEvent",
    "ResilienceReport",
    "SolveFaults",
    "WAL_CORRUPTIONS",
    "chaotic_partitioner",
    "corrupt_wal",
    "faulty_open",
    "wrap_shard_client",
    "wrap_worker_link",
]
