"""Deterministic, seeded fault plans.

A :class:`FaultPlan` scripts what goes wrong during a run: which ranks
crash (and when), which devices straggle, how often kernels fail
transiently or report garbage timings, and how often ranks drop out of
collectives.  The plan is *data* -- a mapping from rank to a
:class:`RankFaults` spec plus a seed -- so the same plan replayed against
the same runtime produces bit-identical fault sequences, which is what
makes fault-tolerance testable.

Randomised faults (transient failures, garbage timings, collective drops)
are driven by per-rank generators derived from the plan seed via
:meth:`FaultPlan.rng`; scripted faults (crashes) fire at a fixed
*operation index*.  The unit of that index belongs to the consumer:
kernel executions for :class:`~repro.faults.FaultyKernel`, measurements
for :class:`~repro.core.benchmark.ResilientPlatformBenchmark`, and
application iterations for the distributed apps.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from repro.errors import FaultInjectionError

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RankFaults:
    """Fault spec for one rank.

    Attributes:
        crash_at: operation index at which the rank permanently fails
            (None = never crashes).  The index is 0-based and counted by
            the consuming layer (executions, measurements or iterations).
        transient_rate: probability that one kernel execution raises a
            transient :class:`~repro.errors.FaultInjectionError`.
        straggler_factor: multiplicative slowdown of every execution
            (1.0 = nominal speed; 4.0 = four times slower).
        nan_rate: probability that one kernel execution reports a
            non-finite (NaN) elapsed time instead of a real measurement.
        drop_collective_rate: probability that the rank silently drops
            out of one collective operation.
    """

    crash_at: Optional[int] = None
    transient_rate: float = 0.0
    straggler_factor: float = 1.0
    nan_rate: float = 0.0
    drop_collective_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.crash_at is not None and self.crash_at < 0:
            raise FaultInjectionError(
                f"crash_at must be non-negative, got {self.crash_at}"
            )
        for field in ("transient_rate", "nan_rate", "drop_collective_rate"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0 or math.isnan(value):
                raise FaultInjectionError(
                    f"{field} must be a probability in [0, 1], got {value}"
                )
        if not self.straggler_factor >= 1.0 or math.isinf(self.straggler_factor):
            raise FaultInjectionError(
                f"straggler_factor must be a finite factor >= 1, "
                f"got {self.straggler_factor}"
            )

    @property
    def benign(self) -> bool:
        """True when this spec injects nothing at all."""
        return (
            self.crash_at is None
            and self.transient_rate == 0.0
            and self.straggler_factor == 1.0
            and self.nan_rate == 0.0
            and self.drop_collective_rate == 0.0
        )


#: The spec of a rank the plan says nothing about.
NO_FAULTS = RankFaults()


class FaultPlan:
    """A seeded schedule of faults for a whole run.

    Args:
        rank_faults: mapping from rank to its :class:`RankFaults` spec;
            ranks not present behave normally.
        seed: base seed for every randomised fault draw.
    """

    def __init__(
        self,
        rank_faults: Optional[Mapping[int, RankFaults]] = None,
        seed: int = 0,
    ) -> None:
        specs: Dict[int, RankFaults] = {}
        for rank, spec in (rank_faults or {}).items():
            rank = int(rank)
            if rank < 0:
                raise FaultInjectionError(f"rank must be non-negative, got {rank}")
            if not isinstance(spec, RankFaults):
                raise FaultInjectionError(
                    f"rank {rank}: expected a RankFaults spec, got {type(spec).__name__}"
                )
            specs[rank] = spec
        self._specs = specs
        self.seed = int(seed)

    def for_rank(self, rank: int) -> RankFaults:
        """The fault spec of ``rank`` (benign default when unlisted)."""
        return self._specs.get(rank, NO_FAULTS)

    def rng(self, rank: int, *stream: int) -> np.random.Generator:
        """A fresh deterministic generator for ``rank``.

        Extra ``stream`` integers derive independent sub-streams (e.g. one
        per measurement index), so replays and checkpoint resumes draw the
        same fault sequence for the same operation regardless of what ran
        before it.
        """
        return np.random.default_rng([self.seed, rank, *stream])

    @property
    def faulty_ranks(self) -> List[int]:
        """Ranks with a non-benign spec, sorted."""
        return sorted(r for r, s in self._specs.items() if not s.benign)

    def without_crashes(self) -> "FaultPlan":
        """A copy of the plan with every ``crash_at`` cleared.

        Used by consumers that schedule crashes at their own granularity
        (the resilient benchmark per measurement, the apps per
        iteration) but still delegate the probabilistic faults to a
        lower layer -- otherwise the lower layer would count the same
        ``crash_at`` against its own operation index and fire early.
        """
        return FaultPlan(
            {
                rank: dataclasses.replace(spec, crash_at=None)
                for rank, spec in self._specs.items()
            },
            seed=self.seed,
        )

    def to_dict(self) -> Dict:
        """JSON-serialisable representation of the plan."""
        return {
            "seed": self.seed,
            "ranks": {
                str(rank): dataclasses.asdict(spec)
                for rank, spec in sorted(self._specs.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(data, Mapping):
            raise FaultInjectionError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(RankFaults)}
        specs: Dict[int, RankFaults] = {}
        for rank_text, fields in dict(data.get("ranks", {})).items():
            try:
                rank = int(rank_text)
            except (TypeError, ValueError):
                raise FaultInjectionError(
                    f"bad rank key {rank_text!r} in fault plan"
                ) from None
            if not isinstance(fields, Mapping):
                raise FaultInjectionError(
                    f"rank {rank}: spec must be an object, got {type(fields).__name__}"
                )
            unknown = set(fields) - known
            if unknown:
                raise FaultInjectionError(
                    f"rank {rank}: unknown fault fields {sorted(unknown)}; "
                    f"known: {sorted(known)}"
                )
            try:
                specs[rank] = RankFaults(**fields)
            except TypeError as exc:
                raise FaultInjectionError(f"rank {rank}: {exc}") from exc
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultInjectionError(
                f"fault plan seed must be an integer, got {data.get('seed')!r}"
            ) from None
        return cls(specs, seed=seed)

    def save(self, path: PathLike) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: PathLike) -> "FaultPlan":
        """Read a plan back from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultInjectionError(f"cannot read fault plan {path}: {exc}") from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(f"{path}: not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, faulty_ranks={self.faulty_ranks})"
