"""Transport-fault injection for the plan fleet (the netsplit layer).

:mod:`repro.faults.serve` breaks *nodes* -- kills, WAL damage, solve
failures.  This module breaks the *links between* them, which is the
failure class replication and hinted handoff exist for:

* :class:`NetFaultPlan` -- a seeded, JSON-serialisable script of link
  misbehaviour: slow links (a blocking sleep before the bytes move),
  dropped requests (``ConnectionError`` before anything is sent),
  truncated and garbage responses (the reply arrives damaged), and
  **asymmetric partitions** -- a set of *directed* ``(src, dst)`` pairs
  that are blocked, so ``A -> B`` can be cut while ``B -> A`` flows,
  exactly the pathology that makes naive gossip diverge;
* :class:`NetChaos` -- the live controller: holds the current plan
  (swap it at runtime with :meth:`set_plan` / :meth:`block` /
  :meth:`heal`), draws deterministic per-message decisions from a
  seeded RNG, and counts every verdict;
* :func:`wrap_shard_client` / :func:`wrap_worker_link` -- wrap the
  fleet's two transports (:class:`~repro.serve.shard.ShardClient`
  synchronous, :class:`~repro.serve.router.WorkerLink` asyncio) so
  every message they carry consults the controller *at send time*:
  partitions applied mid-flood affect in-flight traffic immediately.

Workers mount ``POST /chaos`` (see :mod:`repro.serve.worker`), which
feeds their controller from a serialised plan -- the netsplit suite
partitions a live fleet's internal links without reaching into worker
processes.  The router's links live in the supervisor process and are
wrapped directly.

Determinism: every decision consumes one draw from the plan's seeded
RNG per fault class, so a given (seed, message sequence) replays the
identical fault script -- the property all the ``repro.faults`` layers
share.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.errors import FuPerModError

#: Bytes returned in place of a response by the ``garbage`` fault: not
#: JSON, not HTTP, guaranteed to exercise the decode-failure paths.
GARBAGE_BYTES = b"\x00\xff\xfe\x01not-json\x9c\x81garbage"


@dataclass(frozen=True)
class NetFaultPlan:
    """A deterministic script of transport misbehaviour.

    Rates are independent per-message probabilities in ``[0, 1]``;
    ``blocked`` is a set of directed ``(src, dst)`` links that fail
    unconditionally (the partition).  The zero plan (all defaults) is a
    healthy network.

    Attributes:
        seed: RNG seed for the per-message draws.
        slow_rate: probability a message is delayed by ``slow_ms``.
        slow_ms: injected one-way delay, milliseconds.
        drop_rate: probability a request fails before anything is sent
            (``ConnectionError`` -- the peer looks down).
        truncate_rate: probability a response loses its second half.
        garbage_rate: probability a response is replaced with bytes that
            decode as nothing.
        blocked: directed links that are cut outright.
    """

    seed: int = 0
    slow_rate: float = 0.0
    slow_ms: float = 0.0
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    garbage_rate: float = 0.0
    blocked: FrozenSet[Tuple[str, str]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        for name in ("slow_rate", "drop_rate", "truncate_rate",
                     "garbage_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FuPerModError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.slow_ms < 0.0:
            raise FuPerModError(
                f"slow_ms must be non-negative, got {self.slow_ms}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (the ``POST /chaos`` wire format)."""
        return {
            "seed": self.seed,
            "slow_rate": self.slow_rate,
            "slow_ms": self.slow_ms,
            "drop_rate": self.drop_rate,
            "truncate_rate": self.truncate_rate,
            "garbage_rate": self.garbage_rate,
            "blocked": sorted([src, dst] for src, dst in self.blocked),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "NetFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Raises :class:`~repro.errors.FuPerModError` on malformed input
        (a chaos endpoint must not crash its worker on a bad script).
        """
        try:
            blocked = frozenset(
                (str(pair[0]), str(pair[1]))
                for pair in data.get("blocked", ())
            )
            return NetFaultPlan(
                seed=int(data.get("seed", 0)),
                slow_rate=float(data.get("slow_rate", 0.0)),
                slow_ms=float(data.get("slow_ms", 0.0)),
                drop_rate=float(data.get("drop_rate", 0.0)),
                truncate_rate=float(data.get("truncate_rate", 0.0)),
                garbage_rate=float(data.get("garbage_rate", 0.0)),
                blocked=blocked,
            )
        except (TypeError, ValueError, IndexError, KeyError) as exc:
            raise FuPerModError(f"malformed net-fault plan: {exc}") from exc


#: The healthy network.
NO_NET_FAULTS = NetFaultPlan()


class NetChaos:
    """Live fault controller consulted by wrapped transports at send time.

    One controller per process side (a worker's outbound links, the
    router's links); transports wrapped against it see plan swaps --
    including mid-flood partitions and heals -- on their very next
    message.  Thread-safe: the serving threads, the replication thread
    and the test driver all consult/mutate it concurrently.
    """

    def __init__(self, plan: NetFaultPlan = NO_NET_FAULTS) -> None:
        self._lock = threading.Lock()
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self.counters: Dict[str, int] = {
            "messages": 0,
            "blocked": 0,
            "dropped": 0,
            "slowed": 0,
            "truncated": 0,
            "garbled": 0,
        }

    # -- plan management ---------------------------------------------------

    @property
    def plan(self) -> NetFaultPlan:
        """The current fault plan."""
        with self._lock:
            return self._plan

    def set_plan(self, plan: NetFaultPlan) -> None:
        """Swap the fault script (reseeds the RNG from the new plan)."""
        with self._lock:
            self._plan = plan
            self._rng = random.Random(plan.seed)

    def block(self, src: str, dst: str) -> None:
        """Cut the directed link ``src -> dst`` (partition surgery)."""
        with self._lock:
            self._plan = NetFaultPlan(
                seed=self._plan.seed,
                slow_rate=self._plan.slow_rate,
                slow_ms=self._plan.slow_ms,
                drop_rate=self._plan.drop_rate,
                truncate_rate=self._plan.truncate_rate,
                garbage_rate=self._plan.garbage_rate,
                blocked=self._plan.blocked | {(src, dst)},
            )

    def heal(self) -> None:
        """Restore the healthy network (clears every fault, keeps counters)."""
        with self._lock:
            self._plan = NO_NET_FAULTS

    # -- per-message decisions ---------------------------------------------

    def before_send(self, src: str, dst: str) -> Optional[float]:
        """The pre-send verdict for one ``src -> dst`` message.

        Returns the injected delay in seconds (0.0 for none); raises
        ``ConnectionError`` for a blocked link or a dropped request --
        indistinguishable, to the sender, from the peer being down
        (which is the point).
        """
        with self._lock:
            plan = self._plan
            self.counters["messages"] += 1
            if (src, dst) in plan.blocked:
                self.counters["blocked"] += 1
                raise ConnectionError(
                    f"netsplit: link {src} -> {dst} is partitioned"
                )
            if plan.drop_rate and self._rng.random() < plan.drop_rate:
                self.counters["dropped"] += 1
                raise ConnectionError(
                    f"net fault: request {src} -> {dst} dropped"
                )
            if plan.slow_rate and self._rng.random() < plan.slow_rate:
                self.counters["slowed"] += 1
                return plan.slow_ms / 1000.0
        return 0.0

    def after_receive(self, src: str, dst: str, data: bytes) -> bytes:
        """The response-mangling verdict: the (possibly damaged) bytes."""
        with self._lock:
            plan = self._plan
            if plan.truncate_rate and self._rng.random() < plan.truncate_rate:
                self.counters["truncated"] += 1
                return data[: len(data) // 2]
            if plan.garbage_rate and self._rng.random() < plan.garbage_rate:
                self.counters["garbled"] += 1
                return GARBAGE_BYTES
        return data

    def stats(self) -> Dict[str, Any]:
        """Counters plus the active plan (for ``/chaos`` GETs and tests)."""
        with self._lock:
            return {"counters": dict(self.counters),
                    "plan": self._plan.to_dict()}


def wrap_shard_client(client, chaos: NetChaos, src: str):
    """Route a :class:`~repro.serve.shard.ShardClient` through ``chaos``.

    Wraps the client's ``_roundtrip`` in place (every public method
    funnels through it) and returns the client.  The destination is the
    client's ``shard_id`` -- the identity the fault plan's partitions
    name.  Delays run in the calling thread, exactly where the real
    network would stall it.
    """
    original = client._roundtrip
    dst = client.shard_id

    def chaotic_roundtrip(method, path, body=None, deadline=None):
        delay = chaos.before_send(src, dst)
        if delay:
            time.sleep(delay)
        status, data = original(method, path, body, deadline=deadline)
        return status, chaos.after_receive(src, dst, data)

    client._roundtrip = chaotic_roundtrip
    return client


def wrap_worker_link(link, chaos: NetChaos, src: str = "router"):
    """Route a :class:`~repro.serve.router.WorkerLink` through ``chaos``.

    The asyncio counterpart of :func:`wrap_shard_client`: wraps the
    link's ``_roundtrip`` coroutine so delays await on the event loop
    and faults surface as the same exceptions a real broken link would
    raise into the router's failover path.
    """
    original = link._roundtrip
    dst = link.shard_id

    async def chaotic_roundtrip(method, path, body, headers=None):
        delay = chaos.before_send(src, dst)
        if delay:
            await asyncio.sleep(delay)
        status, reply_headers, data = await original(
            method, path, body, headers=headers
        )
        return status, reply_headers, chaos.after_receive(src, dst, data)

    link._roundtrip = chaotic_roundtrip
    return link
