"""Deterministic, seeded storage fault injection.

The durability layer's journals (:mod:`repro.serve.journal`) promise to
*degrade instead of die* when the disk goes bad -- ENOSPC mid-flood,
an fsync that returns EIO, a controller that silently shortens writes.
Testing that promise needs disks that fail on schedule, bit-identically
across replays.  This module scripts them:

* :class:`DiskFaults` -- the fault spec for one path pattern: error
  rates on write and fsync, short writes, slow I/O, read-side
  corruption, plus a scripted *death window* (``fail_after`` /
  ``heal_after`` operation indices) for deterministic
  kill-the-disk-then-heal-it chaos scripts;
* :class:`DiskFaultPlan` -- per-path targeting (fnmatch patterns) plus
  a seed; same plan, same operation sequence, same faults -- the
  property the chaos suite's replays rely on;
* :class:`FaultyFile` / :func:`faulty_open` -- the shim.  Every journal
  accepts an ``opener`` argument (see
  :class:`~repro.serve.journal.AppendJournal`); splicing
  ``faulty_open(plan)`` in makes all of its file traffic flow through
  the plan without the journal knowing faults exist.

Injected failures are :class:`~repro.errors.DiskFaultError` -- an
:class:`OSError` subclass, so the code under test cannot tell them from
real disk trouble (it must not: that is the test).

Operation indices count *mutating* file operations (write, fsync,
truncate) per matched **pattern** -- the pattern models one device, so
every file it matches shares one counter, across re-opens -- and "the
WAL's disk dies at op 12 and heals at op 40" means the same thing no
matter how many times the journal reopened its handle in between.
Sharing the counter is what lets a durability probe (which writes a
*sibling* file on the same device) observe the heal the journal itself
cannot reach while it has stopped appending.  Random draws stay
per-path, so each file's fault sequence is independently reproducible.
"""

from __future__ import annotations

import dataclasses
import errno as errno_module
import json
import math
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Union

import numpy as np

from repro.errors import DiskFaultError, FaultInjectionError

PathLike = Union[str, Path]

#: Symbolic error names a spec may inject, mapped to OS error numbers.
DISK_ERRNOS: Dict[str, int] = {
    "EIO": errno_module.EIO,
    "ENOSPC": errno_module.ENOSPC,
}


@dataclass(frozen=True)
class DiskFaults:
    """Fault spec for one path pattern.

    Attributes:
        write_error_rate: probability that one ``write()`` raises.
        fsync_error_rate: probability that one ``fsync()`` raises
            (the fsyncgate case: data already handed to the kernel,
            durability unconfirmed).
        short_write_rate: probability that one ``write()`` persists only
            a prefix of its payload before raising -- a torn record the
            next replay must detect and drop.
        read_corrupt_rate: probability that one ``read()`` returns
            damaged bytes (a NUL replaces one position, which no
            well-formed JSON-lines journal can contain -- corruption is
            always *detectable*, as on a real checksummed store).
        slow_ms: added latency per file operation, milliseconds.
        fail_after: mutating-operation index at which the disk dies --
            every write/fsync/truncate from that index on fails
            deterministically (None = never).
        heal_after: mutating-operation index at which *all* faults stop
            firing, scripted and random alike (None = never heals).
        error: which OS error injected failures carry (``"EIO"`` or
            ``"ENOSPC"``).
    """

    write_error_rate: float = 0.0
    fsync_error_rate: float = 0.0
    short_write_rate: float = 0.0
    read_corrupt_rate: float = 0.0
    slow_ms: float = 0.0
    fail_after: Optional[int] = None
    heal_after: Optional[int] = None
    error: str = "EIO"

    def __post_init__(self) -> None:
        for field in ("write_error_rate", "fsync_error_rate",
                      "short_write_rate", "read_corrupt_rate"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0 or math.isnan(value):
                raise FaultInjectionError(
                    f"{field} must be a probability in [0, 1], got {value}"
                )
        if not self.slow_ms >= 0.0 or math.isinf(self.slow_ms):
            raise FaultInjectionError(
                f"slow_ms must be a finite non-negative delay, "
                f"got {self.slow_ms}"
            )
        for field in ("fail_after", "heal_after"):
            value = getattr(self, field)
            if value is not None and value < 0:
                raise FaultInjectionError(
                    f"{field} must be non-negative, got {value}"
                )
        if (self.fail_after is not None and self.heal_after is not None
                and self.heal_after <= self.fail_after):
            raise FaultInjectionError(
                f"heal_after ({self.heal_after}) must come after "
                f"fail_after ({self.fail_after})"
            )
        if self.error not in DISK_ERRNOS:
            raise FaultInjectionError(
                f"error must be one of {sorted(DISK_ERRNOS)}, "
                f"got {self.error!r}"
            )

    @property
    def benign(self) -> bool:
        """True when this spec injects nothing at all."""
        return (
            self.write_error_rate == 0.0
            and self.fsync_error_rate == 0.0
            and self.short_write_rate == 0.0
            and self.read_corrupt_rate == 0.0
            and self.slow_ms == 0.0
            and self.fail_after is None
        )

    @property
    def errno_code(self) -> int:
        """The OS error number injected failures carry."""
        return DISK_ERRNOS[self.error]


#: The spec of a path the plan says nothing about.
NO_DISK_FAULTS = DiskFaults()


class DiskFaultPlan:
    """A seeded schedule of storage faults, targeted by path pattern.

    Args:
        patterns: mapping from fnmatch pattern to :class:`DiskFaults`.
            A pattern matches a path when it matches either the file
            name (``"*.wal"``) or the full POSIX path
            (``"*/shard0.plans*"``).  Patterns are tried in insertion
            order; the first match wins.  Unmatched paths behave
            normally.
        seed: base seed for every randomised fault draw.
    """

    def __init__(
        self,
        patterns: Optional[Mapping[str, DiskFaults]] = None,
        seed: int = 0,
    ) -> None:
        specs: Dict[str, DiskFaults] = {}
        for pattern, spec in (patterns or {}).items():
            if not isinstance(pattern, str) or not pattern:
                raise FaultInjectionError(
                    f"path pattern must be a non-empty string, "
                    f"got {pattern!r}"
                )
            if not isinstance(spec, DiskFaults):
                raise FaultInjectionError(
                    f"pattern {pattern!r}: expected a DiskFaults spec, "
                    f"got {type(spec).__name__}"
                )
            specs[pattern] = spec
        self._specs = specs
        self.seed = int(seed)

    def match(self, path: PathLike) -> tuple:
        """``(pattern, spec)`` of ``path``; ``(None, benign)`` when unmatched.

        The winning pattern identifies the simulated *device*: every
        path it matches shares one death-window operation counter.
        """
        import fnmatch

        p = Path(path)
        name, full = p.name, p.as_posix()
        for pattern, spec in self._specs.items():
            if fnmatch.fnmatch(name, pattern) or fnmatch.fnmatch(full, pattern):
                return pattern, spec
        return None, NO_DISK_FAULTS

    def spec_for(self, path: PathLike) -> DiskFaults:
        """The fault spec of ``path`` (benign default when unmatched)."""
        return self.match(path)[1]

    def rng(self, path: PathLike, *stream: int) -> np.random.Generator:
        """A fresh deterministic generator for ``path``.

        The substream is derived from the file *name* (stable across
        scratch directories), so the same journal under the same plan
        draws the same fault sequence on every replay.
        """
        token = zlib.crc32(Path(path).name.encode("utf-8"))
        return np.random.default_rng([self.seed, token, *stream])

    @property
    def faulty_patterns(self) -> list:
        """Patterns with a non-benign spec, in insertion order."""
        return [p for p, s in self._specs.items() if not s.benign]

    def opener(self, clock: Callable[[float], None] = time.sleep) -> Callable:
        """An ``open``-compatible callable enforcing this plan.

        Sugar for :func:`faulty_open`; pass the result as the
        ``opener`` of any :class:`~repro.serve.journal.AppendJournal`.
        """
        return faulty_open(self, clock=clock)

    def to_dict(self) -> Dict:
        """JSON-serialisable representation of the plan."""
        return {
            "seed": self.seed,
            "patterns": {
                pattern: dataclasses.asdict(spec)
                for pattern, spec in self._specs.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DiskFaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (or hand-written JSON)."""
        if not isinstance(data, Mapping):
            raise FaultInjectionError(
                f"disk fault plan must be a JSON object, "
                f"got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(DiskFaults)}
        specs: Dict[str, DiskFaults] = {}
        for pattern, fields in dict(data.get("patterns", {})).items():
            if not isinstance(fields, Mapping):
                raise FaultInjectionError(
                    f"pattern {pattern!r}: spec must be an object, "
                    f"got {type(fields).__name__}"
                )
            unknown = set(fields) - known
            if unknown:
                raise FaultInjectionError(
                    f"pattern {pattern!r}: unknown fault fields "
                    f"{sorted(unknown)}; known: {sorted(known)}"
                )
            try:
                specs[str(pattern)] = DiskFaults(**fields)
            except TypeError as exc:
                raise FaultInjectionError(
                    f"pattern {pattern!r}: {exc}"
                ) from exc
        try:
            seed = int(data.get("seed", 0))
        except (TypeError, ValueError):
            raise FaultInjectionError(
                f"disk fault plan seed must be an integer, "
                f"got {data.get('seed')!r}"
            ) from None
        return cls(specs, seed=seed)

    def save(self, path: PathLike) -> None:
        """Write the plan as JSON."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: PathLike) -> "DiskFaultPlan":
        """Read a plan back from a JSON file."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultInjectionError(
                f"cannot read disk fault plan {path}: {exc}"
            ) from exc
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultInjectionError(
                f"{path}: not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiskFaultPlan(seed={self.seed}, "
            f"faulty_patterns={self.faulty_patterns})"
        )


class _DeviceState:
    """Shared fault state of one simulated device (one matched pattern).

    Every file the pattern matches shares this instance across every
    re-open, so the death window (``fail_after`` .. ``heal_after``)
    counts real operations against the device, not per file or per
    handle -- a probe file written next to a frozen journal advances
    the same clock the journal's heal is waiting on.
    """

    def __init__(self, spec: DiskFaults) -> None:
        self.spec = spec
        self.mutations = 0  # write/fsync/truncate ops so far, all paths
        self.faults_fired = 0
        self.lock = threading.Lock()


class FaultyFile:
    """A file object that fails on the plan's schedule.

    Wraps a real handle; write/fsync/truncate consult the spec's death
    window and error rates, reads may return detectably corrupted
    bytes, and every operation can be slowed.  Exposes the subset of
    the file protocol the journals use (plus context management and
    iteration), delegating anything else to the wrapped handle.
    """

    def __init__(
        self,
        handle: Any,
        device: _DeviceState,
        rng: np.random.Generator,
        path: str,
        clock: Callable[[float], None] = time.sleep,
    ) -> None:
        self._handle = handle
        self._device = device
        self._rng = rng
        self._path = path
        self._clock = clock

    # -- fault machinery ---------------------------------------------------

    def _healed(self, index: int) -> bool:
        heal = self._device.spec.heal_after
        return heal is not None and index >= heal

    def _raise(self, op: str) -> None:
        spec = self._device.spec
        self._device.faults_fired += 1
        raise DiskFaultError(
            f"injected {spec.error} on {op} of {self._path}",
            path=self._path, op=op, errno_code=spec.errno_code,
        )

    def _mutate(self, op: str, rate: float) -> bool:
        """Count one mutating op against the device; raise per schedule.

        Returns True when the op should *short-write* (the caller
        persists a prefix first, then calls :meth:`_raise` itself).
        """
        spec = self._device.spec
        with self._device.lock:
            index = self._device.mutations
            self._device.mutations += 1
            short = scripted = fault = False
            if not self._healed(index):
                if spec.fail_after is not None and index >= spec.fail_after:
                    scripted = True
                elif op == "write" and spec.short_write_rate > 0.0 \
                        and self._rng.random() < spec.short_write_rate:
                    short = True
                elif rate > 0.0 and self._rng.random() < rate:
                    fault = True
        if spec.slow_ms > 0.0:
            self._clock(spec.slow_ms / 1000.0)
        if scripted or fault:
            self._raise(op)
        return short

    # -- the file protocol -------------------------------------------------

    def write(self, data: Any) -> int:
        """Write ``data``, possibly short-writing a prefix then raising."""
        if self._mutate("write", self._device.spec.write_error_rate):
            # Short write: a prefix reaches the disk, then the device
            # gives up -- the torn-record case replay must detect.
            cut = max(1, len(data) // 2) if len(data) else 0
            self._handle.write(data[:cut])
            self._handle.flush()
            self._raise("write")
        return self._handle.write(data)

    def flush(self) -> None:
        """Flush the userspace buffer (never injected -- fsync is)."""
        self._handle.flush()

    def fsync(self) -> None:
        """The sync seam :meth:`AppendJournal._sync` prefers when present."""
        import os

        self._mutate("fsync", self._device.spec.fsync_error_rate)
        os.fsync(self._handle.fileno())

    def truncate(self, size: Optional[int] = None) -> int:
        """Truncate to ``size``; counts as a mutating op on the device."""
        self._mutate("truncate", self._device.spec.write_error_rate)
        return self._handle.truncate(size)

    def read(self, *args: Any) -> Any:
        """Read, optionally slowed and bit-flipped per the fault spec."""
        spec = self._device.spec
        if spec.slow_ms > 0.0:
            self._clock(spec.slow_ms / 1000.0)
        data = self._handle.read(*args)
        if (
            len(data) > 0
            and spec.read_corrupt_rate > 0.0
            and not self._healed(self._device.mutations)
            and self._rng.random() < spec.read_corrupt_rate
        ):
            self._device.faults_fired += 1
            pos = int(self._rng.integers(len(data)))
            nul = b"\x00" if isinstance(data, bytes) else "\x00"
            data = data[:pos] + nul + data[pos + 1:]
        return data

    def seek(self, *args: Any) -> int:
        """Pass-through seek on the wrapped handle."""
        return self._handle.seek(*args)

    def tell(self) -> int:
        """Pass-through tell on the wrapped handle."""
        return self._handle.tell()

    def fileno(self) -> int:
        """Real file descriptor of the wrapped handle."""
        return self._handle.fileno()

    def close(self) -> None:
        """Close the wrapped handle (never injected)."""
        self._handle.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __iter__(self) -> Any:
        return iter(self._handle)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._handle, name)


def faulty_open(
    plan: DiskFaultPlan,
    clock: Callable[[float], None] = time.sleep,
) -> Callable:
    """An ``open``-compatible callable enforcing ``plan``.

    Pass as the ``opener`` of any journal.  Paths the plan does not
    match get the real file back (zero overhead); matched paths get a
    :class:`FaultyFile` sharing one death-window operation counter per
    matched pattern (the simulated device) and one random substream
    per path, both stable across every re-open.

    Args:
        plan: the fault schedule.
        clock: sleeper used for ``slow_ms`` (injectable so tests can
            count delays instead of paying them).
    """
    devices: Dict[str, _DeviceState] = {}
    rngs: Dict[str, np.random.Generator] = {}

    def opener(path: PathLike, mode: str = "r", **kwargs: Any) -> Any:
        handle = open(path, mode, **kwargs)
        pattern, spec = plan.match(path)
        if pattern is None or spec.benign:
            return handle
        device = devices.get(pattern)
        if device is None:
            device = devices[pattern] = _DeviceState(spec)
        key = str(path)
        rng = rngs.get(key)
        if rng is None:
            rng = rngs[key] = plan.rng(path)
        return FaultyFile(handle, device, rng, key, clock=clock)

    opener.devices = devices  # introspection for tests and stats
    return opener
