"""Fault-injecting wrappers for kernels, devices and communicators.

Each wrapper takes a healthy component and a :class:`~repro.faults.RankFaults`
spec and misbehaves on schedule:

* :class:`FaultyKernel` wraps any
  :class:`~repro.core.kernel.ComputationKernel` (simulated or real) and
  injects crashes, transient exceptions, straggler slowdowns and NaN
  timings at ``execute`` time;
* :class:`DegradedDevice` wraps a simulated
  :class:`~repro.platform.Device` whose sustained speed has silently
  dropped (thermal throttling, a failing DIMM, a neighbour VM);
* :class:`FaultyCommunicator` extends
  :class:`~repro.mpi.comm.SimCommunicator` with crashed ranks and
  probabilistic dropped collective participants -- collectives complete
  with the survivors, and every drop is recorded.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.kernel import ComputationKernel, KernelContext
from repro.errors import CommunicationError, FaultInjectionError
from repro.faults.plan import NO_FAULTS, FaultPlan, RankFaults
from repro.faults.report import ResilienceReport
from repro.mpi.comm import SimCommunicator
from repro.mpi.network import Network
from repro.platform.device import Device


class FaultyKernel(ComputationKernel):
    """A kernel that fails the way real benchmarked kernels fail.

    Args:
        inner: the healthy kernel.
        spec: what to inject.
        rng: generator driving the probabilistic faults (derive it from
            :meth:`FaultPlan.rng` for reproducibility).
        rank: rank attached to raised faults (for diagnostics).

    ``crash_at`` counts *executions* of this wrapper: execution index
    ``crash_at`` and every one after it raise a fatal
    :class:`~repro.errors.FaultInjectionError`.
    """

    def __init__(
        self,
        inner: ComputationKernel,
        spec: RankFaults,
        rng: Optional[np.random.Generator] = None,
        rank: int = -1,
    ) -> None:
        self.inner = inner
        self.spec = spec
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.rank = rank
        self.name = f"faulty-{inner.name}"
        self.executions = 0

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the fault stream (one sub-stream per measurement)."""
        self.rng = rng

    @property
    def contention_factor(self) -> float:
        """Delegate contention to the wrapped kernel (if it has any)."""
        return getattr(self.inner, "contention_factor", 1.0)

    @contention_factor.setter
    def contention_factor(self, value: float) -> None:
        if hasattr(self.inner, "contention_factor"):
            self.inner.contention_factor = value

    def complexity(self, d: int) -> float:
        return self.inner.complexity(d)

    def initialize(self, d: int) -> KernelContext:
        return self.inner.initialize(d)

    def execute(self, context: KernelContext) -> float:
        index = self.executions
        self.executions += 1
        spec = self.spec
        if spec.crash_at is not None and index >= spec.crash_at:
            raise FaultInjectionError(
                f"rank {self.rank}: crashed at operation {index}",
                rank=self.rank, kind="crash", fatal=True,
            )
        if spec.transient_rate and self.rng.random() < spec.transient_rate:
            raise FaultInjectionError(
                f"rank {self.rank}: transient kernel failure at operation {index}",
                rank=self.rank, kind="transient", fatal=False,
            )
        elapsed = self.inner.execute(context)
        if spec.nan_rate and self.rng.random() < spec.nan_rate:
            return float("nan")
        return elapsed * spec.straggler_factor

    def finalize(self, context: KernelContext) -> None:
        self.inner.finalize(context)


class DegradedDevice(Device):
    """A device whose sustained speed dropped by a constant factor.

    Unlike :class:`FaultyKernel`'s straggler factor (which only affects
    wrapped kernels), degradation at the device level is visible to every
    consumer -- benchmarks, ground-truth judges, applications -- which is
    the honest model of hardware that actually got slower.

    Args:
        inner: the healthy device.
        slowdown: execution-time multiplier (>= 1).
    """

    def __init__(self, inner: Device, slowdown: float) -> None:
        if not slowdown >= 1.0 or math.isinf(slowdown) or math.isnan(slowdown):
            raise FaultInjectionError(
                f"slowdown must be a finite factor >= 1, got {slowdown}"
            )
        super().__init__(
            inner.name,
            inner.profile,
            kind=inner.kind,
            noise=inner.noise,
            memory_limit_units=inner.memory_limit_units,
        )
        self.inner = inner
        self.slowdown = slowdown

    def ideal_time(self, complexity_flops: float, d: float) -> float:
        return self.inner.ideal_time(complexity_flops, d) * self.slowdown


class FaultyCommunicator(SimCommunicator):
    """A communicator with crashed ranks and dropped collective participants.

    Crashed ranks (marked via :meth:`mark_dead`, or scripted through the
    plan's ``crash_at`` counted in *collective operations*) are removed
    from every subsequent collective; the survivors complete the
    operation.  Ranks with a ``drop_collective_rate`` may additionally sit
    out individual collectives.  Point-to-point traffic to or from a dead
    rank raises :class:`~repro.errors.CommunicationError` -- exactly what
    an application sees when its peer disappears.

    Args:
        size: number of ranks.
        plan: the fault plan (drop rates, scripted crashes).
        network: pairwise cost model.
        report: optional report collecting drop/crash events.
    """

    def __init__(
        self,
        size: int,
        plan: Optional[FaultPlan] = None,
        network: Optional[Network] = None,
        report: Optional[ResilienceReport] = None,
    ) -> None:
        super().__init__(size, network)
        self.plan = plan if plan is not None else FaultPlan()
        self.report = report
        self._dead: Set[int] = set()
        self._drop_rngs = {
            r: self.plan.rng(r, 0xC0)
            for r in range(size)
            if self.plan.for_rank(r).drop_collective_rate > 0.0
        }
        self._collectives = 0

    @property
    def alive(self) -> List[int]:
        """Surviving ranks, sorted."""
        return [r for r in range(self.size) if r not in self._dead]

    def is_dead(self, rank: int) -> bool:
        """Whether ``rank`` has crashed."""
        return rank in self._dead

    def mark_dead(self, rank: int) -> None:
        """Declare ``rank`` crashed; it never participates again."""
        self._check_rank(rank)
        if rank not in self._dead:
            self._dead.add(rank)
            if self.report is not None:
                self.report.record("crash", rank, "communicator peer lost")

    def _check_alive(self, rank: int) -> None:
        if rank in self._dead:
            raise CommunicationError(f"rank {rank} has crashed")

    def _participants(self, ranks: Optional[Sequence[int]]) -> List[int]:
        """Collective group after scripted crashes and probabilistic drops."""
        index = self._collectives
        self._collectives += 1
        group = self._group(ranks)
        for r in group:
            spec = self.plan.for_rank(r)
            if spec.crash_at is not None and index >= spec.crash_at:
                self.mark_dead(r)
        survivors = []
        for r in group:
            if r in self._dead:
                continue
            rng = self._drop_rngs.get(r)
            if rng is not None and rng.random() < self.plan.for_rank(r).drop_collective_rate:
                if self.report is not None:
                    self.report.record(
                        "collective-drop", r, f"collective {index}"
                    )
                continue
            survivors.append(r)
        if not survivors:
            raise CommunicationError(
                f"collective {index}: no surviving participants in group {group}"
            )
        return survivors

    # -- point-to-point: dead peers are an error --------------------------
    def send(self, src: int, dst: int, nbytes: float) -> float:
        self._check_alive(src)
        self._check_alive(dst)
        return super().send(src, dst, nbytes)

    def exchange(self, a: int, b: int, nbytes_ab: float,
                 nbytes_ba: Optional[float] = None) -> float:
        self._check_alive(a)
        self._check_alive(b)
        return super().exchange(a, b, nbytes_ab, nbytes_ba)

    # -- collectives: survivors complete the operation --------------------
    def barrier(self, ranks: Optional[Sequence[int]] = None) -> float:
        return super().barrier(self._participants(ranks))

    def allreduce(self, nbytes: float,
                  ranks: Optional[Sequence[int]] = None) -> float:
        return super().allreduce(nbytes, self._participants(ranks))

    def bcast(self, root: int, nbytes: float,
              ranks: Optional[Sequence[int]] = None) -> float:
        group = self._participants(ranks)
        if root not in group:
            raise CommunicationError(
                f"bcast root {root} crashed or dropped out of group"
            )
        return super().bcast(root, nbytes, group)

    def allgatherv(self, nbytes_per_rank: Sequence[float],
                   ranks: Optional[Sequence[int]] = None) -> float:
        requested = self._group(ranks)
        if len(nbytes_per_rank) != len(requested):
            raise CommunicationError(
                f"allgatherv: {len(nbytes_per_rank)} sizes for "
                f"{len(requested)} ranks"
            )
        group = self._participants(ranks)
        sizes = [nbytes_per_rank[requested.index(r)] for r in group]
        return super().allgatherv(sizes, group)

    def scatterv(self, root: int, nbytes_per_rank: Sequence[float],
                 ranks: Optional[Sequence[int]] = None) -> float:
        requested = self._group(ranks)
        if len(nbytes_per_rank) != len(requested):
            raise CommunicationError(
                f"scatterv: {len(nbytes_per_rank)} sizes for "
                f"{len(requested)} ranks"
            )
        group = self._participants(ranks)
        if root not in group:
            raise CommunicationError(
                f"scatterv root {root} crashed or dropped out of group"
            )
        sizes = [nbytes_per_rank[requested.index(r)] for r in group]
        return super().scatterv(root, sizes, group)

    def gatherv(self, root: int, nbytes_per_rank: Sequence[float],
                ranks: Optional[Sequence[int]] = None) -> float:
        requested = self._group(ranks)
        if len(nbytes_per_rank) != len(requested):
            raise CommunicationError(
                f"gatherv: {len(nbytes_per_rank)} sizes for "
                f"{len(requested)} ranks"
            )
        group = self._participants(ranks)
        if root not in group:
            raise CommunicationError(
                f"gatherv root {root} crashed or dropped out of group"
            )
        sizes = [nbytes_per_rank[requested.index(r)] for r in group]
        return super().gatherv(root, sizes, group)
