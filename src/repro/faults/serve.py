"""Chaos hooks for the plan-serving layer.

Where :mod:`repro.faults.inject` breaks kernels, devices and
communicators, this module breaks the *serving* stack -- on a seeded,
deterministic schedule -- so the chaos tests
(``tests/test_serve_chaos.py``, marker ``chaos``) can assert the
hardening invariants:

* :class:`SolveFaults` + :func:`chaotic_partitioner` -- wrap any
  registered partitioner in scheduled failures (typed
  :class:`~repro.errors.SolverError`, a degradation-ladder trigger) and
  straggler slowdowns, to exercise circuit breakers, deadlines and
  admission control;
* :func:`corrupt_wal` -- damage a write-ahead journal the ways real
  crashes and real disks do (torn tail, garbage tail, flipped interior
  byte), to exercise recovery's tolerate-the-tail /
  refuse-the-interior contract.

* :func:`flood_totals` + :class:`ShardKillSchedule` -- seeded mixed
  hit/miss request streams and kill points for fleet chaos
  (``tests/test_fleet_chaos.py``) and the fleet-scaling benchmark, so
  "SIGKILL one shard mid-flood" is the same flood every run.

* :class:`FeedbackStorm` -- seeded streams of feedback reports in four
  behaviours (honest drift, lying ranks, NaN floods, slow-drip
  poisoners) for the closed-loop chaos suite
  (``tests/test_feedback_chaos.py``): adversarial storms must never
  move served plans, honest drift must converge them.

Kill-and-restart chaos (SIGKILL mid-write, recover, compare) needs a
real process boundary and lives in the tests themselves, driven through
``fupermod serve`` subprocesses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.errors import FaultInjectionError, SolverError

PathLike = Union[str, Path]

#: Valid corruption modes for :func:`corrupt_wal`.
WAL_CORRUPTIONS = ("torn-tail", "garbage-tail", "flip-byte")


@dataclass(frozen=True)
class SolveFaults:
    """A deterministic, seeded schedule of partitioner misbehaviour.

    Attributes:
        fail_first: the first this-many solves raise
            :class:`~repro.errors.SolverError` (deterministic -- the way
            to script "enough failures to open the breaker").
        fail_rate: probability any later solve fails (seeded draw).
        slow_seconds: extra wall seconds added to slowed solves.
        slow_rate: probability a solve is slowed (1.0 slows every one;
            use with ``slow_seconds`` to trip deadlines).
        seed: seed for the probabilistic draws.
    """

    fail_first: int = 0
    fail_rate: float = 0.0
    slow_seconds: float = 0.0
    slow_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.fail_first < 0:
            raise FaultInjectionError(
                f"fail_first must be non-negative, got {self.fail_first}"
            )
        if not 0.0 <= self.fail_rate <= 1.0:
            raise FaultInjectionError(
                f"fail_rate must be in [0, 1], got {self.fail_rate}"
            )
        if self.slow_seconds < 0.0:
            raise FaultInjectionError(
                f"slow_seconds must be non-negative, got {self.slow_seconds}"
            )
        if not 0.0 <= self.slow_rate <= 1.0:
            raise FaultInjectionError(
                f"slow_rate must be in [0, 1], got {self.slow_rate}"
            )

    def rng(self) -> np.random.Generator:
        """A fresh generator for this schedule's probabilistic draws."""
        return np.random.default_rng(self.seed)


def chaotic_partitioner(
    inner: Callable,
    spec: SolveFaults,
    rng: Optional[np.random.Generator] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Callable:
    """Wrap a partitioner function in the misbehaviour ``spec`` scripts.

    The wrapper keeps the inner partitioner's calling convention
    (``(total, models, **kwargs) -> Distribution``) so it can be
    registered under a scratch name and served through the full
    engine/breaker/ladder path.  Failures raise
    :class:`~repro.errors.SolverError` -- a degradation-ladder trigger
    and a breaker-recorded outcome, exactly like a real diverging solve.

    Args:
        inner: the healthy partitioner function.
        spec: what to inject.
        rng: generator for the probabilistic draws (defaults to
            ``spec.rng()``; pass a shared one to correlate with other
            injectors).
        sleep: injectable sleep (tests pass a virtual clock's).

    The wrapper counts invocations on its ``calls`` attribute.
    """
    draws = rng if rng is not None else spec.rng()

    def chaotic(total: int, models: Sequence, **kwargs):
        index = chaotic.calls
        chaotic.calls += 1
        if spec.slow_seconds > 0.0 and (
            spec.slow_rate >= 1.0
            or (spec.slow_rate > 0.0 and draws.uniform() < spec.slow_rate)
        ):
            sleep(spec.slow_seconds)
        if index < spec.fail_first or (
            spec.fail_rate > 0.0 and draws.uniform() < spec.fail_rate
        ):
            raise SolverError(
                f"injected solve fault (call {index}, total={total})"
            )
        return inner(total, models, **kwargs)

    chaotic.calls = 0
    return chaotic


def corrupt_wal(
    path: PathLike,
    mode: str = "torn-tail",
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Damage a write-ahead journal the way crashes and bad disks do.

    Modes:

    * ``"torn-tail"`` -- truncate mid-way through the final record, as a
      power cut during an append would.  Recovery must *tolerate* this:
      replay every earlier record, drop the tail.
    * ``"garbage-tail"`` -- append non-JSON bytes with no trailing
      newline (a crashed writer's buffer flushed half-formed).  Also a
      tail: tolerated.
    * ``"flip-byte"`` -- flip one byte in the middle of the journal
      (silent media corruption).  This is *interior* damage: recovery
      must refuse it loudly (:class:`~repro.errors.PersistenceError`)
      rather than replay records of unknown integrity.

    Returns the number of bytes written/removed.  Raises
    :class:`~repro.errors.FaultInjectionError` for an unknown mode or a
    journal too small to damage.
    """
    if mode not in WAL_CORRUPTIONS:
        raise FaultInjectionError(
            f"unknown WAL corruption {mode!r}; choose from {WAL_CORRUPTIONS}"
        )
    target = Path(path)
    data = target.read_bytes()
    if mode == "torn-tail":
        stripped = data.rstrip(b"\n")
        if not stripped:
            raise FaultInjectionError(f"{path}: no record to tear")
        # Cut inside the last record: keep at least one byte of it so
        # the tear is visible, lose at least its newline.
        last_start = stripped.rfind(b"\n") + 1
        cut = last_start + max(1, (len(stripped) - last_start) // 2)
        target.write_bytes(data[:cut])
        return len(data) - cut
    if mode == "garbage-tail":
        garbage = b'{"half": "rec'
        with open(target, "ab") as handle:
            handle.write(garbage)
        return len(garbage)
    # flip-byte: pick a byte in the first half so the damage is interior
    # (never in the final, tearable record).
    draws = rng if rng is not None else np.random.default_rng(0)
    first_newline = data.find(b"\n")
    if first_newline <= 2:
        raise FaultInjectionError(f"{path}: journal too small to corrupt")
    offset = int(draws.integers(1, first_newline))
    flipped = bytes([data[offset] ^ 0xFF])
    target.write_bytes(data[:offset] + flipped + data[offset + 1:])
    return 1


def flood_totals(
    n: int,
    pool: int = 16,
    base: int = 100_000,
    spread: int = 1_000,
    miss_rate: float = 0.125,
    seed: int = 0,
) -> list:
    """A seeded mixed hit/miss stream of problem sizes.

    Draws ``n`` totals: with probability ``1 - miss_rate`` a member of a
    fixed ``pool`` of warm totals (a cache hit once each has been solved
    once), otherwise a fresh never-seen total (a cold solve).  The same
    ``(n, pool, base, spread, miss_rate, seed)`` always yields the same
    stream, so chaos tests and the fleet-scaling benchmark flood
    identically across runs and across routing policies.

    Pool totals are ``base + i * spread``; fresh totals are drawn beyond
    the pool's range so they can never collide with it.
    """
    if n <= 0 or pool <= 0:
        raise FaultInjectionError(
            f"need positive n and pool, got n={n}, pool={pool}"
        )
    if not 0.0 <= miss_rate <= 1.0:
        raise FaultInjectionError(
            f"miss_rate must be in [0, 1], got {miss_rate}"
        )
    draws = np.random.default_rng(seed)
    warm = [base + i * spread for i in range(pool)]
    fresh_base = base + pool * spread
    totals = []
    fresh = 0
    for _ in range(n):
        if miss_rate > 0.0 and draws.uniform() < miss_rate:
            fresh += 1
            totals.append(fresh_base + fresh * spread)
        else:
            totals.append(warm[int(draws.integers(0, pool))])
    return totals


#: Valid behaviours for :class:`FeedbackStorm`.
FEEDBACK_BEHAVIOURS = ("honest", "lying", "nan-flood", "slow-drip")


@dataclass(frozen=True)
class FeedbackStorm:
    """A seeded stream of feedback reports, honest or adversarial.

    Four behaviours, spanning the threat model of the feedback
    quarantine (:mod:`repro.serve.feedback`):

    * ``"honest"`` -- timings are the ground-truth models' predictions
      scaled by ``drift`` (platform drift: the machine really did get
      slower/faster) with small multiplicative ``jitter``.  These must
      be *accepted* and converge served plans toward the drifted truth.
    * ``"lying"`` -- honest timings, but ``lying_ranks`` (every rank if
      empty) multiplied by ``lie_factor``: a rank misreporting by orders
      of magnitude to steal work.  Must be rejected.
    * ``"nan-flood"`` -- ``lying_ranks`` report NaN.  Python's ``json``
      emits and accepts NaN tokens, so this arrives over the wire
      intact; the quarantine, not the parser, must stop it.
    * ``"slow-drip"`` -- honest except every ``drip_every``-th report,
      which lies like ``"lying"``: a poisoner nursing its reputation.
      The drip reports must be rejected without the honest ones
      widening any gate.

    The same ``(behaviour, ..., seed)`` always yields the same payloads,
    so chaos assertions ("served plans bit-identical after the storm")
    compare like with like across runs.

    Attributes:
        source: the reporting identity stamped on every payload.
        behaviour: one of :data:`FEEDBACK_BEHAVIOURS`.
        drift: multiplier on ground-truth predictions (honest platform
            drift; 1.0 = no drift).
        lie_factor: multiplier lying ranks apply to their timings.
        lying_ranks: ranks that lie or flood (empty tuple = all ranks).
        drip_every: for ``"slow-drip"``, every this-many-th report lies.
        jitter: half-width of the multiplicative noise on honest values.
        seed: seed for the jitter draws.
    """

    source: str = "storm0"
    behaviour: str = "honest"
    drift: float = 1.0
    lie_factor: float = 64.0
    lying_ranks: "tuple" = ()
    drip_every: int = 4
    jitter: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.behaviour not in FEEDBACK_BEHAVIOURS:
            raise FaultInjectionError(
                f"unknown feedback behaviour {self.behaviour!r}; "
                f"choose from {FEEDBACK_BEHAVIOURS}"
            )
        if self.drift <= 0.0:
            raise FaultInjectionError(
                f"drift must be positive, got {self.drift}"
            )
        if self.lie_factor <= 1.0:
            raise FaultInjectionError(
                f"lie_factor must exceed 1, got {self.lie_factor}"
            )
        if self.drip_every <= 0:
            raise FaultInjectionError(
                f"drip_every must be positive, got {self.drip_every}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise FaultInjectionError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )

    def rng(self) -> np.random.Generator:
        """A fresh generator for this storm's jitter draws."""
        return np.random.default_rng(self.seed)

    def _lies_at(self, index: int) -> bool:
        if self.behaviour in ("lying", "nan-flood"):
            return True
        if self.behaviour == "slow-drip":
            return (index + 1) % self.drip_every == 0
        return False

    def payloads(
        self,
        plans: Sequence[Sequence[int]],
        truth: Sequence,
        partitioner: Optional[str] = None,
    ) -> list:
        """Feedback payloads for a sequence of per-rank size vectors.

        ``truth`` is the *ground-truth* model list (the platform as it
        actually is -- drifted, if the storm models drift); honest
        timings are its predictions times ``drift`` and jitter.  Returns
        JSON-ready dicts for ``POST /feedback`` / ``{"cmd": "feedback"}``
        in order, one per plan.
        """
        draws = self.rng()
        out = []
        for index, sizes in enumerate(plans):
            times = []
            lies = self._lies_at(index)
            for rank, size in enumerate(sizes):
                base = float(truth[rank].time(float(size))) * self.drift
                noise = 1.0 + float(draws.uniform(-self.jitter, self.jitter))
                t = base * noise
                targeted = not self.lying_ranks or rank in self.lying_ranks
                if lies and targeted:
                    if self.behaviour == "nan-flood":
                        t = float("nan")
                    else:
                        t = t * self.lie_factor
                times.append(t)
            payload = {
                "cmd": "feedback",
                "source": self.source,
                "total": int(sum(sizes)),
                "sizes": [int(s) for s in sizes],
                "times": times,
            }
            if partitioner is not None:
                payload["partitioner"] = partitioner
            out.append(payload)
        return out


@dataclass(frozen=True)
class ShardKillSchedule:
    """When, during a flood, to SIGKILL which shard.

    Attributes:
        victim: the shard id to kill (``"shard1"``, ...).
        after_requests: kill once this many flood requests have
            completed -- "mid-flood" as a deterministic request count,
            not a wall-clock race.
        restart_after: requests to wait after the kill before the
            supervisor restarts the victim (``None`` = never restart).
    """

    victim: str = "shard1"
    after_requests: int = 50
    restart_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.after_requests < 0:
            raise FaultInjectionError(
                f"after_requests must be non-negative, got {self.after_requests}"
            )
        if self.restart_after is not None and self.restart_after < 0:
            raise FaultInjectionError(
                f"restart_after must be non-negative, got {self.restart_after}"
            )
