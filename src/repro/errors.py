"""Exception hierarchy for the FuPerMod reproduction.

All errors raised by the library derive from :class:`FuPerModError`, so
callers can catch one type at the framework boundary.  Subclasses mark which
subsystem failed:

* :class:`InterpolationError` -- interpolation substrate (``repro.interp``);
* :class:`SolverError` -- numerical solvers (``repro.solver``);
* :class:`PlatformError` -- simulated platform (``repro.platform``);
* :class:`CommunicationError` -- simulated message passing (``repro.mpi``);
* :class:`BenchmarkError` -- performance measurement (``repro.core.benchmark``);
* :class:`ModelError` -- performance models (``repro.core.models``);
* :class:`PartitionError` -- data partitioning (``repro.core.partition``);
* :class:`PersistenceError` -- model/point file I/O (``repro.io``);
* :class:`FaultInjectionError` -- injected faults (``repro.faults``);
* :class:`DiskFaultError` -- an injected *storage* fault fired
  (``repro.faults.disk``); also an :class:`OSError`, so journal code
  treats it exactly like real disk trouble;
* :class:`QuarantineError` -- a device exhausted its failure budget and was
  excluded from the run (``repro.core.benchmark``);
* :class:`ConvergenceError` -- an iterative partitioner exhausted its
  iteration cap without certifying convergence (``repro.core.partition``);
* :class:`DeadlineExceeded` -- a watchdog wall-clock budget expired
  (``repro.degrade``);
* :class:`ServiceOverloadError` -- the plan service shed a request
  because its admission queue was full (``repro.serve``);
* :class:`CircuitOpenError` -- a model set's circuit breaker is open and
  no degradation fallback is configured (``repro.serve``);
* :class:`FeedbackRejected` -- a feedback report failed quarantine
  scoring or rate limiting and was not folded into the models
  (``repro.serve.feedback``).

:class:`ConvergenceWarning` is the non-fatal counterpart of
:class:`ConvergenceError`: in non-strict mode an uncertified result is
still returned, but the caller is warned and the convergence certificate
records the failure.
"""

from __future__ import annotations

from typing import Any, Optional


class FuPerModError(Exception):
    """Base class for all errors raised by this library."""


class InterpolationError(FuPerModError):
    """Invalid data or queries handed to an interpolator."""


class SolverError(FuPerModError):
    """A numerical solver failed to converge or received bad input."""


class PlatformError(FuPerModError):
    """Invalid simulated-platform configuration or usage."""


class CommunicationError(FuPerModError):
    """Invalid use of the simulated message-passing layer."""


class BenchmarkError(FuPerModError):
    """Performance measurement failed or was misconfigured."""


class ModelError(FuPerModError):
    """A performance model cannot be built or evaluated."""


class PartitionError(FuPerModError):
    """A data partitioning algorithm failed or received bad input."""


class PersistenceError(FuPerModError):
    """Reading or writing model/measurement files failed."""


class FaultInjectionError(FuPerModError):
    """An injected fault fired (``repro.faults``).

    Attributes:
        rank: the rank the fault was injected into (-1 if unknown).
        kind: fault category (``"crash"``, ``"transient"``, ...).
        fatal: whether the fault is permanent (a crashed rank) or
            transient (worth retrying).
    """

    def __init__(self, message: str, rank: int = -1, kind: str = "fault",
                 fatal: bool = False) -> None:
        super().__init__(message)
        self.rank = rank
        self.kind = kind
        self.fatal = fatal


class DiskFaultError(FaultInjectionError, OSError):
    """An injected storage fault fired (``repro.faults.disk``).

    Doubly inherits :class:`OSError` on purpose: the journals catch
    ``OSError`` on their write/fsync paths, so an injected ENOSPC or
    EIO flows through exactly the handling a real disk error would --
    the injection is invisible to the code under test.

    Attributes:
        path: the file the faulted operation targeted.
        op: the file operation that faulted (``"write"``, ``"fsync"``,
            ``"read"``, ``"open"``, ``"truncate"``).
        errno: the simulated OS error number (e.g. ``errno.ENOSPC``).
    """

    def __init__(self, message: str, path: str = "", op: str = "write",
                 errno_code: Optional[int] = None) -> None:
        super().__init__(message, kind="disk", fatal=False)
        self.path = path
        self.op = op
        if errno_code is not None:
            self.errno = errno_code
            self.strerror = message


class ConvergenceWarning(RuntimeWarning):
    """An iterative algorithm returned a result it could not certify.

    Emitted (instead of :class:`ConvergenceError`) when ``strict`` mode is
    off: the last iterate is still returned, annotated with a
    non-converged :class:`~repro.core.partition.ConvergenceCert`.
    """


class ConvergenceError(PartitionError):
    """An iterative partitioner exhausted its cap without converging.

    Raised in ``strict`` mode instead of silently returning the last
    iterate.  Carries the evidence so callers (and the degradation
    ladder) can decide what to do with the uncertified result:

    Attributes:
        cert: the :class:`~repro.core.partition.ConvergenceCert`
            describing how far the algorithm got (None if unavailable).
        partial: the last iterate -- typically a
            :class:`~repro.core.partition.Distribution` that sums
            correctly but is not certified balanced (None if none).
    """

    def __init__(self, message: str, cert: Optional[Any] = None,
                 partial: Optional[Any] = None) -> None:
        super().__init__(message)
        self.cert = cert
        self.partial = partial


class DeadlineExceeded(FuPerModError):
    """A watchdog wall-clock (or virtual-time) budget expired.

    Distinguishes a *hung* operation (overran its deadline) from a
    *crashed* one (raised); the resilient runtime quarantines the former
    with reason ``"hang"``.

    Attributes:
        budget: the budget in seconds.
        elapsed: seconds actually consumed when the deadline fired.
        stage: what was being attempted (``"benchmark"``, ``"model-fit"``,
            ``"partition:geometric"``, ...).
        rank: the rank involved (-1 for run-wide operations).
        partial: partial results accumulated before expiry (e.g. a
            :class:`~repro.core.point.MeasurementPoint` from the
            repetitions that did complete), or None.
    """

    def __init__(self, message: str, budget: float = 0.0, elapsed: float = 0.0,
                 stage: str = "", rank: int = -1,
                 partial: Optional[Any] = None) -> None:
        super().__init__(message)
        self.budget = budget
        self.elapsed = elapsed
        self.stage = stage
        self.rank = rank
        self.partial = partial


class ServiceOverloadError(FuPerModError):
    """The plan service shed a request because its admission queue is full.

    Load shedding is the overload contract of :class:`~repro.serve.server.
    PlanServer`: rather than queueing without bound (and timing out every
    caller once the backlog exceeds the deadline), a request arriving
    while ``max_pending`` distinct computations are already admitted is
    rejected immediately with this error.  The HTTP front end maps it to
    503 with a ``Retry-After`` header.

    Attributes:
        retry_after: suggested seconds to wait before retrying (None when
            the server offers no estimate).
        pending: admitted-but-unfinished computations at shed time (-1 if
            unknown).
    """

    def __init__(self, message: str, retry_after: Optional[float] = None,
                 pending: int = -1) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.pending = pending


class CircuitOpenError(FuPerModError):
    """A model set's circuit breaker is open and no fallback is configured.

    Raised by :class:`~repro.serve.engine.PlanEngine` when the
    per-model-fingerprint breaker (:mod:`repro.serve.breaker`) has
    tripped and there is no :class:`~repro.degrade.DegradationPolicy` to
    short-circuit to.  With a policy configured the request is served
    through the ladder instead and this error is never raised.

    Attributes:
        retry_after: seconds until the breaker's cooldown elapses and a
            half-open probe will be admitted (None if unknown).
    """

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuarantineError(BenchmarkError):
    """A device exhausted its failure budget and was excluded from the run.

    Raised when a measurement gives up on a rank; the resilient runtime
    catches it, records a ``DeviceQuarantined`` entry in the
    :class:`~repro.faults.ResilienceReport` and continues with the
    surviving ranks.

    The feedback quarantine (:mod:`repro.serve.feedback`) reuses this
    type for a *source* that exhausted its strike budget: subsequent
    reports from it are refused outright (HTTP 403).  ``source`` carries
    the offender's identity there; ``rank`` stays -1.
    """

    def __init__(self, message: str, rank: int = -1, source: str = "") -> None:
        super().__init__(message)
        self.rank = rank
        self.source = source


class FeedbackRejected(FuPerModError):
    """A feedback report failed the trust boundary and was discarded.

    Raised by the closed-loop refinement path
    (:class:`~repro.serve.feedback.FeedbackController`) when a
    structurally valid report fails quarantine scoring (non-finite,
    negative or outlier timings, impossible sizes) or rate limiting.
    The front ends map it to HTTP 400 -- or 429 with a ``Retry-After``
    header when :attr:`retry_after` is set (a rate-limit violation,
    worth retrying later; the content rejections are not).

    Attributes:
        reasons: rejection-reason slugs, in check order (``"non-finite"``,
            ``"negative"``, ``"outlier"``, ``"impossible-sizes"``,
            ``"rate-limit"``).
        source: the reporting source's identity.
        retry_after: seconds until the rate-limit window frees a slot
            (None for content rejections, which retrying cannot fix).
    """

    def __init__(
        self,
        message: str,
        reasons: "tuple[str, ...]" = (),
        source: str = "",
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.reasons = tuple(reasons)
        self.source = source
        self.retry_after = retry_after
