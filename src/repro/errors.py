"""Exception hierarchy for the FuPerMod reproduction.

All errors raised by the library derive from :class:`FuPerModError`, so
callers can catch one type at the framework boundary.  Subclasses mark which
subsystem failed:

* :class:`InterpolationError` -- interpolation substrate (``repro.interp``);
* :class:`SolverError` -- numerical solvers (``repro.solver``);
* :class:`PlatformError` -- simulated platform (``repro.platform``);
* :class:`CommunicationError` -- simulated message passing (``repro.mpi``);
* :class:`BenchmarkError` -- performance measurement (``repro.core.benchmark``);
* :class:`ModelError` -- performance models (``repro.core.models``);
* :class:`PartitionError` -- data partitioning (``repro.core.partition``);
* :class:`PersistenceError` -- model/point file I/O (``repro.io``).
"""

from __future__ import annotations


class FuPerModError(Exception):
    """Base class for all errors raised by this library."""


class InterpolationError(FuPerModError):
    """Invalid data or queries handed to an interpolator."""


class SolverError(FuPerModError):
    """A numerical solver failed to converge or received bad input."""


class PlatformError(FuPerModError):
    """Invalid simulated-platform configuration or usage."""


class CommunicationError(FuPerModError):
    """Invalid use of the simulated message-passing layer."""


class BenchmarkError(FuPerModError):
    """Performance measurement failed or was misconfigured."""


class ModelError(FuPerModError):
    """A performance model cannot be built or evaluated."""


class PartitionError(FuPerModError):
    """A data partitioning algorithm failed or received bad input."""


class PersistenceError(FuPerModError):
    """Reading or writing model/measurement files failed."""
