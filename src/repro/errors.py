"""Exception hierarchy for the FuPerMod reproduction.

All errors raised by the library derive from :class:`FuPerModError`, so
callers can catch one type at the framework boundary.  Subclasses mark which
subsystem failed:

* :class:`InterpolationError` -- interpolation substrate (``repro.interp``);
* :class:`SolverError` -- numerical solvers (``repro.solver``);
* :class:`PlatformError` -- simulated platform (``repro.platform``);
* :class:`CommunicationError` -- simulated message passing (``repro.mpi``);
* :class:`BenchmarkError` -- performance measurement (``repro.core.benchmark``);
* :class:`ModelError` -- performance models (``repro.core.models``);
* :class:`PartitionError` -- data partitioning (``repro.core.partition``);
* :class:`PersistenceError` -- model/point file I/O (``repro.io``);
* :class:`FaultInjectionError` -- injected faults (``repro.faults``);
* :class:`QuarantineError` -- a device exhausted its failure budget and was
  excluded from the run (``repro.core.benchmark``).
"""

from __future__ import annotations


class FuPerModError(Exception):
    """Base class for all errors raised by this library."""


class InterpolationError(FuPerModError):
    """Invalid data or queries handed to an interpolator."""


class SolverError(FuPerModError):
    """A numerical solver failed to converge or received bad input."""


class PlatformError(FuPerModError):
    """Invalid simulated-platform configuration or usage."""


class CommunicationError(FuPerModError):
    """Invalid use of the simulated message-passing layer."""


class BenchmarkError(FuPerModError):
    """Performance measurement failed or was misconfigured."""


class ModelError(FuPerModError):
    """A performance model cannot be built or evaluated."""


class PartitionError(FuPerModError):
    """A data partitioning algorithm failed or received bad input."""


class PersistenceError(FuPerModError):
    """Reading or writing model/measurement files failed."""


class FaultInjectionError(FuPerModError):
    """An injected fault fired (``repro.faults``).

    Attributes:
        rank: the rank the fault was injected into (-1 if unknown).
        kind: fault category (``"crash"``, ``"transient"``, ...).
        fatal: whether the fault is permanent (a crashed rank) or
            transient (worth retrying).
    """

    def __init__(self, message: str, rank: int = -1, kind: str = "fault",
                 fatal: bool = False) -> None:
        super().__init__(message)
        self.rank = rank
        self.kind = kind
        self.fatal = fatal


class QuarantineError(BenchmarkError):
    """A device exhausted its failure budget and was excluded from the run.

    Raised when a measurement gives up on a rank; the resilient runtime
    catches it, records a ``DeviceQuarantined`` entry in the
    :class:`~repro.faults.ResilienceReport` and continues with the
    surviving ranks.
    """

    def __init__(self, message: str, rank: int = -1) -> None:
        super().__init__(message)
        self.rank = rank
