"""Watchdog deadlines for benchmark, fit and partition calls.

A hung kernel is worse than a crashed one: a crash raises and the
resilient runtime retries or quarantines, but a hang stalls the whole
measurement sweep.  :class:`Deadline` gives any operation a time budget
and raises :class:`~repro.errors.DeadlineExceeded` -- carrying whatever
partial results were accumulated -- the moment the budget is spent.

Two time sources are supported:

* **wall clock** (``clock=time.monotonic`` or any zero-argument callable
  returning seconds): :meth:`Deadline.check` compares against real
  elapsed time.  This is the production mode.
* **virtual time** (``clock=None``): time only advances when the
  instrumented operation reports it via :meth:`Deadline.consume`.  The
  simulated platform runs kernels in virtual time (a "10-second" kernel
  returns instantly), so a simulated straggler can only be caught by
  charging its *virtual* duration against the budget.  This also makes
  hang tests deterministic.

:class:`Watchdog` is the convenience wrapper that mints deadlines from a
per-stage budget and runs callables under them.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Callable, Optional

from repro.errors import DeadlineExceeded


class Deadline:
    """A time budget for one operation.

    Args:
        budget: seconds the operation may take.  Must be positive.
        stage: label for error messages (``"benchmark"``, ``"model-fit"``,
            ``"partition:geometric"``, ...).
        rank: the rank involved, for error attribution (-1 if run-wide).
        clock: zero-argument callable returning seconds.  ``None`` selects
            virtual-time mode, where only :meth:`consume` advances the
            elapsed time.
    """

    def __init__(
        self,
        budget: float,
        stage: str = "",
        rank: int = -1,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not budget > 0.0:
            raise ValueError(f"deadline budget must be positive, got {budget!r}")
        self.budget = float(budget)
        self.stage = stage
        self.rank = rank
        self._clock = clock
        self._start = clock() if clock is not None else 0.0
        self._consumed = 0.0

    @property
    def elapsed(self) -> float:
        """Seconds consumed so far (wall or virtual, by mode)."""
        if self._clock is not None:
            return self._clock() - self._start
        return self._consumed

    @property
    def remaining(self) -> float:
        """Seconds left in the budget (never negative)."""
        return max(0.0, self.budget - self.elapsed)

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.elapsed > self.budget

    def check(self, partial: Any = None) -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired.

        Args:
            partial: attached to the raised error so the caller can keep
                results from the part of the operation that did finish.
        """
        elapsed = self.elapsed
        if elapsed > self.budget:
            raise DeadlineExceeded(
                f"{self.stage or 'operation'} exceeded its {self.budget:.3g}s "
                f"deadline ({elapsed:.3g}s elapsed)"
                + (f" on rank {self.rank}" if self.rank >= 0 else ""),
                budget=self.budget,
                elapsed=elapsed,
                stage=self.stage,
                rank=self.rank,
                partial=partial,
            )

    def consume(self, seconds: float, partial: Any = None) -> None:
        """Charge ``seconds`` of virtual time against the budget and check.

        In wall-clock mode the charge is ignored (the clock is
        authoritative) but the expiry check still runs, so instrumented
        code can call ``consume`` unconditionally.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot consume negative time: {seconds!r}")
        self._consumed += seconds
        self.check(partial=partial)


class Watchdog:
    """Mints per-operation deadlines from a stage budget.

    Args:
        budget: seconds each guarded operation gets (one fresh
            :class:`Deadline` per operation).
        clock: time source passed to every minted deadline; ``None`` for
            virtual time (see module docstring).
    """

    def __init__(
        self,
        budget: float,
        clock: Optional[Callable[[], float]] = time.monotonic,
    ) -> None:
        if not budget > 0.0:
            raise ValueError(f"watchdog budget must be positive, got {budget!r}")
        self.budget = float(budget)
        self.clock = clock

    def deadline(self, stage: str = "", rank: int = -1) -> Deadline:
        """A fresh :class:`Deadline` for one operation."""
        return Deadline(self.budget, stage=stage, rank=rank, clock=self.clock)

    def call(self, fn: Callable[..., Any], *args: Any,
             stage: str = "", rank: int = -1, **kwargs: Any) -> Any:
        """Run ``fn(*args, **kwargs)`` and enforce the budget on return.

        The deadline is checked after the call (and the callee may check
        earlier by accepting a ``deadline`` keyword argument, which is
        injected when ``fn``'s signature declares it), so a cooperative
        callee fails mid-flight and an uncooperative one fails on exit.
        """
        deadline = self.deadline(stage=stage, rank=rank)
        try:
            accepts = "deadline" in inspect.signature(fn).parameters
        except (TypeError, ValueError):
            accepts = False
        if accepts:
            kwargs = dict(kwargs, deadline=deadline)
        result = fn(*args, **kwargs)
        deadline.check(partial=result)
        return result
