"""The fallback ladder: degrade instead of failing, and say so.

:class:`DegradationPolicy` encodes the two degradation chains of the
graceful runtime:

* **models** -- Akima -> PCHIP -> piecewise (coarsened) -> constant.
  Each rung is strictly easier to fit than the one above it: Akima and
  PCHIP need two distinct sizes and smooth data, the piecewise FPM
  coarsens away shape violations, and the constant model fits any single
  valid point.
* **partitioners** -- geometric -> numerical -> basic.  The geometric
  bisection needs (close to) strictly increasing time functions, the
  numerical solver tolerates any smooth shape, and the basic algorithm
  is closed-form and cannot fail to converge.  If every rung fails, the
  even split is the floor: a valid full partition always comes back.

Every descent is recorded in a :class:`~repro.degrade.DegradationReport`
with its triggering error.  In ``strict`` mode no ladder is walked: the
first failure propagates as its typed error.
"""

from __future__ import annotations

import inspect
import time
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.degrade.report import DegradationReport
from repro.degrade.watchdog import Deadline
from repro.errors import (
    DeadlineExceeded,
    InterpolationError,
    ModelError,
    PartitionError,
    SolverError,
)

if TYPE_CHECKING:
    from repro.core.partition.cert import ConvergenceCert
    from repro.core.partition.dist import Distribution
    from repro.core.partition.dynamic import PartitionFunction
    from repro.core.point import MeasurementPoint

#: Model chain, hardest-to-fit first (see module docstring).
DEFAULT_MODEL_LADDER: Tuple[str, ...] = ("akima", "pchip", "piecewise", "constant")

#: Partitioner chain, most accurate first (see module docstring).
DEFAULT_PARTITIONER_LADDER: Tuple[str, ...] = ("geometric", "numerical", "basic")

#: Failures that trigger a descent (anything else is a bug and propagates).
_FALLBACK_TRIGGERS = (
    ModelError,
    InterpolationError,
    SolverError,
    PartitionError,  # includes ConvergenceError
    DeadlineExceeded,
)


class DegradationPolicy:
    """Walks the model and partitioner ladders on failure.

    Args:
        model_ladder: model names (registry keys) to try in order.
        partitioner_ladder: partitioner names to try in order.
        strict: do not degrade -- re-raise the first typed failure.
        fit_budget: optional per-fit deadline in seconds.
        partition_budget: optional per-partitioner-attempt deadline in
            seconds.
        clock: time source for the deadlines (``time.monotonic`` by
            default; ``None`` selects virtual-time deadlines, which only
            expire when instrumented code consumes them).
        report: the :class:`~repro.degrade.DegradationReport` to append
            to (a fresh one is created when omitted).
        resilience: optional :class:`~repro.faults.ResilienceReport`;
            fallbacks and certificates are mirrored there so one report
            covers crashes, hangs and degradations alike.
        max_iter: optional iteration-cap override forwarded to
            partitioners that accept one (useful to tighten caps when a
            deadline is also in force).
        require_monotone: reject a fitted model whose time function
            *decreases* over the measured sizes (the paper's FPM shape
            restriction).  An exact interpolant (Akima) violates it on
            noisy or adversarial data; the monotone rungs (PCHIP via
            isotonic projection, coarsened piecewise, constant) cannot --
            which is precisely what makes them fallbacks.
    """

    def __init__(
        self,
        model_ladder: Sequence[str] = DEFAULT_MODEL_LADDER,
        partitioner_ladder: Sequence[str] = DEFAULT_PARTITIONER_LADDER,
        strict: bool = False,
        fit_budget: Optional[float] = None,
        partition_budget: Optional[float] = None,
        clock: Optional[Callable[[], float]] = time.monotonic,
        report: Optional[DegradationReport] = None,
        resilience=None,
        max_iter: Optional[int] = None,
        require_monotone: bool = True,
    ) -> None:
        if not model_ladder:
            raise PartitionError("model ladder must name at least one model")
        if not partitioner_ladder:
            raise PartitionError(
                "partitioner ladder must name at least one partitioner"
            )
        self.model_ladder = tuple(model_ladder)
        self.partitioner_ladder = tuple(partitioner_ladder)
        self.strict = strict
        self.fit_budget = fit_budget
        self.partition_budget = partition_budget
        self.clock = clock
        self.report = report if report is not None else DegradationReport()
        self.resilience = resilience
        self.max_iter = max_iter
        self.require_monotone = require_monotone

    # -- model ladder -----------------------------------------------------

    def _probe_fit(self, name: str, points: Sequence[MeasurementPoint],
                   rank: int):
        """Build, fit and evaluate one candidate model; raise on failure."""
        from repro.core.registry import model_factory

        deadline = (
            Deadline(self.fit_budget, stage=f"model-fit:{name}", rank=rank,
                     clock=self.clock)
            if self.fit_budget is not None else None
        )
        model = model_factory(name)()
        model.update_many(points)
        # Fits are lazy: is_ready forces the fit, and one evaluation at the
        # largest measured size proves the fitted curve is usable.
        if not model.is_ready:
            raise ModelError(
                f"model {name!r} not ready with {len(points)} point(s)"
            )
        probe = max(p.d for p in points)
        value = model.time(probe)
        if not value > 0.0:
            raise ModelError(
                f"model {name!r} predicts non-positive time {value!r} at "
                f"size {probe}"
            )
        if self.require_monotone:
            # The FPM shape restriction: execution time must not decrease
            # with problem size over the measured range.  Probe at the
            # measured sizes plus midpoints so interior wiggles of an
            # exact interpolant are caught too.
            xs = sorted({float(p.d) for p in points})
            grid: List[float] = []
            for a, b in zip(xs, xs[1:]):
                grid.extend((a, 0.5 * (a + b)))
            grid.append(xs[-1])
            times = [model.time(x) for x in grid]
            for (xa, ta), (xb, tb) in zip(zip(grid, times),
                                          zip(grid[1:], times[1:])):
                if tb < ta * (1.0 - 1e-9):
                    raise ModelError(
                        f"model {name!r} violates the FPM shape restriction: "
                        f"predicted time falls from {ta:.3g}s at size {xa:g} "
                        f"to {tb:.3g}s at size {xb:g}"
                    )
        if deadline is not None:
            deadline.check(partial=model)
        return model

    def fit_model(self, points: Sequence[MeasurementPoint], rank: int = -1,
                  primary: Optional[str] = None):
        """Fit the best model the ladder allows for one rank's points.

        Args:
            points: the rank's measured points.
            rank: for report attribution.
            primary: preferred model name; it is tried first and the
                ladder (minus duplicates) follows.

        Returns:
            A fitted, evaluable performance model.

        Raises:
            ModelError: in strict mode, the first rung's failure; in
                degrade mode, only when every rung fails (e.g. no valid
                points at all).
        """
        if not points:
            raise ModelError(
                f"no measured points for rank {rank}; nothing any model "
                "could fit"
            )
        ladder = list(self.model_ladder)
        if primary is not None:
            ladder = [primary] + [n for n in ladder if n != primary]
        last_error: Optional[Exception] = None
        for i, name in enumerate(ladder):
            try:
                model = self._probe_fit(name, points, rank)
            except _FALLBACK_TRIGGERS as exc:
                if self.strict:
                    raise
                last_error = exc
                fallback = ladder[i + 1] if i + 1 < len(ladder) else ""
                self.report.record("model-fit", rank, name, fallback, exc)
                if self.resilience is not None:
                    self.resilience.record(
                        "ModelFallback", rank,
                        f"{name} -> {fallback or '<none>'}: {exc}",
                    )
                continue
            return model
        raise ModelError(
            f"every model on the ladder {ladder} failed for rank {rank}; "
            f"last error: {last_error}"
        )

    # -- partitioner ladder ----------------------------------------------

    def _call_partitioner(self, name: str, total: int, models: Sequence,
                          certs: List[ConvergenceCert]) -> Distribution:
        """One partitioner attempt under strict convergence + deadline."""
        from repro.core.registry import partitioner

        fn = partitioner(name)
        kwargs = {}
        try:
            params = inspect.signature(fn).parameters
        except (TypeError, ValueError):
            params = {}
        if "strict" in params:
            # Always strict internally: cap exhaustion must surface as
            # ConvergenceError so the ladder can react to it.
            kwargs["strict"] = True
        if "certs" in params:
            kwargs["certs"] = certs
        if self.max_iter is not None and "max_iter" in params:
            kwargs["max_iter"] = self.max_iter
        deadline = (
            Deadline(self.partition_budget, stage=f"partition:{name}",
                     clock=self.clock)
            if self.partition_budget is not None else None
        )
        dist = fn(total, models, **kwargs)
        if deadline is not None:
            deadline.check(partial=dist)
        return dist

    def partition(self, total: int, models: Sequence) -> Distribution:
        """Produce a valid full partition, degrading as needed.

        Walks the partitioner ladder; if every rung fails, falls to the
        even split -- so given a well-formed request (finite non-negative
        integral ``total``, at least one model) a distribution summing to
        ``total`` always comes back.  Certificates from every attempt
        land in ``report.certs``.

        Raises:
            PartitionError: on a malformed request (these are caller
                bugs, not platform conditions to degrade around), or, in
                strict mode, the first rung's typed failure.
        """
        from repro.core.partition.cert import ConvergenceCert
        from repro.core.partition.dist import Distribution
        from repro.core.partition.validate import validate_total

        total = validate_total(total)
        if not models:
            raise PartitionError(
                "cannot partition: the model list is empty; the ladder has "
                "no floor without at least one rank"
            )
        certs: List[ConvergenceCert] = []
        ladder = list(self.partitioner_ladder)
        last_error: Optional[Exception] = None
        dist: Optional[Distribution] = None
        for i, name in enumerate(ladder):
            before = len(certs)
            try:
                dist = self._call_partitioner(name, total, models, certs)
            except _FALLBACK_TRIGGERS as exc:
                if self.strict:
                    raise
                last_error = exc
                cert = getattr(exc, "cert", None)
                if cert is not None and len(certs) == before:
                    certs.append(cert)
                fallback = ladder[i + 1] if i + 1 < len(ladder) else "even"
                self.report.record("partition", -1, name, fallback, exc)
                if self.resilience is not None:
                    self.resilience.record(
                        "PartitionFallback", -1,
                        f"{name} -> {fallback}: {exc}",
                    )
                continue
            break
        for cert in certs:
            self.report.record_cert(cert)
            if self.resilience is not None and hasattr(self.resilience,
                                                       "record_cert"):
                self.resilience.record_cert(cert, context="degrade")
        if dist is None:
            # The floor: a valid, even full partition.
            dist = Distribution.even(total, len(models))
            dist.convergence = ConvergenceCert(
                "even", True, 0, 0, 0.0, 0.0,
                f"floor after ladder exhaustion; last error: {last_error}",
            )
            self.report.record_cert(dist.convergence)
        return dist

    def partition_function(self) -> PartitionFunction:
        """This policy as a ``(total, models) -> Distribution`` callable.

        Drop-in for :class:`~repro.core.partition.DynamicPartitioner`,
        :class:`~repro.core.partition.LoadBalancer` and the apps.
        """
        return lambda total, models: self.partition(total, models)

    def wrap(self, fn: PartitionFunction) -> PartitionFunction:
        """Guard an existing partition function with this ladder.

        The wrapped callable tries ``fn`` first; any typed failure is
        recorded and the policy's own ladder takes over.  In strict mode
        the failure propagates instead.
        """

        def guarded(total: int, models: Sequence) -> Distribution:
            try:
                return fn(total, models)
            except _FALLBACK_TRIGGERS as exc:
                if self.strict:
                    raise
                name = getattr(fn, "__name__", repr(fn))
                self.report.record("partition", -1, name,
                                   self.partitioner_ladder[0], exc)
                if self.resilience is not None:
                    self.resilience.record(
                        "PartitionFallback", -1,
                        f"{name} -> ladder: {exc}",
                    )
                return self.partition(total, models)

        return guarded
