"""Graceful degradation: watchdogs, fallback ladders, degradation reports.

FuPerMod's pipeline (benchmark -> FPM fit -> geometric/numerical
partition) assumes every stage succeeds.  Real heterogeneous-platform
data routinely violates that: kernels hang, point sets are unfittable by
the preferred spline, and solvers run into their iteration caps.  This
package is the runtime that turns those failures into *degraded but
valid* results instead of hangs or silent garbage:

* :class:`Deadline` / :class:`Watchdog` -- wall-clock (or virtual-time)
  budgets for benchmark repetitions, model fits and partition calls;
  expiry raises a typed :class:`~repro.errors.DeadlineExceeded` carrying
  whatever partial results were accumulated.
* :class:`DegradationPolicy` -- the fallback ladder: on a fit or
  convergence failure, walk the model chain Akima -> PCHIP ->
  piecewise -> constant and the partitioner chain geometric ->
  numerical -> basic, always producing a valid full partition.
* :class:`DegradationReport` / :class:`FallbackStep` -- the audit trail:
  every fallback taken, with the stage, rank and triggering error.

``strict`` mode inverts the contract: instead of degrading, the first
failure propagates as its typed error (:class:`~repro.errors.ModelError`,
:class:`~repro.errors.ConvergenceError`,
:class:`~repro.errors.DeadlineExceeded`, ...).
"""

from repro.degrade.policy import (
    DEFAULT_MODEL_LADDER,
    DEFAULT_PARTITIONER_LADDER,
    DegradationPolicy,
)
from repro.degrade.report import DegradationReport, FallbackStep
from repro.degrade.watchdog import Deadline, Watchdog

__all__ = [
    "DEFAULT_MODEL_LADDER",
    "DEFAULT_PARTITIONER_LADDER",
    "Deadline",
    "DegradationPolicy",
    "DegradationReport",
    "FallbackStep",
    "Watchdog",
]
