"""The audit trail of a degraded run.

Degradation is only acceptable when it is visible: a run that silently
swapped Akima models for constants would report beautiful balance built
on a lie.  :class:`DegradationReport` records every
:class:`FallbackStep` the :class:`~repro.degrade.DegradationPolicy`
takes -- which stage fell back, on which rank, from what to what, and
the triggering error -- plus the convergence certificates gathered along
the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class FallbackStep:
    """One rung descended on the fallback ladder.

    Attributes:
        stage: pipeline stage (``"model-fit"`` or ``"partition"``).
        rank: the rank involved (-1 for run-wide steps like partitioning).
        attempted: what was tried (model or partitioner name).
        fallback: what was used instead (empty when even the last rung
            failed and the step records a terminal failure).
        trigger: why -- the stringified triggering error, prefixed with
            its type name (``"ModelError: needs at least two ..."``).
    """

    stage: str
    rank: int
    attempted: str
    fallback: str
    trigger: str

    def to_dict(self) -> Dict:
        """JSON-friendly representation."""
        return {
            "stage": self.stage,
            "rank": self.rank,
            "attempted": self.attempted,
            "fallback": self.fallback,
            "trigger": self.trigger,
        }


@dataclass
class DegradationReport:
    """Everything the fallback ladder did during one run.

    Attributes:
        steps: every fallback taken, in order.
        certs: convergence certificates from the partitioner attempts
            (converged and not), in order.
    """

    steps: List[FallbackStep] = field(default_factory=list)
    certs: List = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """Whether any fallback was taken at all."""
        return bool(self.steps)

    def record(self, stage: str, rank: int, attempted: str, fallback: str,
               trigger: Optional[BaseException] = None) -> FallbackStep:
        """Append a :class:`FallbackStep` (and return it)."""
        if trigger is None:
            text = ""
        else:
            text = f"{type(trigger).__name__}: {trigger}"
        step = FallbackStep(stage=stage, rank=rank, attempted=attempted,
                            fallback=fallback, trigger=text)
        self.steps.append(step)
        return step

    def record_cert(self, cert) -> None:
        """Append a partitioner :class:`~repro.core.partition.ConvergenceCert`."""
        self.certs.append(cert)

    def fallbacks_for(self, stage: str) -> List[FallbackStep]:
        """The steps taken at one stage, in order."""
        return [s for s in self.steps if s.stage == stage]

    def to_dict(self) -> Dict:
        """Deterministic JSON-friendly representation."""
        return {
            "degraded": self.degraded,
            "steps": [s.to_dict() for s in self.steps],
            "certs": [c.to_dict() for c in self.certs],
        }

    def summary(self) -> str:
        """Multi-line human summary, one line per fallback."""
        if not self.steps:
            return "no degradation: every stage succeeded at its first choice"
        lines = [f"{len(self.steps)} fallback(s) taken:"]
        for s in self.steps:
            where = f" rank {s.rank}" if s.rank >= 0 else ""
            target = s.fallback if s.fallback else "<none left>"
            lines.append(
                f"  - {s.stage}{where}: {s.attempted} -> {target}"
                + (f" ({s.trigger})" if s.trigger else "")
            )
        return "\n".join(lines)
