"""Small statistics helpers used by the benchmarking machinery.

FuPerMod repeats each kernel measurement until the half-width of the
Student-t confidence interval of the mean falls below a target fraction of
the mean (or a repetition/time cap is hit).  This module provides the
running-statistics accumulator and the confidence-interval computation used
by :mod:`repro.core.benchmark`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from scipy import stats as _scipy_stats


@dataclass
class RunningStats:
    """Accumulates samples and exposes mean/variance/confidence intervals.

    Uses Welford's online algorithm so that adding a sample is O(1) and
    numerically stable regardless of the magnitude of the samples.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    samples: List[float] = field(default_factory=list)

    def add(self, x: float) -> None:
        """Add one sample."""
        self.samples.append(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return 0.0
        return self.stddev / math.sqrt(self.count)

    def confidence_halfwidth(self, confidence_level: float = 0.95) -> float:
        """Half-width of the Student-t confidence interval of the mean.

        Returns ``inf`` with fewer than two samples: the interval is not
        defined yet, which conveniently forces the benchmark loop to keep
        measuring.
        """
        if self.count < 2:
            return math.inf
        t = student_t_quantile(confidence_level, self.count - 1)
        return t * self.stderr

    def relative_error(self, confidence_level: float = 0.95) -> float:
        """Confidence half-width as a fraction of the mean.

        Returns ``inf`` when the mean is zero or too few samples exist.
        """
        if self.mean <= 0.0:
            return math.inf
        return self.confidence_halfwidth(confidence_level) / self.mean


def mad_filter(samples: List[float], threshold: float = 3.5) -> List[float]:
    """Reject outliers by robust (median/MAD) z-score.

    The modified z-score of a sample is ``0.6745 * (x - median) / MAD``;
    values beyond ``threshold`` (3.5 is the classic Iglewicz--Hoaglin
    cutoff) are dropped.  With fewer than three samples, or a zero MAD
    (identical samples), everything is kept.

    Benchmarks use this to discard the occasional timing spike (page
    fault, daemon wakeup) that would otherwise inflate the mean and the
    confidence interval.
    """
    if threshold <= 0.0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    if len(samples) < 3:
        return list(samples)
    ordered = sorted(samples)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[mid]
    else:
        median = 0.5 * (ordered[mid - 1] + ordered[mid])
    deviations = sorted(abs(x - median) for x in samples)
    if len(deviations) % 2:
        mad = deviations[mid]
    else:
        mad = 0.5 * (deviations[mid - 1] + deviations[mid])
    if mad == 0.0:
        return list(samples)
    kept = [x for x in samples if abs(0.6745 * (x - median) / mad) <= threshold]
    return kept if kept else [median]


def student_t_quantile(confidence_level: float, dof: int) -> float:
    """Two-sided Student-t quantile for a confidence level and dof.

    For example ``student_t_quantile(0.95, 10)`` is roughly 2.228.
    """
    if not 0.0 < confidence_level < 1.0:
        raise ValueError(f"confidence_level must be in (0, 1), got {confidence_level}")
    if dof < 1:
        raise ValueError(f"dof must be >= 1, got {dof}")
    alpha = 1.0 - confidence_level
    return float(_scipy_stats.t.ppf(1.0 - alpha / 2.0, dof))
