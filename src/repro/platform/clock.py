"""Virtual time.

Simulated kernels and the message-passing simulator advance virtual clocks
instead of consuming wall time, so experiments that would take hours on real
hardware run in milliseconds while preserving relative timings.
"""

from __future__ import annotations

from repro.errors import PlatformError


class VirtualClock:
    """A monotonically advancing virtual clock.

    Time is a float in seconds, starting at zero.  Clocks are cheap value
    objects; the message-passing simulator keeps one per rank and
    synchronises them at barriers and collectives.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise PlatformError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance by ``dt`` seconds (non-negative); returns the new time."""
        if dt < 0.0:
            raise PlatformError(f"cannot advance clock by negative {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Advance to absolute time ``t`` if it is in the future."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, t: float = 0.0) -> None:
        """Reset the clock (used between independent experiments)."""
        if t < 0.0:
            raise PlatformError(f"cannot reset clock to negative time {t}")
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.6f})"
