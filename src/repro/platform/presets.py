"""Preset platforms used by the tests, examples and experiment benches.

The paper ran on Grid'5000 nodes; these presets are their simulated
counterparts, with device names and rough speed ratios chosen to match the
scenarios of the paper's figures.  Sizes are in *computation units* of the
application at hand (e.g. one b x b block update for matrix multiplication,
one matrix row for Jacobi).
"""

from __future__ import annotations

from typing import List

from repro.errors import PlatformError
from repro.platform.cluster import Node, Platform
from repro.platform.device import Device, DeviceKind
from repro.platform.noise import GaussianNoise, NoNoise
from repro.platform.profiles import (
    CacheHierarchyProfile,
    ConstantProfile,
    GpuProfile,
    WigglyProfile,
)


def netlib_blas_profile() -> WigglyProfile:
    """A Netlib-BLAS-like GEMM speed curve (Fig. 2 of the paper).

    Peaks around 5 GFLOPS with local humps and dips over sizes 0..5000
    units, the shape that motivates Akima-spline interpolation and defeats
    naive piecewise approximation without coarsening.
    """
    return WigglyProfile(
        peak_flops=5.2e9,
        rise_units=150.0,
        decay_per_unit=4.0e-5,
        humps=[
            (800.0, 0.12, 120.0),
            (1800.0, -0.18, 200.0),
            (2600.0, 0.10, 180.0),
            (3900.0, -0.12, 250.0),
        ],
    )


def fig2_device(noisy: bool = True) -> Device:
    """Single device with the Netlib-BLAS-like profile of Fig. 2."""
    return Device(
        "netlib-cpu",
        netlib_blas_profile(),
        kind=DeviceKind.CPU_CORE,
        noise=GaussianNoise(0.02) if noisy else NoNoise(),
    )


def cpu_core_profile(peak_flops: float = 4.0e9) -> CacheHierarchyProfile:
    """A CPU core: cache plateau, memory plateau, paging cliff."""
    return CacheHierarchyProfile(
        levels=[(500.0, peak_flops), (4000.0, 0.75 * peak_flops)],
        paged_flops=0.12 * peak_flops,
        transition_width=0.15,
    )


def gpu_profile(peak_flops: float = 9.0e10) -> GpuProfile:
    """A GPU + dedicated host core: overhead ramp, out-of-core slowdown."""
    return GpuProfile(
        peak_flops=peak_flops,
        ramp_units=3000.0,
        memory_limit_units=50000.0,
        out_of_core_factor=0.55,
    )


def hybrid_node(name: str = "hybrid0", cores: int = 4, noisy: bool = True) -> Node:
    """A GPU-accelerated multicore node (the paper's target hardware).

    ``cores`` CPU cores plus one GPU process (bundled with a dedicated host
    core, as the paper measures it).  Core speeds are mildly heterogeneous
    (software heterogeneity: different BLAS builds per process).  Contention
    reflects shared memory bandwidth: each extra active process costs a few
    percent of per-process speed.
    """
    noise = GaussianNoise(0.02) if noisy else NoNoise()
    devices: List[Device] = []
    for i in range(cores):
        peak = 4.0e9 * (1.0 - 0.07 * i)
        devices.append(
            Device(
                f"{name}-cpu{i}",
                cpu_core_profile(peak),
                kind=DeviceKind.CPU_CORE,
                noise=noise,
            )
        )
    devices.append(
        Device(
            f"{name}-gpu0",
            gpu_profile(),
            kind=DeviceKind.GPU,
            noise=noise,
        )
    )
    contention = [1.0, 0.95, 0.90, 0.86, 0.83, 0.81]
    return Node(name, devices, contention=contention)


def uniprocessor_node(name: str, flops: float, noisy: bool = True) -> Node:
    """A single-CPU node with a cache-hierarchy profile."""
    dev = Device(
        f"{name}-cpu0",
        cpu_core_profile(flops),
        kind=DeviceKind.CPU_CORE,
        noise=GaussianNoise(0.02) if noisy else NoNoise(),
    )
    return Node(name, [dev])


def heterogeneous_cluster(noisy: bool = True) -> Platform:
    """The general evaluation platform: hybrid node + two CPU nodes.

    Mirrors the paper's 'complex hierarchy of heterogeneous computing
    devices': one GPU-accelerated multicore node, one fast and one slow
    uniprocessor node.
    """
    return Platform(
        [
            hybrid_node("hybrid0", cores=4, noisy=noisy),
            uniprocessor_node("fast0", 6.0e9, noisy=noisy),
            uniprocessor_node("slow0", 2.5e9, noisy=noisy),
        ]
    )


def fig4_trio(noisy: bool = True) -> Platform:
    """Three uniprocessors with speeds ~16:11:9, the Fig. 4 Jacobi scenario.

    The paper's Fig. 4 annotates the balanced distribution with row counts
    16, 11 and 9; constant-ish profiles in that ratio reproduce it.
    """
    noise = GaussianNoise(0.02) if noisy else NoNoise()
    specs = [("p0", 1.6e9), ("p1", 1.1e9), ("p2", 0.9e9)]
    nodes = []
    for name, flops in specs:
        dev = Device(
            f"{name}-cpu0",
            CacheHierarchyProfile(
                levels=[(2048.0, flops), (16384.0, 0.85 * flops)],
                paged_flops=0.2 * flops,
                transition_width=0.2,
            ),
            kind=DeviceKind.CPU_CORE,
            noise=noise,
        )
        nodes.append(Node(name, [dev]))
    return Platform(nodes)


def parametric_cluster(
    hybrid_nodes: int = 1,
    cpu_nodes: int = 2,
    cores_per_hybrid: int = 4,
    base_flops: float = 4.0e9,
    spread: float = 2.0,
    noisy: bool = True,
    seed: int = 0,
) -> Platform:
    """A reproducibly random Grid'5000-like cluster of arbitrary size.

    ``hybrid_nodes`` GPU-accelerated multicore nodes plus ``cpu_nodes``
    uniprocessors whose speeds are drawn log-uniformly within ``spread``
    of ``base_flops``.  Used by the scalability experiments and by tests
    that need platforms of varying size without hand-written presets.
    """
    import numpy as np

    if hybrid_nodes < 0 or cpu_nodes < 0 or hybrid_nodes + cpu_nodes == 0:
        raise PlatformError(
            f"need at least one node, got {hybrid_nodes} hybrid + {cpu_nodes} cpu"
        )
    if spread < 1.0:
        raise PlatformError(f"spread must be >= 1, got {spread}")
    rng = np.random.default_rng(seed)
    nodes: List[Node] = []
    for i in range(hybrid_nodes):
        nodes.append(hybrid_node(f"hybrid{i}", cores=cores_per_hybrid, noisy=noisy))
    for i in range(cpu_nodes):
        factor = spread ** float(rng.uniform(-1.0, 1.0))
        nodes.append(uniprocessor_node(f"cpu{i}", base_flops * factor, noisy=noisy))
    return Platform(nodes)


def constant_speed_platform(speeds_flops: List[float], noisy: bool = False) -> Platform:
    """Uniprocessors with size-independent speeds (CPM is exact here)."""
    nodes = []
    for i, flops in enumerate(speeds_flops):
        dev = Device(
            f"const{i}-cpu0",
            ConstantProfile(flops),
            kind=DeviceKind.CPU_CORE,
            noise=GaussianNoise(0.02) if noisy else NoNoise(),
        )
        nodes.append(Node(f"const{i}", [dev]))
    return Platform(nodes)
