"""Measurement noise models.

Real benchmark timings fluctuate (OS jitter, DVFS, cache state).  The paper's
measurement methodology -- process binding, synchronisation, statistically
controlled repetition -- exists precisely to tame this noise.  The simulator
reproduces it with multiplicative noise on execution times so the statistical
machinery in :mod:`repro.core.benchmark` has something real to do.

Process binding is modelled through the noise level: an unbound process (the
OS may migrate it between cores) sees substantially larger jitter than a
bound one, which is exactly the effect binding has on real measurements.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PlatformError


class NoiseModel(abc.ABC):
    """Multiplicative noise on execution times."""

    @abc.abstractmethod
    def factor(self, rng: np.random.Generator) -> float:
        """Draw one multiplicative factor (always strictly positive)."""


class NoNoise(NoiseModel):
    """Deterministic timing: factor is always 1 (useful in unit tests)."""

    def factor(self, rng: np.random.Generator) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover
        return "NoNoise()"


class GaussianNoise(NoiseModel):
    """Gaussian multiplicative noise, truncated to keep factors positive.

    ``sigma`` is the relative standard deviation (e.g. 0.02 for ~2% jitter,
    typical of a bound process on a dedicated node; an unbound process is
    better modelled with 0.1 or more).  Draws are clipped to ±3 sigma and
    floored so the factor never drops below 5% of nominal.
    """

    def __init__(self, sigma: float) -> None:
        if sigma < 0.0:
            raise PlatformError(f"noise sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def factor(self, rng: np.random.Generator) -> float:
        if self.sigma == 0.0:
            return 1.0
        draw = rng.normal(0.0, self.sigma)
        draw = min(max(draw, -3.0 * self.sigma), 3.0 * self.sigma)
        return max(1.0 + draw, 0.05)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GaussianNoise(sigma={self.sigma})"


def bound_process_noise() -> GaussianNoise:
    """Typical jitter of a process pinned to a core on a dedicated node."""
    return GaussianNoise(0.02)


def unbound_process_noise() -> GaussianNoise:
    """Typical jitter when the OS is free to migrate the process."""
    return GaussianNoise(0.12)
