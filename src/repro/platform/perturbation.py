"""Time-varying performance perturbations.

The paper targets *dedicated* platforms whose performance is stable in
time -- that is what makes models built once reusable.  Dynamic load
balancing (ref. [6]) is the insurance policy for when that assumption
frays: another job lands on a node, a thermal limit kicks in, a disk scrub
steals memory bandwidth.  The simulator models such episodes as
multiplicative speed factors that switch on at a virtual time, so
experiments can quantify how static and dynamic strategies react (ablation
A9 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import PlatformError


@dataclass(frozen=True)
class SpeedStep:
    """A persistent speed change for one rank from a point in time.

    Attributes:
        rank: the affected process.
        start_time: virtual time (seconds) at which the change takes hold.
        factor: speed multiplier from then on, in ``(0, 1]`` -- the
            simulator models slowdowns (an external disturbance cannot make
            dedicated hardware faster).
        end_time: optional virtual time at which the episode ends and the
            rank returns to nominal speed (None = permanent).
    """

    rank: int
    start_time: float
    factor: float
    end_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise PlatformError(f"rank must be non-negative, got {self.rank}")
        if self.start_time < 0.0:
            raise PlatformError(f"start_time must be non-negative, got {self.start_time}")
        if not 0.0 < self.factor <= 1.0:
            raise PlatformError(f"factor must be in (0, 1], got {self.factor}")
        if self.end_time is not None and self.end_time <= self.start_time:
            raise PlatformError(
                f"end_time {self.end_time} must exceed start_time {self.start_time}"
            )

    def active_at(self, time: float) -> bool:
        """Whether the episode affects executions starting at ``time``."""
        if time < self.start_time:
            return False
        return self.end_time is None or time < self.end_time


class PerturbationSchedule:
    """A set of speed episodes, queried by (rank, virtual time).

    Factors of overlapping episodes on the same rank multiply.
    """

    def __init__(self, steps: Sequence[SpeedStep] = ()) -> None:
        self.steps: List[SpeedStep] = list(steps)

    def add(self, step: SpeedStep) -> None:
        """Add one episode."""
        self.steps.append(step)

    def factor(self, rank: int, time: float) -> float:
        """Combined speed factor for ``rank`` at virtual ``time``."""
        out = 1.0
        for step in self.steps:
            if step.rank == rank and step.active_at(time):
                out *= step.factor
        return out

    def __bool__(self) -> bool:
        return bool(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerturbationSchedule({len(self.steps)} steps)"
