"""Synthetic speed profiles with the shapes of real measured speed functions.

A profile maps a problem size ``d`` (in application *computation units*) to a
sustained floating-point rate in FLOP/s.  Simulated devices divide the kernel
complexity by this rate to produce execution times.

The shapes follow the paper and its companion studies (refs. [18, 19]):

* :class:`CacheHierarchyProfile` -- a CPU core: fast while the working set
  fits a cache level, stepping down through the hierarchy, with a hard
  paging cliff past the memory share;
* :class:`GpuProfile` -- a GPU bundled with its dedicated host core: poor at
  small sizes (PCIe transfer and launch overhead dominate), a high plateau,
  and either a hard device-memory cap or an out-of-core slowdown;
* :class:`WigglyProfile` -- a non-smooth curve with local humps, like the
  Netlib BLAS GEMM speed function in Fig. 2 of the paper;
* :class:`TableProfile` -- piecewise-linear through explicit (size, rate)
  points, for profiles digitised from plots or measured elsewhere.
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

from repro.errors import PlatformError
from repro.interp.piecewise_linear import PiecewiseLinear

#: Rates below this are clamped; a zero rate would mean infinite time.
_MIN_RATE = 1.0


class SpeedProfile(abc.ABC):
    """Sustained speed (FLOP/s) as a function of problem size (units)."""

    @abc.abstractmethod
    def flops_at(self, d: float) -> float:
        """Sustained rate at problem size ``d`` (always > 0)."""

    def __call__(self, d: float) -> float:
        return self.flops_at(d)


class ConstantProfile(SpeedProfile):
    """A device whose speed does not depend on problem size.

    This is the (usually wrong) assumption behind constant performance
    models; having it as an explicit profile lets tests and ablations create
    platforms where CPM is exact.
    """

    def __init__(self, flops: float) -> None:
        if flops <= 0.0:
            raise PlatformError(f"rate must be positive, got {flops}")
        self.flops = float(flops)

    def flops_at(self, d: float) -> float:
        return self.flops

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantProfile({self.flops:.3g})"


class ScaledProfile(SpeedProfile):
    """A profile multiplied by a constant factor.

    Used for families of similar devices (e.g. the cores of one socket) and
    for modelling contention (a share < 1 of the standalone profile).
    """

    def __init__(self, base: SpeedProfile, factor: float) -> None:
        if factor <= 0.0:
            raise PlatformError(f"scale factor must be positive, got {factor}")
        self.base = base
        self.factor = float(factor)

    def flops_at(self, d: float) -> float:
        return max(self.base.flops_at(d) * self.factor, _MIN_RATE)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScaledProfile({self.base!r}, {self.factor:.3g})"


class TableProfile(SpeedProfile):
    """Piecewise-linear profile through explicit ``(size, rate)`` points."""

    def __init__(self, points: Sequence[Tuple[float, float]]) -> None:
        for d, r in points:
            if r <= 0.0:
                raise PlatformError(f"rates must be positive, got {r} at {d}")
        self._interp = PiecewiseLinear(points, min_y=_MIN_RATE)

    @property
    def points(self) -> "Tuple[Tuple[float, float], ...]":
        """The (size, rate) knots, sorted and de-duplicated."""
        return tuple(zip(self._interp.xs, self._interp.ys))

    def flops_at(self, d: float) -> float:
        return max(self._interp(d), _MIN_RATE)

    def __repr__(self) -> str:  # pragma: no cover
        return f"TableProfile({len(self._interp)} points)"


def _logistic(x: float) -> float:
    """Numerically safe logistic function."""
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


class CacheHierarchyProfile(SpeedProfile):
    """CPU-core profile stepping down through a memory hierarchy.

    ``levels`` is a list of ``(capacity_units, flops)`` pairs ordered by
    capacity: while the working set fits within a level's capacity the core
    sustains that level's rate; transitions are smoothed logistically over a
    relative width so the profile is continuous (measured curves are).  Past
    the last capacity the core falls to ``paged_flops`` -- the paging cliff
    that makes constant models so misleading on real platforms.
    """

    def __init__(
        self,
        levels: Sequence[Tuple[float, float]],
        paged_flops: float,
        transition_width: float = 0.08,
    ) -> None:
        if not levels:
            raise PlatformError("CacheHierarchyProfile needs at least one level")
        caps = [c for c, _r in levels]
        if any(c <= 0 for c in caps) or caps != sorted(caps):
            raise PlatformError(f"capacities must be positive and increasing: {caps}")
        if any(r <= 0 for _c, r in levels) or paged_flops <= 0:
            raise PlatformError("rates must be positive")
        if transition_width <= 0:
            raise PlatformError("transition_width must be positive")
        self.levels: List[Tuple[float, float]] = [(float(c), float(r)) for c, r in levels]
        self.paged_flops = float(paged_flops)
        self.transition_width = float(transition_width)

    def flops_at(self, d: float) -> float:
        d = max(float(d), 1.0)
        rate = self.levels[0][1]
        # Blend towards the next stage as d crosses each capacity.
        stages = [r for _c, r in self.levels[1:]] + [self.paged_flops]
        for (cap, _r), next_rate in zip(self.levels, stages):
            # logistic in log-space: transition centred at cap, relative width.
            z = (math.log(d) - math.log(cap)) / self.transition_width
            w = _logistic(z)
            rate = rate * (1.0 - w) + next_rate * w
        return max(rate, _MIN_RATE)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CacheHierarchyProfile({self.levels}, paged={self.paged_flops:.3g})"


class GpuProfile(SpeedProfile):
    """Combined speed of a GPU and its dedicated host CPU core.

    The paper measures GPU kernels *together with* the host-side transfer
    and launch overhead, from the host core.  That combination yields the
    characteristic shape modelled here:

    * at small ``d`` the fixed overhead dominates, so the effective rate
      ramps up roughly as ``d / (d + ramp_units)``;
    * at large ``d`` the rate saturates at ``peak_flops``;
    * past ``memory_limit_units`` either the device cannot run the kernel at
      all (``out_of_core_factor`` of ``None`` -- callers enforce the cap) or
      an out-of-core implementation runs at a fraction of peak.
    """

    def __init__(
        self,
        peak_flops: float,
        ramp_units: float,
        memory_limit_units: float | None = None,
        out_of_core_factor: float | None = None,
        host_flops: float = 0.0,
    ) -> None:
        if peak_flops <= 0 or ramp_units <= 0:
            raise PlatformError("peak_flops and ramp_units must be positive")
        if memory_limit_units is not None and memory_limit_units <= 0:
            raise PlatformError("memory_limit_units must be positive")
        if out_of_core_factor is not None and not 0.0 < out_of_core_factor <= 1.0:
            raise PlatformError("out_of_core_factor must be in (0, 1]")
        self.peak_flops = float(peak_flops)
        self.ramp_units = float(ramp_units)
        self.memory_limit_units = memory_limit_units
        self.out_of_core_factor = out_of_core_factor
        self.host_flops = float(host_flops)

    def flops_at(self, d: float) -> float:
        d = max(float(d), 1.0)
        rate = self.peak_flops * d / (d + self.ramp_units) + self.host_flops
        if (
            self.memory_limit_units is not None
            and d > self.memory_limit_units
            and self.out_of_core_factor is not None
        ):
            rate *= self.out_of_core_factor
        return max(rate, _MIN_RATE)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"GpuProfile(peak={self.peak_flops:.3g}, ramp={self.ramp_units:.3g}, "
            f"mem={self.memory_limit_units}, ooc={self.out_of_core_factor})"
        )


class WigglyProfile(SpeedProfile):
    """A non-smooth profile with local humps, like Netlib BLAS in Fig. 2.

    The base shape rises quickly to a peak and then decays slowly (memory
    traffic grows with the working set); Gaussian humps and dips are
    superimposed to reproduce the local irregularities that defeat simple
    interpolation and motivate both Akima splines and coarsening.

    ``humps`` is a list of ``(centre_units, relative_amplitude, width_units)``
    tuples; negative amplitudes are dips.
    """

    def __init__(
        self,
        peak_flops: float,
        rise_units: float,
        decay_per_unit: float = 0.0,
        humps: Sequence[Tuple[float, float, float]] = (),
        floor_flops: float = _MIN_RATE,
    ) -> None:
        if peak_flops <= 0 or rise_units <= 0:
            raise PlatformError("peak_flops and rise_units must be positive")
        if decay_per_unit < 0:
            raise PlatformError("decay_per_unit must be non-negative")
        for c, _a, w in humps:
            if c <= 0 or w <= 0:
                raise PlatformError(f"hump centre/width must be positive: ({c}, {w})")
        self.peak_flops = float(peak_flops)
        self.rise_units = float(rise_units)
        self.decay_per_unit = float(decay_per_unit)
        self.humps = [(float(c), float(a), float(w)) for c, a, w in humps]
        self.floor_flops = float(floor_flops)

    def flops_at(self, d: float) -> float:
        d = max(float(d), 1.0)
        base = self.peak_flops * d / (d + self.rise_units)
        base /= 1.0 + self.decay_per_unit * d
        bump = 0.0
        for centre, amp, width in self.humps:
            bump += amp * math.exp(-((d - centre) ** 2) / (2.0 * width * width))
        rate = base * (1.0 + bump)
        return max(rate, self.floor_flops, _MIN_RATE)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"WigglyProfile(peak={self.peak_flops:.3g}, rise={self.rise_units:.3g}, "
            f"{len(self.humps)} humps)"
        )
