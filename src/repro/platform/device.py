"""Simulated computing devices.

A :class:`Device` is the simulator's stand-in for "a process running on some
piece of hardware": a CPU core, a group of cores treated as one process, or a
GPU bundled with its dedicated host core (the paper measures those together).
Its observable behaviour is a single method -- :meth:`execution_time` -- that
returns how long a kernel of a given complexity takes at a given problem
size, with multiplicative measurement noise.
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.errors import PlatformError
from repro.platform.noise import GaussianNoise, NoiseModel
from repro.platform.profiles import SpeedProfile


class MemoryExceeded(PlatformError):
    """The problem does not fit the device memory and no out-of-core path exists."""


class DeviceKind(enum.Enum):
    """What the device models; informational, used in reports and traces."""

    CPU_CORE = "cpu-core"
    CPU_MULTICORE = "cpu-multicore"
    GPU = "gpu"
    OTHER = "other"


class Device:
    """A simulated computing device.

    Args:
        name: unique human-readable identifier.
        profile: sustained speed as a function of problem size.
        kind: informational device category.
        noise: multiplicative timing noise (defaults to ~2%, a bound
            process on a dedicated node).
        memory_limit_units: optional hard cap on the problem size this
            device can hold; :meth:`execution_time` raises
            :class:`MemoryExceeded` beyond it.  GPU out-of-core behaviour
            is modelled in the profile instead (slower, but feasible).
    """

    def __init__(
        self,
        name: str,
        profile: SpeedProfile,
        kind: DeviceKind = DeviceKind.CPU_CORE,
        noise: Optional[NoiseModel] = None,
        memory_limit_units: Optional[float] = None,
    ) -> None:
        if not name:
            raise PlatformError("device name must be non-empty")
        if memory_limit_units is not None and memory_limit_units <= 0:
            raise PlatformError("memory_limit_units must be positive")
        self.name = name
        self.profile = profile
        self.kind = kind
        self.noise: NoiseModel = noise if noise is not None else GaussianNoise(0.02)
        self.memory_limit_units = memory_limit_units

    def ideal_time(self, complexity_flops: float, d: float) -> float:
        """Noise-free execution time of ``complexity_flops`` at size ``d``.

        This is the ground truth the performance models try to approximate;
        tests and experiment reports compare against it.
        """
        if complexity_flops < 0:
            raise PlatformError(f"complexity must be non-negative, got {complexity_flops}")
        if d < 0:
            raise PlatformError(f"problem size must be non-negative, got {d}")
        if d == 0 or complexity_flops == 0:
            return 0.0
        self._check_memory(d)
        return complexity_flops / self.profile.flops_at(d)

    def execution_time(
        self,
        complexity_flops: float,
        d: float,
        rng: np.random.Generator,
        contention_factor: float = 1.0,
    ) -> float:
        """One noisy execution: seconds to perform the kernel at size ``d``.

        ``contention_factor`` scales the effective speed down when other
        processes share the device's node (see :class:`repro.platform.Node`).
        """
        if not 0.0 < contention_factor <= 1.0:
            raise PlatformError(f"contention_factor must be in (0, 1], got {contention_factor}")
        base = self.ideal_time(complexity_flops, d)
        return base / contention_factor * self.noise.factor(rng)

    def ideal_speed(self, complexity_flops: float, d: float) -> float:
        """Noise-free speed in FLOP/s at size ``d`` (ground truth)."""
        t = self.ideal_time(complexity_flops, d)
        if t == 0.0:
            return float("inf")
        return complexity_flops / t

    def _check_memory(self, d: float) -> None:
        if self.memory_limit_units is not None and d > self.memory_limit_units:
            raise MemoryExceeded(
                f"device {self.name!r}: problem size {d} exceeds memory limit "
                f"{self.memory_limit_units}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Device({self.name!r}, {self.kind.value}, {self.profile!r})"
