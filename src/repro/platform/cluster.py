"""Nodes and platforms: grouping devices that share resources.

On a multicore node, parallel processes interfere through shared memory, so
the speed of an individual core cannot be measured in isolation -- the paper
(and ref. [18]) measures all cores of a group *simultaneously*, synchronised,
so resources are shared between the maximum number of processes.  The
simulator models this with a per-node contention curve: when ``g`` processes
of a node run together, each one's speed is scaled by
:meth:`Node.contention_factor`.

A :class:`Platform` is an ordered collection of nodes; its flattened device
list defines the process ranks the partitioning framework works with.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import PlatformError
from repro.platform.device import Device


class Node:
    """A set of devices sharing resources (memory bus, PCIe, ...).

    Args:
        name: unique node name.
        devices: devices hosted by this node.
        contention: per-group-size speed factors.  ``contention[g]`` is the
            factor applied to every device's speed when ``g`` processes of
            the node compute simultaneously; index 1 must be 1.0.  Sizes
            beyond the list reuse the last entry.  Omitted -> no contention.
    """

    def __init__(
        self,
        name: str,
        devices: Sequence[Device],
        contention: Optional[Sequence[float]] = None,
    ) -> None:
        if not name:
            raise PlatformError("node name must be non-empty")
        if not devices:
            raise PlatformError(f"node {name!r} must host at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise PlatformError(f"node {name!r} has duplicate device names: {names}")
        if contention is not None:
            factors = list(contention)
            if not factors or abs(factors[0] - 1.0) > 1e-12:
                raise PlatformError("contention[0] (group of 1) must be 1.0")
            if any(not 0.0 < f <= 1.0 for f in factors):
                raise PlatformError(f"contention factors must be in (0, 1]: {factors}")
            self._contention: Optional[List[float]] = factors
        else:
            self._contention = None
        self.name = name
        self.devices: List[Device] = list(devices)

    def contention_factor(self, group_size: int) -> float:
        """Speed factor when ``group_size`` processes run simultaneously."""
        if group_size < 1:
            raise PlatformError(f"group_size must be >= 1, got {group_size}")
        if self._contention is None:
            return 1.0
        idx = min(group_size - 1, len(self._contention) - 1)
        return self._contention[idx]

    def __len__(self) -> int:
        return len(self.devices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.name!r}, {len(self.devices)} devices)"


class Platform:
    """An ordered collection of nodes forming the target platform.

    Process ranks are assigned in flattened device order: node 0's devices
    first, then node 1's, and so on.  This ordering is what the benchmark
    runner, the partitioners and the application simulations all share.
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self.nodes: List[Node] = list(nodes)
        if not self.nodes:
            raise PlatformError("platform must contain at least one node")
        node_names = [n.name for n in self.nodes]
        if len(set(node_names)) != len(node_names):
            raise PlatformError(f"duplicate node names: {node_names}")
        self._devices: List[Device] = []
        self._node_of: Dict[str, Node] = {}
        for node in self.nodes:
            for dev in node.devices:
                if dev.name in self._node_of:
                    raise PlatformError(f"duplicate device name across nodes: {dev.name!r}")
                self._devices.append(dev)
                self._node_of[dev.name] = node

    @property
    def devices(self) -> Sequence[Device]:
        """All devices in rank order."""
        return tuple(self._devices)

    @property
    def size(self) -> int:
        """Number of processes (devices) on the platform."""
        return len(self._devices)

    def device(self, rank: int) -> Device:
        """Device of a given process rank."""
        if not 0 <= rank < len(self._devices):
            raise PlatformError(f"rank {rank} out of range 0..{len(self._devices) - 1}")
        return self._devices[rank]

    def node_of(self, device: Device) -> Node:
        """The node hosting ``device``."""
        try:
            return self._node_of[device.name]
        except KeyError:
            raise PlatformError(f"device {device.name!r} is not on this platform") from None

    def rank_of(self, device: Device) -> int:
        """Process rank of ``device``."""
        for i, d in enumerate(self._devices):
            if d.name == device.name:
                return i
        raise PlatformError(f"device {device.name!r} is not on this platform")

    def group_contention(self, rank: int, active_ranks: Sequence[int]) -> float:
        """Contention factor for ``rank`` when ``active_ranks`` run together.

        Only processes on the *same node* as ``rank`` count towards its
        group size; remote processes do not share its resources.
        """
        dev = self.device(rank)
        node = self.node_of(dev)
        node_dev_names = {d.name for d in node.devices}
        group = sum(1 for r in active_ranks if self.device(r).name in node_dev_names)
        if rank not in active_ranks:
            group += 1
        return node.contention_factor(max(group, 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Platform({len(self.nodes)} nodes, {self.size} devices)"
