"""Per-device power and energy profiles.

The speed profiles (:mod:`repro.platform.profiles`) answer "how fast is
this device at problem size ``d``"; the power profiles here answer "how
many watts does it draw while doing so".  Together they price a workload
in joules: a device that computes ``d`` units in ``t`` seconds at
``watts_at(d)`` watts spends ``watts_at(d) * t`` joules, plus -- for
accelerators -- the energy of moving the operands over the host link,
priced through the same Hockney model (:class:`~repro.mpi.network.
LinkModel`) the communication simulator uses.

A :class:`PowerProfile` is *not* an energy model: it describes the
device.  :func:`energy_points_from_power` turns a device's measured
timing points plus its power profile into energy measurement points
(``d`` units -> joules), from which the ``EnergyModel`` family in
:mod:`repro.core.models.energy` fits an energy *function* the
bi-objective partitioner (:mod:`repro.core.partition.pareto`) can
invert, exactly as the speed models fit the time function.

Profiles serialize to plain dicts (:meth:`PowerProfile.spec`,
:func:`power_profile_from_dict`) so ``fupermod serve --power`` can load
a per-rank power description next to the ``rank*.points`` files.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.errors import PlatformError
from repro.mpi.network import DEFAULT_INTRA_NODE, LinkModel


def _require_finite(name: str, value: float, minimum: float = 0.0) -> float:
    value = float(value)
    if not math.isfinite(value) or value < minimum:
        raise PlatformError(
            f"{name} must be finite and >= {minimum}, got {value!r}"
        )
    return value


class PowerProfile:
    """Base class: electrical power as a function of problem size.

    Attributes:
        idle_watts: power drawn while the device holds no work.
    """

    kind = "base"

    def __init__(self, idle_watts: float) -> None:
        self.idle_watts = _require_finite("idle_watts", idle_watts)

    def dynamic_watts(self, d: float) -> float:
        """Extra power (above idle) while computing ``d`` units."""
        raise NotImplementedError

    def watts_at(self, d: float) -> float:
        """Total power draw while computing ``d`` units."""
        if d < 0:
            raise PlatformError(f"problem size must be non-negative, got {d}")
        return self.idle_watts + self.dynamic_watts(float(d))

    def transfer_joules(self, d: float) -> float:
        """Energy of staging ``d`` units onto the device (0 for host CPUs)."""
        return 0.0

    def energy_joules(self, d: float, seconds: float) -> float:
        """Joules to compute ``d`` units in ``seconds`` on this device."""
        if seconds < 0.0:
            raise PlatformError(f"seconds must be non-negative, got {seconds}")
        if d <= 0:
            return 0.0
        return self.watts_at(d) * float(seconds) + self.transfer_joules(d)

    def spec(self) -> Dict:
        """JSON-friendly description; inverse of :func:`power_profile_from_dict`."""
        raise NotImplementedError


class ConstantPower(PowerProfile):
    """Size-independent draw: ``idle + dynamic`` watts whenever busy."""

    kind = "constant"

    def __init__(self, idle_watts: float, dynamic_watts: float) -> None:
        super().__init__(idle_watts)
        self._dynamic = _require_finite("dynamic_watts", dynamic_watts)

    def dynamic_watts(self, d: float) -> float:
        return self._dynamic

    def spec(self) -> Dict:
        return {
            "kind": self.kind,
            "idle_watts": self.idle_watts,
            "dynamic_watts": self._dynamic,
        }


class LinearPower(PowerProfile):
    """Draw growing linearly with the resident problem size.

    ``dynamic(d) = base_watts + watts_per_unit * d``, capped at
    ``peak_watts`` when given -- the usual shape for a multicore CPU
    whose active cores (and memory traffic) scale with the working set
    until the package power limit.
    """

    kind = "linear"

    def __init__(
        self,
        idle_watts: float,
        base_watts: float,
        watts_per_unit: float = 0.0,
        peak_watts: float = math.inf,
    ) -> None:
        super().__init__(idle_watts)
        self.base_watts = _require_finite("base_watts", base_watts)
        self.watts_per_unit = _require_finite("watts_per_unit", watts_per_unit)
        peak_watts = float(peak_watts)
        if math.isnan(peak_watts) or peak_watts <= 0.0:
            raise PlatformError(
                f"peak_watts must be positive, got {peak_watts!r}"
            )
        self.peak_watts = peak_watts

    def dynamic_watts(self, d: float) -> float:
        return min(self.base_watts + self.watts_per_unit * d, self.peak_watts)

    def spec(self) -> Dict:
        out = {
            "kind": self.kind,
            "idle_watts": self.idle_watts,
            "base_watts": self.base_watts,
            "watts_per_unit": self.watts_per_unit,
        }
        if math.isfinite(self.peak_watts):
            out["peak_watts"] = self.peak_watts
        return out


class GpuPower(PowerProfile):
    """Accelerator draw plus host-link transfer energy.

    Compute power ramps from ``base_watts`` toward ``peak_watts`` as the
    problem fills the device (the same saturation shape as
    :class:`~repro.platform.profiles.GpuProfile`); staging ``d`` units
    over the host link costs ``transfer_watts`` for the duration the
    Hockney model predicts for ``d * bytes_per_unit`` bytes.
    """

    kind = "gpu"

    def __init__(
        self,
        idle_watts: float,
        base_watts: float,
        peak_watts: float,
        ramp_units: float,
        transfer_watts: float = 0.0,
        bytes_per_unit: float = 0.0,
        link: LinkModel = DEFAULT_INTRA_NODE,
    ) -> None:
        super().__init__(idle_watts)
        self.base_watts = _require_finite("base_watts", base_watts)
        self.peak_watts = _require_finite("peak_watts", peak_watts)
        if self.peak_watts < self.base_watts:
            raise PlatformError(
                f"peak_watts {peak_watts} must be >= base_watts {base_watts}"
            )
        self.ramp_units = _require_finite("ramp_units", ramp_units)
        if self.ramp_units <= 0.0:
            raise PlatformError(f"ramp_units must be positive, got {ramp_units}")
        self.transfer_watts = _require_finite("transfer_watts", transfer_watts)
        self.bytes_per_unit = _require_finite("bytes_per_unit", bytes_per_unit)
        self.link = link

    def dynamic_watts(self, d: float) -> float:
        span = self.peak_watts - self.base_watts
        return self.base_watts + span * d / (d + self.ramp_units)

    def transfer_joules(self, d: float) -> float:
        if d <= 0 or self.transfer_watts <= 0.0 or self.bytes_per_unit <= 0.0:
            return 0.0
        return self.transfer_watts * self.link.time(d * self.bytes_per_unit)

    def spec(self) -> Dict:
        return {
            "kind": self.kind,
            "idle_watts": self.idle_watts,
            "base_watts": self.base_watts,
            "peak_watts": self.peak_watts,
            "ramp_units": self.ramp_units,
            "transfer_watts": self.transfer_watts,
            "bytes_per_unit": self.bytes_per_unit,
            "link_latency": self.link.latency,
            "link_bandwidth": self.link.bandwidth,
        }


def power_profile_from_dict(spec: Dict) -> PowerProfile:
    """Rebuild a :class:`PowerProfile` from its :meth:`~PowerProfile.spec`."""
    if not isinstance(spec, dict):
        raise PlatformError(f"power spec must be a mapping, got {type(spec).__name__}")
    kind = spec.get("kind", "constant")
    try:
        if kind == "constant":
            return ConstantPower(
                idle_watts=spec.get("idle_watts", 0.0),
                dynamic_watts=spec.get("dynamic_watts", 0.0),
            )
        if kind == "linear":
            return LinearPower(
                idle_watts=spec.get("idle_watts", 0.0),
                base_watts=spec.get("base_watts", 0.0),
                watts_per_unit=spec.get("watts_per_unit", 0.0),
                peak_watts=spec.get("peak_watts", math.inf),
            )
        if kind == "gpu":
            link = LinkModel(
                latency=spec.get("link_latency", DEFAULT_INTRA_NODE.latency),
                bandwidth=spec.get("link_bandwidth", DEFAULT_INTRA_NODE.bandwidth),
            )
            return GpuPower(
                idle_watts=spec.get("idle_watts", 0.0),
                base_watts=spec.get("base_watts", 0.0),
                peak_watts=spec.get("peak_watts", 0.0),
                ramp_units=spec.get("ramp_units", 1.0),
                transfer_watts=spec.get("transfer_watts", 0.0),
                bytes_per_unit=spec.get("bytes_per_unit", 0.0),
                link=link,
            )
    except TypeError as exc:
        raise PlatformError(f"malformed power spec {spec!r}: {exc}") from exc
    raise PlatformError(f"unknown power profile kind {kind!r}")


def load_power_profiles(path: Union[str, Path]) -> List[PowerProfile]:
    """Load per-rank power profiles from a JSON file.

    The file holds either a list of specs (rank order) or a mapping with
    a ``"ranks"`` list, e.g.::

        {"ranks": [{"kind": "linear", "idle_watts": 10, "base_watts": 35},
                   {"kind": "gpu", "idle_watts": 25, "base_watts": 60,
                    "peak_watts": 250, "ramp_units": 3000}]}
    """
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PlatformError(f"cannot load power profiles from {path}: {exc}") from exc
    specs = raw.get("ranks") if isinstance(raw, dict) else raw
    if not isinstance(specs, list) or not specs:
        raise PlatformError(
            f"{path}: expected a non-empty list of power specs "
            "(or a mapping with a 'ranks' list)"
        )
    return [power_profile_from_dict(spec) for spec in specs]


def energy_points_from_power(points: Sequence, profile: PowerProfile) -> List:
    """Price measured timing points in joules.

    For each :class:`~repro.core.point.MeasurementPoint` ``(d, t)`` the
    device's energy is ``watts_at(d) * t + transfer_joules(d)``; the
    result is a list of new measurement points with ``t`` holding joules,
    ready for :meth:`~repro.core.models.base.PerformanceModel.update_many`
    on an ``EnergyModel``.
    """
    from repro.core.point import MeasurementPoint

    out: List[MeasurementPoint] = []
    for p in points:
        joules = profile.energy_joules(p.d, p.t)
        if not (math.isfinite(joules) and joules > 0.0):
            raise PlatformError(
                f"power profile priced point d={p.d} at {joules!r} J; "
                "energy points must be positive and finite"
            )
        out.append(MeasurementPoint(d=p.d, t=joules, reps=p.reps, ci=p.ci))
    return out
