"""Calibrating synthetic profiles against measured speed data.

The simulator's profiles (:mod:`repro.platform.profiles`) are parametric
families.  To simulate *your* machine rather than our presets, measure a
real kernel over a range of sizes (e.g. with
:class:`~repro.core.benchmark.Benchmark` on a
:class:`~repro.core.kernel.CallableKernel`) and fit a profile to the
points.  The fits use ``scipy.optimize.curve_fit`` with parameterisations
chosen so every iterate stays physically meaningful (positive rates,
ordered capacities).

This closes the loop between the two halves of the library: profiles
generate measurements, and measurements regenerate profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import optimize as _sciopt

from repro.errors import PlatformError
from repro.platform.profiles import CacheHierarchyProfile, GpuProfile

#: A measured speed sample: (problem size in units, FLOP/s).
SpeedSample = Tuple[float, float]


@dataclass(frozen=True)
class ProfileFit:
    """Outcome of a profile calibration.

    Attributes:
        profile: the fitted profile object.
        residual: RMS relative speed error over the samples.
    """

    profile: object
    residual: float


def _check_samples(samples: Sequence[SpeedSample], minimum: int) -> "tuple[np.ndarray, np.ndarray]":
    if len(samples) < minimum:
        raise PlatformError(
            f"need at least {minimum} samples to fit, got {len(samples)}"
        )
    d = np.asarray([float(s[0]) for s in samples])
    r = np.asarray([float(s[1]) for s in samples])
    if np.any(d <= 0) or np.any(r <= 0):
        raise PlatformError("samples must have positive sizes and rates")
    return d, r


def _residual(rates: np.ndarray, predicted: np.ndarray) -> float:
    rel = (predicted - rates) / rates
    return float(np.sqrt(np.mean(rel * rel)))


def fit_gpu_profile(samples: Sequence[SpeedSample]) -> ProfileFit:
    """Fit a :class:`GpuProfile` (peak + overhead ramp) to speed samples.

    The model is ``rate(d) = peak * d / (d + ramp)``; memory-cap behaviour
    is not fitted (pass it explicitly when constructing platforms).
    """
    d, r = _check_samples(samples, minimum=3)

    def model(x, log_peak, log_ramp):
        peak = np.exp(log_peak)
        ramp = np.exp(log_ramp)
        return peak * x / (x + ramp)

    p0 = (np.log(np.max(r) * 1.2), np.log(np.median(d)))
    params, *_ = _sciopt.curve_fit(model, d, r, p0=p0, maxfev=20000)
    peak, ramp = float(np.exp(params[0])), float(np.exp(params[1]))
    profile = GpuProfile(peak_flops=peak, ramp_units=ramp)
    predicted = np.asarray([profile.flops_at(x) for x in d])
    return ProfileFit(profile=profile, residual=_residual(r, predicted))


def fit_cache_profile(
    samples: Sequence[SpeedSample],
    transition_width: float = 0.1,
) -> ProfileFit:
    """Fit a two-level :class:`CacheHierarchyProfile` to speed samples.

    The model has a fast level of rate ``r1`` up to capacity ``c``, and a
    paged rate ``r2`` beyond, blended logistically in log-size space.  The
    parameterisation (log rates, log capacity, log rate *drop*) keeps the
    fit inside the physically valid region: positive rates, ``r2 < r1``.
    """
    d, r = _check_samples(samples, minimum=4)

    def model(x, log_r1, log_drop, log_c):
        r1 = np.exp(log_r1)
        r2 = r1 / (1.0 + np.exp(log_drop))  # guaranteed below r1
        c = np.exp(log_c)
        z = (np.log(x) - np.log(c)) / transition_width
        w = 1.0 / (1.0 + np.exp(-np.clip(z, -500, 500)))
        return r1 * (1.0 - w) + r2 * w

    p0 = (
        np.log(np.max(r)),
        np.log(max(np.max(r) / max(np.min(r), 1e-9) - 1.0, 0.5)),
        np.log(np.median(d)),
    )
    params, *_ = _sciopt.curve_fit(model, d, r, p0=p0, maxfev=20000)
    r1 = float(np.exp(params[0]))
    r2 = r1 / (1.0 + float(np.exp(params[1])))
    c = float(np.exp(params[2]))
    profile = CacheHierarchyProfile(
        levels=[(c, r1)], paged_flops=r2, transition_width=transition_width
    )
    predicted = np.asarray([profile.flops_at(x) for x in d])
    return ProfileFit(profile=profile, residual=_residual(r, predicted))


def speed_samples_from_points(
    points,
    complexity,
) -> "list[SpeedSample]":
    """Convert measurement points into (size, FLOP/s) samples.

    ``complexity`` is the kernel complexity function (``d -> flops``), as
    carried by any :class:`~repro.core.kernel.ComputationKernel`.
    """
    samples = []
    for p in points:
        if p.t <= 0:
            raise PlatformError(f"point at d={p.d} has non-positive time")
        samples.append((float(p.d), complexity(p.d) / p.t))
    return samples
