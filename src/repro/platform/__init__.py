"""Simulated dedicated heterogeneous HPC platform.

The paper evaluates FuPerMod on real Grid'5000 nodes (multicore CPUs, NVIDIA
GPUs, several BLAS implementations).  Offline we substitute a simulator that
produces the same *observable* as real hardware does for the framework --
noisy execution times of a computation kernel as a function of problem size
-- with the characteristic shapes of real speed functions:

* cache/memory-hierarchy cliffs and paging drops for CPU cores
  (:class:`CacheHierarchyProfile`);
* transfer-overhead ramp, high peak and a device-memory cap for a GPU bundled
  with its dedicated host core (:class:`GpuProfile`);
* non-smooth local humps like the Netlib BLAS GEMM curve of Fig. 2
  (:class:`WigglyProfile`);
* contention between processes sharing a multicore node
  (:meth:`Node.contention_factor`).

A :class:`Device` turns a profile plus a noise model into execution times; a
:class:`Node` groups devices that share resources; a :class:`Platform` is the
set of nodes the framework partitions across.  :mod:`repro.platform.presets`
builds the concrete platforms used in the experiments.
"""

from repro.platform.calibration import ProfileFit, fit_cache_profile, fit_gpu_profile
from repro.platform.clock import VirtualClock
from repro.platform.device import Device, DeviceKind, MemoryExceeded
from repro.platform.noise import GaussianNoise, NoiseModel, NoNoise
from repro.platform.cluster import Node, Platform
from repro.platform.power import (
    ConstantPower,
    GpuPower,
    LinearPower,
    PowerProfile,
    energy_points_from_power,
    load_power_profiles,
    power_profile_from_dict,
)
from repro.platform.profiles import (
    CacheHierarchyProfile,
    ConstantProfile,
    GpuProfile,
    ScaledProfile,
    SpeedProfile,
    TableProfile,
    WigglyProfile,
)

__all__ = [
    "CacheHierarchyProfile",
    "ConstantPower",
    "ConstantProfile",
    "Device",
    "DeviceKind",
    "GaussianNoise",
    "GpuPower",
    "GpuProfile",
    "LinearPower",
    "MemoryExceeded",
    "NoNoise",
    "NoiseModel",
    "Node",
    "PowerProfile",
    "ProfileFit",
    "Platform",
    "ScaledProfile",
    "SpeedProfile",
    "TableProfile",
    "VirtualClock",
    "WigglyProfile",
    "energy_points_from_power",
    "fit_cache_profile",
    "fit_gpu_profile",
    "load_power_profiles",
    "power_profile_from_dict",
]
