"""Execution traces for the application simulations.

A :class:`TraceRecorder` collects timestamped events -- compute spans,
communication spans, rebalance markers -- from simulation runs, one lane
per rank.  The text renderer draws a Gantt-style chart in plain ASCII,
which the examples print so a user can *see* where the time goes, and the
statistics helpers aggregate busy/idle fractions for tests and reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PlatformError


class EventKind(enum.Enum):
    """What a trace span represents."""

    COMPUTE = "compute"
    COMM = "comm"
    IDLE = "idle"
    MARKER = "marker"


@dataclass(frozen=True)
class TraceEvent:
    """A span (or point marker) on one rank's timeline.

    Attributes:
        rank: the process whose lane the event belongs to.
        kind: event category.
        start: virtual start time in seconds.
        end: virtual end time (equals ``start`` for markers).
        label: free-form annotation (e.g. "iter 3", "rebalance").
    """

    rank: int
    kind: EventKind
    start: float
    end: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise PlatformError(f"rank must be non-negative, got {self.rank}")
        if self.start < 0.0 or self.end < self.start:
            raise PlatformError(
                f"invalid span [{self.start}, {self.end}] for event {self.label!r}"
            )

    @property
    def duration(self) -> float:
        """Span length in seconds."""
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Collects events from a simulation run."""

    events: List[TraceEvent] = field(default_factory=list)

    def compute(self, rank: int, start: float, end: float, label: str = "") -> None:
        """Record a computation span."""
        self.events.append(TraceEvent(rank, EventKind.COMPUTE, start, end, label))

    def comm(self, rank: int, start: float, end: float, label: str = "") -> None:
        """Record a communication span."""
        self.events.append(TraceEvent(rank, EventKind.COMM, start, end, label))

    def marker(self, rank: int, at: float, label: str) -> None:
        """Record a point marker (e.g. a rebalance decision)."""
        self.events.append(TraceEvent(rank, EventKind.MARKER, at, at, label))

    @property
    def span(self) -> "tuple[float, float]":
        """Earliest start and latest end over all events."""
        if not self.events:
            raise PlatformError("trace is empty")
        return (
            min(e.start for e in self.events),
            max(e.end for e in self.events),
        )

    @property
    def ranks(self) -> List[int]:
        """Ranks appearing in the trace, ascending."""
        return sorted({e.rank for e in self.events})

    def busy_fraction(self, rank: int, kind: Optional[EventKind] = None) -> float:
        """Fraction of the trace span this rank spends in ``kind`` events.

        Overlapping spans of the same rank are merged before measuring, so
        double-booked time is not counted twice.  With ``kind=None`` all
        non-marker spans count as busy.
        """
        lo, hi = self.span
        horizon = hi - lo
        if horizon <= 0.0:
            return 0.0
        spans = sorted(
            (e.start, e.end)
            for e in self.events
            if e.rank == rank
            and e.kind is not EventKind.MARKER
            and (kind is None or e.kind is kind)
            and e.end > e.start
        )
        merged: List[List[float]] = []
        for start, end in spans:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        busy = sum(end - start for start, end in merged)
        return busy / horizon

    def render(self, width: int = 72, labels: Optional[Dict[int, str]] = None) -> str:
        """Render the trace as an ASCII Gantt chart.

        ``#`` marks computation, ``~`` communication, ``.`` idle time and
        ``|`` point markers.  One line per rank.
        """
        if width < 10:
            raise PlatformError(f"width must be at least 10, got {width}")
        lo, hi = self.span
        horizon = max(hi - lo, 1e-30)

        def column(t: float) -> int:
            return min(int((t - lo) / horizon * width), width - 1)

        lines = [f"time: {lo:.4g}s .. {hi:.4g}s  ('#'=compute '~'=comm '|'=marker)"]
        name_width = max(
            (len((labels or {}).get(r, f"rank {r}")) for r in self.ranks), default=6
        )
        for rank in self.ranks:
            lane = ["."] * width
            for event in self.events:
                if event.rank != rank:
                    continue
                if event.kind is EventKind.MARKER:
                    lane[column(event.start)] = "|"
                    continue
                char = "#" if event.kind is EventKind.COMPUTE else "~"
                for c in range(column(event.start), column(event.end) + 1):
                    if lane[c] != "|":
                        lane[c] = char
            name = (labels or {}).get(rank, f"rank {rank}").rjust(name_width)
            lines.append(f"{name} {''.join(lane)}")
        return "\n".join(lines)
