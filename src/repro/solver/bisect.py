"""Scalar bisection utilities for monotone functions.

These power the geometrical data partitioning algorithm: bisection on the
common execution-time level ``T`` (equivalently, on the slope of the line
through the origin in speed space -- the ray of slope ``k`` crosses a speed
curve exactly where the execution time equals ``1/k``).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SolverError


def bisect_root(
    f: Callable[[float], float],
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 200,
) -> float:
    """Find a root of ``f`` in ``[lo, hi]`` by bisection.

    ``f(lo)`` and ``f(hi)`` must have opposite signs (either may be zero, in
    which case that endpoint is returned).  The tolerance is on the bracket
    width relative to the magnitude of the bracket endpoints.
    """
    if lo > hi:
        lo, hi = hi, lo
    flo = f(lo)
    fhi = f(hi)
    if flo == 0.0:
        return lo
    if fhi == 0.0:
        return hi
    if math.copysign(1.0, flo) == math.copysign(1.0, fhi):
        raise SolverError(
            f"bisect_root: f({lo})={flo} and f({hi})={fhi} do not bracket a root"
        )
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = f(mid)
        if fmid == 0.0:
            return mid
        if math.copysign(1.0, fmid) == math.copysign(1.0, flo):
            lo, flo = mid, fmid
        else:
            hi, fhi = mid, fmid
        if hi - lo <= tol * max(1.0, abs(lo), abs(hi)):
            break
    return 0.5 * (lo + hi)


def bisect_monotone_inverse(
    f: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    tol: float = 1e-12,
    max_iter: int = 200,
    expand: bool = True,
) -> float:
    """Solve ``f(x) = target`` for a non-decreasing function ``f``.

    If ``expand`` is True and the initial bracket does not contain the
    target, the upper (or lower) bound is geometrically expanded up to 64
    times before giving up.  Returns the ``x`` achieving the target within
    tolerance; if the target lies below ``f(lo)`` after expansion, ``lo`` is
    returned (the smallest admissible argument), mirroring how partitioners
    clamp allocations at zero.
    """
    if lo > hi:
        raise SolverError(f"bisect_monotone_inverse: empty bracket [{lo}, {hi}]")
    flo = f(lo)
    fhi = f(hi)
    if expand:
        attempts = 0
        span = max(hi - lo, 1.0)
        while fhi < target and attempts < 64:
            span *= 2.0
            hi = hi + span
            fhi = f(hi)
            attempts += 1
        attempts = 0
        while flo > target and lo > 0.0 and attempts < 64:
            lo = max(0.0, lo - span)
            span *= 2.0
            flo = f(lo)
            attempts += 1
    if flo >= target:
        return lo
    if fhi <= target:
        return hi
    return bisect_root(lambda x: f(x) - target, lo, hi, tol=tol, max_iter=max_iter)
