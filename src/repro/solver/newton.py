"""Damped Newton method for small nonlinear systems.

The numerical data partitioning algorithm (Rychkov et al., ref. [15] of the
paper) formalises optimal partitioning as the nonlinear system

    t_i(x_i) - t_p(x_p) = 0   for i = 1 .. p-1
    x_1 + ... + x_p - D = 0

where ``t_i`` are Akima-spline time functions with continuous derivatives.
This module provides the multidimensional solver: Newton iterations with an
analytic (or finite-difference) Jacobian, a backtracking line search on the
residual norm, and box projection keeping the iterates inside the feasible
region (allocations must stay positive).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import SolverError


@dataclass(frozen=True)
class NewtonResult:
    """Outcome of :func:`newton_system`.

    Attributes:
        x: the final iterate.
        residual_norm: infinity norm of ``F(x)`` at the final iterate.
        iterations: Newton iterations performed.
        converged: whether the tolerance was met.
    """

    x: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def _fd_jacobian(
    f: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    fx: np.ndarray,
    rel_step: float = 1e-7,
) -> np.ndarray:
    """Forward-difference Jacobian of ``f`` at ``x``."""
    n = x.size
    jac = np.empty((fx.size, n))
    for j in range(n):
        h = rel_step * max(abs(x[j]), 1.0)
        xp = x.copy()
        xp[j] += h
        jac[:, j] = (f(xp) - fx) / h
    return jac


def newton_system(
    f: Callable[[np.ndarray], np.ndarray],
    x0: Sequence[float],
    jacobian: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    tol: float = 1e-10,
    max_iter: int = 100,
    lower: Optional[Sequence[float]] = None,
    upper: Optional[Sequence[float]] = None,
    damping_steps: int = 30,
) -> NewtonResult:
    """Solve ``f(x) = 0`` by damped Newton iteration.

    Args:
        f: residual function, mapping an n-vector to an n-vector.
        x0: initial iterate.
        jacobian: optional analytic Jacobian; finite differences otherwise.
        tol: convergence tolerance on ``||f(x)||_inf``.
        max_iter: maximum Newton iterations.
        lower/upper: optional elementwise bounds; iterates are projected
            into the box after every step.
        damping_steps: maximum halvings in the backtracking line search.

    Returns:
        A :class:`NewtonResult`.  ``converged`` is False when the iteration
        stalls; callers (the numerical partitioner) then fall back to the
        geometrical algorithm.
    """
    x = np.asarray(x0, dtype=float).copy()
    lo = None if lower is None else np.asarray(lower, dtype=float)
    hi = None if upper is None else np.asarray(upper, dtype=float)

    def project(v: np.ndarray) -> np.ndarray:
        if lo is not None:
            v = np.maximum(v, lo)
        if hi is not None:
            v = np.minimum(v, hi)
        return v

    x = project(x)
    fx = np.asarray(f(x), dtype=float)
    if fx.shape != x.shape:
        raise SolverError(
            f"newton_system: residual shape {fx.shape} != unknown shape {x.shape}"
        )
    norm = float(np.max(np.abs(fx)))
    iterations = 0
    for iterations in range(1, max_iter + 1):
        if norm <= tol:
            return NewtonResult(x, norm, iterations - 1, True)
        jac = jacobian(x) if jacobian is not None else _fd_jacobian(f, x, fx)
        jac = np.asarray(jac, dtype=float)
        try:
            step = np.linalg.solve(jac, -fx)
        except np.linalg.LinAlgError:
            step, *_ = np.linalg.lstsq(jac, -fx, rcond=None)
        # Backtracking line search on the residual norm.
        alpha = 1.0
        improved = False
        for _ in range(damping_steps):
            x_new = project(x + alpha * step)
            fx_new = np.asarray(f(x_new), dtype=float)
            norm_new = float(np.max(np.abs(fx_new)))
            if norm_new < norm:
                x, fx, norm = x_new, fx_new, norm_new
                improved = True
                break
            alpha *= 0.5
        if not improved:
            return NewtonResult(x, norm, iterations, norm <= tol)
    return NewtonResult(x, norm, iterations, norm <= tol)
