"""Numerical solver substrate.

The partitioning algorithms need two solvers:

* scalar bisection on monotone functions (:func:`bisect_root`,
  :func:`bisect_monotone_inverse`) -- used by the geometrical algorithm to
  find the equal-execution-time level whose per-device allocations sum to
  the total problem size;
* a damped Newton method for small nonlinear systems
  (:func:`newton_system`) -- used by the numerical algorithm on the system
  ``t_1(x_1) = ... = t_p(x_p)``, ``sum x_i = D`` built from Akima-spline
  models (ref. [15] of the paper).
"""

from repro.solver.bisect import bisect_monotone_inverse, bisect_root
from repro.solver.newton import NewtonResult, newton_system

__all__ = [
    "NewtonResult",
    "bisect_monotone_inverse",
    "bisect_root",
    "newton_system",
]
