"""The plan fleet: N worker processes behind one FPM-dogfooding router.

:class:`PlanFleet` scales the plan service past one process.  It spawns
``workers`` copies of :mod:`repro.serve.worker` (each with its own
:class:`~repro.serve.engine.PlanEngine`, cache and **per-shard WAL**),
wires them into a peer roster for sibling fill, measures each worker's
hit-path service rate, and fronts them with a
:class:`~repro.serve.router.PlanRouter`:

* requests are **consistent-hashed** to a home shard by affinity key, so
  the fleet cache is a union, not N copies;
* non-affinitised requests are **apportioned by the repo's own
  partitioners** over functional performance models fitted to the
  startup probes -- the FuPerMod methodology applied to its own serving
  fleet;
* a worker that dies is routed around immediately; a restarted worker
  recovers its plans from its own WAL and rejoins the ring at the same
  position (shard ids, not addresses, hash onto the ring);
* with ``replicas >= 2`` each committed plan also lives on its ring
  successors (:mod:`repro.serve.replicate`): a SIGKILLed home's plans
  keep serving as bit-identical replica hits, failed pushes drain as
  hints on peer recovery, and :meth:`PlanFleet.anti_entropy` diffs
  shard digests after a heal and repairs whatever diverged.

Startup sequencing (the ephemeral-port chicken-and-egg): workers bind
port 0 and announce the bound port in a READY line on stdout; once all
workers are up the supervisor broadcasts the full roster to every
worker, probes, and only then opens the router.  The same broadcast
runs again whenever membership changes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import FuPerModError
from repro.serve.client import PlanClient, http_transport
from repro.serve.router import PlanRouter
from repro.serve.shard import ShardClient

PathLike = Union[str, Path]

#: Batch sizes of the startup service-rate probe (requests per timing).
PROBE_BATCHES = (1, 2, 4, 8)


def _worker_env() -> Dict[str, str]:
    """The child's environment: inherit, with our import path exported."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    return env


def _read_ready(proc: subprocess.Popen, timeout: float) -> Dict[str, Any]:
    """The worker's READY line, or raise if it dies / stalls."""
    result: Dict[str, Any] = {}

    def reader() -> None:
        line = proc.stdout.readline()
        if line:
            try:
                result.update(json.loads(line))
            except ValueError:
                result["error"] = f"bad READY line: {line!r}"

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive() or not result.get("ready"):
        code = proc.poll()
        proc.kill()
        raise FuPerModError(
            f"worker failed to become ready within {timeout:.3g}s "
            f"(exit code {code}, READY={result or None})"
        )
    return result


class _Shard:
    """Supervisor-side record of one worker process."""

    def __init__(self, shard_id: str, cache_file: Path,
                 slowdown_ms: float) -> None:
        self.shard_id = shard_id
        self.cache_file = cache_file
        self.slowdown_ms = slowdown_ms
        self.proc: Optional[subprocess.Popen] = None
        self.url: str = ""
        self.client: Optional[ShardClient] = None

    @property
    def running(self) -> bool:
        return self.proc is not None and self.proc.poll() is None


class PlanFleet:
    """Supervise a sharded plan-serving fleet.

    Args:
        points: ``build`` output directory the workers load models from.
        workers: number of worker processes (shards).
        model / algorithm: model family and default partitioner per shard.
        routing: balanced-routing policy, ``"fpm"`` or ``"round-robin"``.
        cache_dir: directory for the per-shard WAL-backed caches
            (``<shard>.plans``); ``None`` disables durability.
        slowdowns_ms: per-worker simulated service time in milliseconds
            (cycled if shorter than ``workers``); models a heterogeneous
            fleet on a homogeneous host.  0 disables.
        worker_threads: solver threads per worker.
        probe: measure each worker's hit-path service rate at startup
            and seed the balancer's performance models from it.
        probe_total: the problem size the probe plans (kept distinct
            from real traffic so probes stay cache-warm).
        host / port: router bind address (port 0 = ephemeral).
        startup_timeout: seconds allowed for each worker to become ready.
        worker_args: extra argv appended to every worker command line.
        replicas: plan replica-set size including the home shard
            (passed to every worker as ``--replicas``; 1 disables
            replication -- the pre-replication fleet).
        durability_budget: consecutive journal-append failures each
            worker tolerates before its durable cache trips to
            memory-only mode (forwarded as ``--durability-budget``);
            ``None`` forwards ``--no-durability-degrade`` so disk
            errors surface as request failures, the historical
            behaviour.
        disk_fault_plan: path to a serialized
            :class:`~repro.faults.disk.DiskFaultPlan` spliced into every
            worker's journals (forwarded as ``--disk-fault-plan``); the
            chaos suite's storage-failure seam.

    Use as a context manager, or call :meth:`stop`.
    """

    def __init__(
        self,
        points: PathLike,
        workers: int = 2,
        model: str = "piecewise",
        algorithm: str = "geometric",
        routing: str = "fpm",
        cache_dir: Optional[PathLike] = None,
        slowdowns_ms: Optional[Sequence[float]] = None,
        worker_threads: int = 4,
        probe: bool = True,
        probe_total: int = 654_321,
        host: str = "127.0.0.1",
        port: int = 0,
        startup_timeout: float = 30.0,
        worker_args: Optional[Sequence[str]] = None,
        replicas: int = 2,
        durability_budget: Optional[int] = 3,
        disk_fault_plan: Optional[PathLike] = None,
    ) -> None:
        if workers <= 0:
            raise FuPerModError(f"a fleet needs at least one worker, got {workers}")
        self.points = Path(points)
        self.model = model
        self.algorithm = algorithm
        self.probe = probe
        self.probe_total = probe_total
        self.worker_threads = worker_threads
        self.startup_timeout = startup_timeout
        self.worker_args = list(worker_args or [])
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        slowdowns = list(slowdowns_ms or [0.0])
        self.shards: Dict[str, _Shard] = {}
        for i in range(workers):
            sid = f"shard{i}"
            cache_file = (
                self.cache_dir / f"{sid}.plans"
                if self.cache_dir is not None else None
            )
            self.shards[sid] = _Shard(
                sid, cache_file, slowdowns[i % len(slowdowns)]
            )
        if replicas <= 0:
            raise FuPerModError(
                f"replica set size must be positive, got {replicas}"
            )
        self.replicas = replicas
        if durability_budget is not None and durability_budget <= 0:
            raise FuPerModError(
                f"durability budget must be positive, got {durability_budget}"
            )
        self.durability_budget = durability_budget
        self.disk_fault_plan = (
            Path(disk_fault_plan) if disk_fault_plan is not None else None
        )
        self.router = PlanRouter(
            {sid: "http://127.0.0.1:0" for sid in self.shards},
            routing=routing, host=host, port=port,
            read_replicas=replicas,
        )
        self._stopped = False

    # -- worker lifecycle --------------------------------------------------

    def _worker_cmd(self, shard: _Shard) -> List[str]:
        cmd = [
            sys.executable, "-m", "repro.serve.worker",
            "--points", str(self.points),
            "--model", self.model,
            "--algorithm", self.algorithm,
            "--shard-id", shard.shard_id,
            "--port", "0",
            "--threads", str(self.worker_threads),
        ]
        if shard.cache_file is not None:
            cmd += ["--cache-file", str(shard.cache_file)]
        if shard.slowdown_ms > 0.0:
            cmd += ["--slowdown", str(shard.slowdown_ms)]
        cmd += ["--replicas", str(self.replicas)]
        if self.durability_budget is None:
            cmd += ["--no-durability-degrade"]
        else:
            cmd += ["--durability-budget", str(self.durability_budget)]
        if self.disk_fault_plan is not None:
            cmd += ["--disk-fault-plan", str(self.disk_fault_plan)]
        cmd += self.worker_args
        return cmd

    def _spawn(self, shard: _Shard) -> Dict[str, Any]:
        shard.proc = subprocess.Popen(
            self._worker_cmd(shard),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=_worker_env(),
        )
        ready = _read_ready(shard.proc, self.startup_timeout)
        shard.url = str(ready["url"])
        shard.client = ShardClient(shard.url, shard.shard_id, timeout=10.0)
        return ready

    def _broadcast_peers(self) -> None:
        """Deliver the current roster to every running worker."""
        roster = [
            {"shard_id": s.shard_id, "url": s.url}
            for s in self.shards.values() if s.running
        ]
        for shard in self.shards.values():
            if shard.running and shard.client is not None:
                try:
                    shard.client.set_peers(roster)
                except Exception:
                    pass  # the monitor/restart path will resync it

    def _probe_shard(self, shard: _Shard) -> List[Any]:
        """Measure this worker's hit-path service rate: (batch, seconds)."""
        client = shard.client
        payload = {"cmd": "plan", "total": self.probe_total}
        client.plan(payload)  # cold solve; everything after is the hit path
        points = []
        for batch in PROBE_BATCHES:
            start = time.perf_counter()
            for _ in range(batch):
                client.plan(payload)
            points.append((batch, time.perf_counter() - start))
        return points

    def start(self) -> "PlanFleet":
        """Spawn the workers, wire peers, probe, open the router."""
        for shard in self.shards.values():
            self._spawn(shard)
            self.router.revive(shard.shard_id, shard.url)
        self._broadcast_peers()
        if self.probe:
            for shard in self.shards.values():
                try:
                    points = self._probe_shard(shard)
                except Exception:
                    continue  # unseeded workers fall back to equal shares
                self.router.balancer.seed(shard.shard_id, points)
        self.router.start()
        return self

    # -- chaos / membership ------------------------------------------------

    def kill_shard(self, shard_id: str) -> None:
        """SIGKILL one worker (the crash case; no drain, no WAL compact)."""
        shard = self.shards[shard_id]
        if shard.proc is not None:
            shard.proc.kill()
            shard.proc.wait()
        self.router.mark_dead(shard_id)

    def restart_shard(self, shard_id: str) -> Dict[str, Any]:
        """Respawn a dead worker on its original cache file.

        The worker recovers its plans from its own WAL (snapshot +
        journal replay), rejoins the ring at its old position (same
        shard id), and the roster is re-broadcast fleet-wide.  Returns
        the worker's READY record (including its ``recovered`` count).
        """
        shard = self.shards[shard_id]
        if shard.running:
            raise FuPerModError(f"shard {shard_id} is still running")
        ready = self._spawn(shard)
        self.router.revive(shard_id, shard.url)
        self._broadcast_peers()
        if self.replicas > 1:
            # A rejoining shard missed every plan committed while it was
            # down; repair it in the background (reads keep flowing to
            # its replicas meanwhile, so nothing waits on this).
            threading.Thread(
                target=self._safe_anti_entropy,
                name=f"fupermod-anti-entropy-{shard_id}",
                daemon=True,
            ).start()
        return ready

    # -- anti-entropy ------------------------------------------------------

    def _safe_anti_entropy(self) -> None:
        try:
            self.anti_entropy()
        except Exception:
            pass  # background repair is best-effort; digests retry later

    def digest_report(self) -> Dict[str, Dict[str, Any]]:
        """Every running shard's anti-entropy digest, keyed by shard id."""
        digests: Dict[str, Dict[str, Any]] = {}
        for shard in self.shards.values():
            if shard.running and shard.client is not None:
                got = shard.client.digest()
                if got is not None:
                    digests[shard.shard_id] = got
        return digests

    def anti_entropy(self) -> Dict[str, Any]:
        """Diff shard digests and repair divergent replica sets.

        For every key any shard holds (with a placeable affinity), the
        desired holders are its replica set on the *full* membership
        ring, filtered to running shards.  The authoritative copy is the
        ring-preference-first running holder; any desired holder missing
        the key -- or holding it under a different entry fingerprint --
        is repaired by pulling the entry from the authority and pushing
        it through ``POST /replicate`` with the ``repair`` flag.

        Returns a report: keys examined, divergent keys found, repairs
        pushed, push failures.  Run it after a partition heals (the
        netsplit suite asserts zero divergent keys on a second pass) or
        let :meth:`restart_shard` trigger it in the background.
        """
        from repro.serve.hashring import HashRing

        digests = self.digest_report()
        holdings: Dict[str, Dict[str, Any]] = {
            sid: {
                str(e[0]): (str(e[1]), e[2])
                for e in d.get("entries", ())
            }
            for sid, d in digests.items()
        }
        ring = HashRing()
        for sid in self.shards:
            ring.add(sid)
        report = {"keys": 0, "divergent": 0, "repairs": 0, "failures": 0}
        all_keys: Dict[str, Optional[str]] = {}
        for entries in holdings.values():
            for key, (_fp, affinity) in entries.items():
                if affinity is not None:
                    all_keys[key] = str(affinity)
                else:
                    all_keys.setdefault(key, None)
        for key, affinity in sorted(all_keys.items()):
            report["keys"] += 1
            if affinity is None:
                continue  # spec-less entries cannot be placed on the ring
            preference = ring.preference(affinity)
            desired = [
                sid for sid in preference[: self.replicas]
                if sid in holdings
            ]
            source_sid = next(
                (sid for sid in preference
                 if sid in holdings and key in holdings[sid]),
                None,
            )
            if source_sid is None or not desired:
                continue
            source_fp = holdings[source_sid][key][0]
            targets = [
                sid for sid in desired
                if sid != source_sid
                and holdings[sid].get(key, (None, None))[0] != source_fp
            ]
            if not targets:
                continue
            report["divergent"] += 1
            source = self.shards[source_sid].client
            entry = source.get_entry(key) if source is not None else None
            if entry is None:
                report["failures"] += len(targets)
                continue
            result, models_fp, spec = entry
            payload = {
                "key": key,
                "models_fp": models_fp,
                "result": result.to_dict(),
                "spec": list(spec) if spec is not None else None,
                "source": source_sid,
                "repair": True,
            }
            for sid in targets:
                client = self.shards[sid].client
                try:
                    ok = client is not None and client.replicate(payload)
                except Exception:
                    ok = False
                report["repairs" if ok else "failures"] += 1
        return report

    # -- client-facing -----------------------------------------------------

    @property
    def url(self) -> str:
        """The router's base URL (valid once started)."""
        return self.router.url

    def client(self, **kwargs: Any) -> PlanClient:
        """A retrying :class:`PlanClient` against the router."""
        return PlanClient(http_transport(self.url), **kwargs)

    def shard_client(self, shard_id: str) -> ShardClient:
        """Direct client for one worker (parity tests, probes)."""
        client = self.shards[shard_id].client
        if client is None:
            raise FuPerModError(f"shard {shard_id} has not started")
        return client

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful shutdown: SIGTERM workers, drain, stop the router."""
        if self._stopped:
            return
        self._stopped = True
        for shard in self.shards.values():
            if shard.running:
                shard.proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for shard in self.shards.values():
            if shard.proc is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                shard.proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                shard.proc.kill()
                shard.proc.wait()
        self.router.stop()

    def __enter__(self) -> "PlanFleet":
        """Context-manager entry: start the fleet."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: stop everything."""
        self.stop()
