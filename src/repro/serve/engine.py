"""The plan engine: cache-backed, warm-started partition solving.

:class:`PlanEngine` is the single compute path of the serving layer.
Given a model set and a total it:

1. fingerprints the models and the request (content identity, see
   :mod:`repro.serve.fingerprint`);
2. consults the :class:`~repro.serve.cache.PlanCache` -- a hit is
   returned without touching the partitioner at all;
3. on a miss, looks for a cached plan for the *same model set* at a
   nearby total and turns it into a
   :class:`~repro.core.partition.warm.WarmStart` seed;
4. consults the model set's circuit breaker (when a
   :class:`~repro.serve.breaker.BreakerBoard` is wired in): an open
   breaker short-circuits straight to the degradation ladder without
   touching the partitioner;
5. runs the requested partitioner (warm-started when it accepts a seed),
   falling back to the :class:`~repro.degrade.DegradationPolicy` ladder
   when one is configured and the partitioner fails with a typed error,
   recording the outcome on the breaker either way;
6. stores and returns the :class:`~repro.serve.plan.PlanResult`
   (breaker short circuits are served but never cached).

The engine is deliberately model-set agnostic: callers pass the models
with every request (the dynamic loops refit them between calls), and the
fingerprint keeps cache identity honest across mutation.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Mapping, Optional, Sequence, Tuple

from repro.core import registry
from repro.core.partition.dist import Distribution
from repro.core.partition.pareto import DEFAULT_FRONT_POINTS, partition_pareto
from repro.core.partition.warm import WarmStart
from repro.degrade.policy import _FALLBACK_TRIGGERS, DegradationPolicy
from repro.errors import CircuitOpenError, PartitionError
from repro.serve.breaker import BreakerBoard
from repro.serve.cache import PlanCache
from repro.serve.fingerprint import fingerprint_models
from repro.serve.plan import PlanRequest, PlanResult, ServeCounters


class PlanEngine:
    """Cache-backed partition planning over any registered partitioner.

    Args:
        cache: the plan cache (a default 128-entry LRU when omitted;
            pass ``None`` explicitly via ``PlanEngine(cache=None)`` is
            not supported -- caching is the point of the engine).
        policy: optional :class:`DegradationPolicy`; when the requested
            partitioner fails with a typed error the ladder produces the
            plan instead and the result records the degradation.
        partitioner: default partitioner name for requests that name none.
        warm: enable warm-started solves from nearby cached plans.
        counters: optional shared :class:`ServeCounters` (the server
            passes its own so coalescing and computation counts live
            together).
        breakers: optional :class:`~repro.serve.breaker.BreakerBoard`.
            When a model set's breaker is open, solves for it are
            short-circuited: the ladder answers (when a policy is
            configured) or :class:`~repro.errors.CircuitOpenError` is
            raised.  Short-circuited plans are **not** cached -- a cached
            degraded plan would keep being served long after the breaker
            recovered.
        sibling_fill: optional peer-cache lookup for fleet serving.
            Called with the :class:`~repro.serve.plan.PlanRequest` on a
            local cache miss, *before* solving cold; a returned
            :class:`~repro.serve.plan.PlanResult` (validated against the
            request) is stored locally and served.  Any exception or a
            plan that does not answer the request is swallowed into the
            ``sibling_errors`` counter and the solve proceeds cold -- a
            dead or lying peer must never fail, or poison, this shard.
        on_commit: optional hook called with ``(request, result)`` after
            a freshly *solved* plan is cached -- the fleet's replication
            trigger.  Cache hits and sibling fills do not fire it: a hit
            was already replicated when first committed, and a sibling
            fill is a copy of a plan whose home committed (and
            replicated) it.  Exceptions are swallowed; replication must
            never fail a serve.
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        policy: Optional[DegradationPolicy] = None,
        partitioner: str = "geometric",
        warm: bool = True,
        counters: Optional[ServeCounters] = None,
        breakers: Optional[BreakerBoard] = None,
        sibling_fill=None,
        on_commit=None,
    ) -> None:
        self.cache = cache if cache is not None else PlanCache()
        self.policy = policy
        self.default_partitioner = partitioner
        self.warm = warm
        self.counters = counters if counters is not None else ServeCounters()
        self.breakers = breakers
        self.sibling_fill = sibling_fill
        self.on_commit = on_commit

    # -- request construction ---------------------------------------------

    def request(
        self,
        models: Sequence,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        kind: str = "time",
        objective: Optional[Mapping[str, Any]] = None,
        energy_models: Optional[Sequence] = None,
    ) -> PlanRequest:
        """Build the content-addressed request for ``models`` at ``total``.

        The model fingerprint is recomputed on every call -- the dynamic
        loops mutate models between requests, and a stale fingerprint
        would serve a stale plan.  For non-``"time"`` kinds the energy
        models fingerprint the same way, so refitting the power side
        alone changes exactly the energy-keyed identities.
        """
        if kind != "time" and not energy_models:
            raise PartitionError(
                f"plan kind {kind!r} requires energy models; none attached"
            )
        return PlanRequest.make(
            models_fp=fingerprint_models(models),
            total=total,
            partitioner=partitioner or self.default_partitioner,
            options=options,
            kind=kind,
            energy_fp=(
                fingerprint_models(energy_models) if kind != "time" else ""
            ),
            objective=objective,
        )

    # -- warm-start lookup --------------------------------------------------

    def _warm_hint(self, request: PlanRequest) -> Optional[WarmStart]:
        """A seed from the nearest cached *same-kind* plan for the model set.

        A time solve seeds from a time plan's equal-time level; a pareto
        solve seeds from a neighbouring front's pure-time endpoint (the
        front sweep then re-derives every interior bracket from its own
        endpoints).  Kinds never cross-seed -- a blended level is not an
        equal-time level.
        """
        if not self.warm:
            return None
        near = self.cache.nearest(
            request.models_fp, request.total, exclude=request.key,
            kind=request.kind,
        )
        if near is None:
            return None
        if near.kind == "pareto" and near.front:
            # The front is sorted by time, so points[0] is the pure-time
            # endpoint -- the only point whose level is an equal-time
            # level, which is what the endpoint solve brackets from.
            sizes = near.front[0].sizes
            level = max(near.front[0].times, default=0.0)
        else:
            sizes = near.sizes
            level = max(near.times, default=0.0)
        if not level > 0.0:
            return None
        try:
            return WarmStart(total=near.total, level=level, sizes=sizes)
        except PartitionError:
            return None

    # -- solving -------------------------------------------------------------

    def _short_circuit(self, request: PlanRequest, models: Sequence, breaker) -> PlanResult:
        """Answer a request whose breaker is open without solving."""
        self.counters.short_circuits += 1
        if self.policy is None:
            raise CircuitOpenError(
                f"circuit open for model set {request.models_fp[:12]}...; "
                f"no degradation policy configured",
                retry_after=breaker.remaining_cooldown(),
            )
        start = time.perf_counter()
        dist = self.policy.partition(request.total, models)
        elapsed = time.perf_counter() - start
        cert = getattr(dist, "convergence", None)
        return PlanResult(
            key=request.key,
            total=request.total,
            sizes=tuple(p.d for p in dist.parts),
            times=tuple(p.t for p in dist.parts),
            algorithm=cert.algorithm if cert is not None else "degraded",
            cert=cert,
            cached=False,
            warm=False,
            degraded=(
                f"circuit open for model set "
                f"({breaker.remaining_cooldown():.1f}s cooldown remaining); "
                f"ladder engaged"
            ),
            compute_seconds=elapsed,
        )

    def _solve_pareto(
        self,
        request: PlanRequest,
        models: Sequence,
        energy_models: Sequence,
    ) -> Tuple[PlanResult, bool]:
        """Solve a bi-objective request: sweep the front, select one point.

        The full dominance-filtered front rides on the result (and hence
        into the cache), so every later request against the same
        ``(models_fp, energy_fp, objective)`` key re-selects from the
        cached front without re-solving.  Neither the circuit breaker nor
        the degradation ladder applies here: both produce *time* plans,
        and answering a pareto request with a time plan would be exactly
        the cross-kind aliasing the key schema exists to prevent -- a
        failed front solve raises its typed error instead.
        """
        if not energy_models:
            raise PartitionError(
                f"plan kind {request.kind!r} requires energy models; "
                "none attached to this engine call"
            )
        obj = request.objective_dict()
        kwargs = request.option_dict()
        npoints = int(obj.get("npoints", DEFAULT_FRONT_POINTS))
        warm_used = False
        if "warm_start" not in kwargs:
            hint = self._warm_hint(request)
            if hint is not None:
                kwargs["warm_start"] = hint
                warm_used = True
        start = time.perf_counter()
        front = partition_pareto(
            request.total, models, energy_models, npoints=npoints, **kwargs
        )
        elapsed = time.perf_counter() - start
        self.counters.computations += 1
        if warm_used:
            self.counters.warm_starts += 1
        alpha = obj.get("alpha")
        cap = obj.get("energy_cap")
        point = front.select(
            alpha=float(alpha) if alpha is not None else None,
            max_joules=float(cap) if cap is not None else None,
        )
        return (
            PlanResult(
                key=request.key,
                total=request.total,
                sizes=point.sizes,
                times=point.times,
                algorithm="pareto",
                cert=point.cert,
                cached=False,
                warm=warm_used,
                degraded="",
                compute_seconds=elapsed,
                kind="pareto",
                front=front.points,
            ),
            True,
        )

    def _solve(
        self,
        request: PlanRequest,
        models: Sequence,
        energy_models: Optional[Sequence] = None,
    ) -> Tuple[PlanResult, bool]:
        """Run the partitioner for a cache miss (no cache interaction).

        Returns ``(result, cacheable)``: breaker-open short circuits are
        not cacheable -- the cache would keep serving the degraded plan
        long after the breaker recovered.
        """
        if request.kind == "pareto":
            return self._solve_pareto(request, models, energy_models or ())
        breaker = (
            self.breakers.breaker(request.models_fp)
            if self.breakers is not None
            else None
        )
        if breaker is not None and not breaker.allow():
            return self._short_circuit(request, models, breaker), False
        fn = registry.partitioner(request.partitioner)
        kwargs = request.option_dict()
        warm_used = False
        try:
            params = inspect.signature(fn).parameters
        except (TypeError, ValueError):
            params = {}
        if "warm_start" in params and "warm_start" not in kwargs:
            hint = self._warm_hint(request)
            if hint is not None:
                kwargs["warm_start"] = hint
                warm_used = True
        degraded = ""
        start = time.perf_counter()
        try:
            dist = fn(request.total, models, **kwargs)
        except _FALLBACK_TRIGGERS as exc:
            if breaker is not None:
                breaker.record_failure()
            if self.policy is None:
                raise
            degraded = (
                f"{request.partitioner} failed "
                f"({type(exc).__name__}: {exc}); ladder engaged"
            )
            dist = self.policy.partition(request.total, models)
            warm_used = False
        else:
            if breaker is not None:
                breaker.record_success()
        elapsed = time.perf_counter() - start
        self.counters.computations += 1
        if warm_used:
            self.counters.warm_starts += 1
        cert = getattr(dist, "convergence", None)
        return (
            PlanResult(
                key=request.key,
                total=request.total,
                sizes=tuple(p.d for p in dist.parts),
                times=tuple(p.t for p in dist.parts),
                algorithm=cert.algorithm if cert is not None else request.partitioner,
                cert=cert,
                cached=False,
                warm=warm_used,
                degraded=degraded,
                compute_seconds=elapsed,
            ),
            True,
        )

    def _from_sibling(self, request: PlanRequest) -> Optional[PlanResult]:
        """A validated plan from a sibling shard's cache, or None.

        The validation is the poisoning guard: a sibling answering with
        the wrong key, the wrong total, or shares that do not sum to the
        total is counted as an error and ignored, never cached.
        """
        try:
            got = self.sibling_fill(request)
        except Exception:
            self.counters.sibling_errors += 1
            return None
        if got is None:
            self.counters.sibling_misses += 1
            return None
        if (
            not isinstance(got, PlanResult)
            or got.key != request.key
            or got.total != request.total
            or got.kind != request.kind
            or sum(got.sizes) != request.total
            or len(got.sizes) != len(got.times)
            or (got.kind != "time" and not got.front)
        ):
            self.counters.sibling_errors += 1
            return None
        self.counters.sibling_fills += 1
        return got

    def plan_request(
        self,
        models: Sequence,
        request: PlanRequest,
        energy_models: Optional[Sequence] = None,
    ) -> PlanResult:
        """Serve one prepared request: cache hit, sibling fill, or solve."""
        hit = self.cache.get(request.key)
        if hit is not None:
            return hit.replace(cached=True)
        # The spec rides along with cached entries so a model refit can
        # re-solve exactly the requests this cache was answering.  Time
        # plans keep the historical 3-tuple (byte parity with persisted
        # caches and replicas written before plan kinds existed); other
        # kinds append their kind and objective so the re-solve -- and
        # the cache's cross-kind aliasing guard -- see them.
        spec: Tuple[Any, ...] = (
            request.total, request.partitioner, request.option_dict()
        )
        if request.kind != "time":
            spec = spec + (request.kind, request.objective_dict())
        if self.sibling_fill is not None:
            filled = self._from_sibling(request)
            if filled is not None:
                self.cache.put(
                    request.key, filled, request.models_fp, spec=spec
                )
                return filled.replace(cached=True)
        result, cacheable = self._solve(request, models, energy_models)
        if cacheable:
            self.cache.put(request.key, result, request.models_fp, spec=spec)
            if self.on_commit is not None:
                try:
                    self.on_commit(request, result)
                except Exception:
                    pass  # replication is asynchronous and best-effort
        return result

    def plan(
        self,
        models: Sequence,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        kind: str = "time",
        objective: Optional[Mapping[str, Any]] = None,
        energy_models: Optional[Sequence] = None,
    ) -> PlanResult:
        """Serve a plan for ``models`` at ``total`` (request sugar)."""
        return self.plan_request(
            models,
            self.request(
                models, total, partitioner, options,
                kind=kind, objective=objective, energy_models=energy_models,
            ),
            energy_models=energy_models,
        )

    def distribution(
        self,
        models: Sequence,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> Distribution:
        """Serve a plan and rebuild it as a :class:`Distribution`."""
        return self.plan(models, total, partitioner, options).distribution()

    def partition_function(
        self,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
    ):
        """This engine as a ``(total, models) -> Distribution`` callable.

        Drop-in for :class:`~repro.core.partition.DynamicPartitioner`,
        :class:`~repro.core.partition.LoadBalancer` and the apps'
        ``partition_fn`` seams: every repartitioning step of a dynamic
        loop then flows through the cache, so converged loops (which
        re-request the same models at the same total) stop recomputing.
        """

        def cached_partition(total: int, models: Sequence) -> Distribution:
            return self.distribution(models, total, partitioner, options)

        return cached_partition
