"""The plan server: concurrent request handling with single-flight.

:class:`PlanServer` binds a :class:`~repro.serve.engine.PlanEngine` to a
fixed model set and serves plan requests from many threads.  Beyond the
engine it owns three serving-side guarantees:

* **Coalescing** -- when N identical requests are in flight at once,
  exactly one partitioner computation runs and all N callers share its
  future.  The guarantee (tested by ``tests/test_serve_server.py``) is
  counter-based, not timing-based: ``counters.computations`` rises by
  one however many identical requests race.
* **Admission control** -- with ``max_pending`` set, a request that would
  start a *new* computation while that many are already in flight is
  shed immediately with :class:`~repro.errors.ServiceOverloadError`
  (counted in ``counters.shed``) instead of queueing without bound.
  Coalesced joins never count against the cap: they add no work.
* **Deadlines** -- :meth:`request` takes a per-request budget (a float
  of seconds or a :class:`~repro.degrade.watchdog.Deadline`).  Expiry
  raises :class:`~repro.errors.DeadlineExceeded` *at the wait site
  only*: the computation keeps running and fills the cache, because its
  future may be shared by coalesced callers with laxer deadlines.

The server also exposes batch submission (:meth:`request_many`) for
callers that want a whole sweep of totals planned concurrently, a
consolidated :meth:`stats` snapshot for the front ends, and a
:meth:`drain`-then-:meth:`close` shutdown path for graceful termination.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.degrade.policy import DegradationPolicy
from repro.degrade.watchdog import Deadline
from repro.errors import DeadlineExceeded, ServiceOverloadError
from repro.serve.breaker import BreakerBoard
from repro.serve.cache import PlanCache
from repro.serve.engine import PlanEngine
from repro.serve.plan import PlanRequest, PlanResult


class PlanServer:
    """Serve partition plans for one model set, coalescing duplicates.

    Args:
        models: the fitted per-rank performance models to plan against.
        engine: optional preconfigured engine (cache/policy/partitioner
            wiring); a default cache-backed engine is built when omitted.
        cache: cache for the default engine (ignored when ``engine`` is
            given).
        policy: degradation policy for the default engine (ignored when
            ``engine`` is given).
        max_workers: worker-thread cap for concurrent computations.
        max_pending: admission cap -- maximum distinct computations in
            flight before new (non-coalescing) requests are shed with
            :class:`~repro.errors.ServiceOverloadError`.  ``None``
            disables shedding (the pre-hardening behaviour).
        default_deadline: seconds granted to :meth:`request` calls that
            pass no explicit deadline; ``None`` means wait forever.
        shed_retry_after: the ``Retry-After`` hint (seconds) attached to
            shed errors, surfaced as an HTTP header by the front end.
        breakers: circuit-breaker board for the default engine (ignored
            when ``engine`` is given).

    Use as a context manager, or call :meth:`close` when done, to stop
    the worker pool.
    """

    def __init__(
        self,
        models: Sequence,
        engine: Optional[PlanEngine] = None,
        cache: Optional[PlanCache] = None,
        policy: Optional[DegradationPolicy] = None,
        max_workers: int = 4,
        max_pending: Optional[int] = None,
        default_deadline: Optional[float] = None,
        shed_retry_after: float = 1.0,
        breakers: Optional[BreakerBoard] = None,
    ) -> None:
        if not models:
            raise ValueError("a plan server needs at least one model")
        if max_pending is not None and max_pending <= 0:
            raise ValueError(
                f"max_pending must be positive or None, got {max_pending}"
            )
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive or None, got {default_deadline}"
            )
        self.models = list(models)
        #: Fitted per-rank *energy* models (J as a function of size), set
        #: by :meth:`attach_energy`; required before any ``"pareto"``
        #: request can be served.
        self.energy_models: Optional[List] = None
        self.engine = (
            engine
            if engine is not None
            else PlanEngine(cache=cache, policy=policy, breakers=breakers)
        )
        self._plans_by_kind: Dict[str, int] = {}
        self.max_pending = max_pending
        self.default_deadline = default_deadline
        self.shed_retry_after = shed_retry_after
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fupermod-serve"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future[PlanResult]"] = {}
        self._closed = False
        self._started_at = time.monotonic()
        #: Optional closed-loop refinement controller
        #: (:class:`repro.serve.feedback.FeedbackController`); the front
        #: ends dispatch ``{"cmd": "feedback"}`` to it when attached.
        self.feedback = None
        #: Optional zero-argument callable returning replication stats
        #: (the fleet worker wires :meth:`PlanReplicator.stats` here);
        #: when set, :meth:`stats` grows a ``"replication"`` section.
        self.replication = None

    # -- bi-objective serving ----------------------------------------------

    def attach_energy(self, energy_models: Sequence) -> None:
        """Enable ``"pareto"`` plans by attaching per-rank energy models.

        ``energy_models[i]`` must model the same device as
        ``models[i]`` (joules instead of seconds), so the lists must
        match in length.  Like the speed models, the energy models are
        re-fingerprinted per request -- refitting the power side alone
        changes exactly the energy-keyed cache identities.
        """
        energy_models = list(energy_models)
        if len(energy_models) != len(self.models):
            raise ValueError(
                f"{len(energy_models)} energy models for "
                f"{len(self.models)} speed models; the lists must pair up "
                f"rank for rank"
            )
        self.energy_models = energy_models

    def _count_plan(self, kind: str) -> None:
        """Tally one served plan for the ``/metrics`` per-kind counters."""
        with self._lock:
            self._plans_by_kind[kind] = self._plans_by_kind.get(kind, 0) + 1

    # -- core serving ------------------------------------------------------

    def _make_request(
        self,
        total: int,
        partitioner: Optional[str],
        options: Optional[Mapping[str, Any]],
        kind: str,
        objective: Optional[Mapping[str, Any]],
    ) -> PlanRequest:
        """Build the content-addressed request (typed errors propagate)."""
        return self.engine.request(
            self.models, total, partitioner, options,
            kind=kind, objective=objective,
            energy_models=self.energy_models if kind != "time" else None,
        )

    def try_cached(
        self,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        kind: str = "time",
        objective: Optional[Mapping[str, Any]] = None,
    ) -> Optional[PlanResult]:
        """The plan iff it is already cached locally; never queues work.

        This is the asyncio front end's fast lane: a cache hit is served
        inline on the event loop (fingerprint + LRU lookup, microseconds)
        instead of round-tripping through the worker pool.  A miss
        returns ``None`` without counting it -- the caller falls back to
        :meth:`request`, whose engine path counts the miss exactly once.
        """
        if kind != "time" and self.energy_models is None:
            return None  # the slow path owns the typed 400
        request = self._make_request(total, partitioner, options, kind, objective)
        hit = self.engine.cache.peek(request.key)
        if hit is None:
            return None
        # Count the hit the same way the engine's get() path would.
        hit = self.engine.cache.get(request.key)
        if hit is None:
            return None
        self._count_plan(hit.kind)
        return hit.replace(cached=True)

    def submit(
        self,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        kind: str = "time",
        objective: Optional[Mapping[str, Any]] = None,
    ) -> "Future[PlanResult]":
        """Queue one request, returning its future.

        Single-flight: if an identical request (same content key) is
        already in flight, its future is returned and no new work starts;
        the duplicate is counted in ``counters.coalesced``.

        Raises:
            ServiceOverloadError: when ``max_pending`` distinct
                computations are already in flight and this request would
                start another (counted in ``counters.shed``).
            RuntimeError: when the server has been closed.
        """
        request = self._make_request(total, partitioner, options, kind, objective)
        with self._lock:
            if self._closed:
                raise RuntimeError("plan server is closed")
            existing = self._inflight.get(request.key)
            if existing is not None:
                self.engine.counters.coalesced += 1
                return existing
            pending = len(self._inflight)
            if self.max_pending is not None and pending >= self.max_pending:
                self.engine.counters.shed += 1
                raise ServiceOverloadError(
                    f"admission queue full ({pending} computations in "
                    f"flight, cap {self.max_pending}); request shed",
                    retry_after=self.shed_retry_after,
                    pending=pending,
                )
            future = self._pool.submit(self._run, request)
            self._inflight[request.key] = future
            return future

    def _run(self, request: PlanRequest) -> PlanResult:
        """Worker body: serve the request, then retire it from in-flight."""
        try:
            result = self.engine.plan_request(
                self.models, request, energy_models=self.energy_models
            )
            self._count_plan(result.kind)
            return result
        finally:
            with self._lock:
                self._inflight.pop(request.key, None)

    def request(
        self,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        deadline: Optional[Union[float, Deadline]] = None,
        kind: str = "time",
        objective: Optional[Mapping[str, Any]] = None,
    ) -> PlanResult:
        """Serve one request, blocking until the plan is ready.

        Args:
            deadline: seconds to wait (or a prepared
                :class:`~repro.degrade.watchdog.Deadline`); falls back to
                the server's ``default_deadline``; ``None`` waits
                forever.
            kind: the plan kind (``"time"`` or ``"pareto"``; the latter
                requires :meth:`attach_energy` first).
            objective: objective parameters for non-time kinds
                (``alpha``, ``energy_cap``, ``npoints``).

        Raises:
            DeadlineExceeded: the budget ran out before the plan arrived
                (counted in ``counters.deadline_expired``).  The
                computation itself is *not* cancelled -- coalesced
                callers may still be waiting on it, and its result
                populates the cache for the retry.
        """
        if deadline is None and self.default_deadline is not None:
            deadline = self.default_deadline
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline(float(deadline), stage="serve:request")
        future = self.submit(total, partitioner, options, kind, objective)
        if deadline is None:
            return future.result()
        try:
            return future.result(timeout=deadline.remaining)
        except FutureTimeoutError:
            self.engine.counters.deadline_expired += 1
            raise DeadlineExceeded(
                f"plan request (total={total}) exceeded its "
                f"{deadline.budget:.3g}s deadline",
                budget=deadline.budget,
                elapsed=deadline.elapsed,
                stage=deadline.stage or "serve:request",
            ) from None

    def request_many(
        self,
        specs: Sequence[Tuple[int, Optional[str], Optional[Mapping[str, Any]]]],
    ) -> List[PlanResult]:
        """Serve a batch of ``(total, partitioner, options)`` specs.

        All specs are submitted before any result is awaited, so
        independent plans compute concurrently (bounded by the worker
        pool) and identical specs coalesce to one computation.  Results
        come back in spec order.
        """
        futures = [self.submit(*spec) for spec in specs]
        return [f.result() for f in futures]

    # -- closed-loop refinement --------------------------------------------

    def attach_feedback(self, controller) -> None:
        """Enable closed-loop refinement through ``controller``.

        The controller (:class:`repro.serve.feedback.FeedbackController`)
        must refine *this* server's model list -- it swaps
        :attr:`models` on epoch commits.  Once attached, the front ends
        route ``{"cmd": "feedback"}`` / ``POST /feedback`` to it and
        :meth:`stats` grows a ``"feedback"`` section.
        """
        self.feedback = controller

    # -- introspection and lifecycle --------------------------------------

    def inflight(self) -> int:
        """Number of distinct computations currently running."""
        with self._lock:
            return len(self._inflight)

    def ack_durable(self) -> Optional[bool]:
        """Whether acks issued now may claim durability.

        ``None`` when the cache makes no durability promise at all (a
        plain in-memory :class:`~repro.serve.cache.PlanCache`): the
        front ends omit the ``durable`` flag entirely.  ``False`` while
        a durable cache is degraded (memory-only mode, or inside the
        pre-trip failure window); ``True`` otherwise.
        """
        probe = getattr(self.engine.cache, "ack_durable", None)
        if not callable(probe):
            return None
        return bool(probe())

    def stats(self) -> Dict[str, Any]:
        """Consolidated snapshot: cache + serving + breaker counters."""
        out: Dict[str, Any] = {
            "cache": self.engine.cache.stats().to_dict(),
            "serve": self.engine.counters.to_dict(),
            "inflight": self.inflight(),
            "ranks": len(self.models),
        }
        if self.engine.breakers is not None:
            out["breakers"] = self.engine.breakers.to_dict()
        durability = getattr(self.engine.cache, "durability_stats", None)
        if callable(durability):
            out["durability"] = durability()
        if self.feedback is not None:
            out["feedback"] = self.feedback.stats()
        if self.replication is not None:
            out["replication"] = self.replication()
        return out

    def metrics(self) -> Dict[str, Any]:
        """The ``/metrics`` payload: existing counters under a versioned schema.

        Nothing here is newly measured -- this is the same cache, serving
        and breaker state :meth:`stats` snapshots, wrapped with a schema
        marker and uptime so fleet benchmarks and production scrapers can
        read one stable shape (documented in ``docs/API.md``).
        """
        out = self.stats()
        out["schema"] = "fupermod-metrics/4"
        out["uptime_s"] = time.monotonic() - self._started_at
        with self._lock:
            out["plans_by_kind"] = dict(self._plans_by_kind)
        return out

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting work and wait for in-flight computations.

        Returns True when everything finished inside ``timeout`` (or
        unconditionally with ``timeout=None``), False when computations
        were still running at expiry.  Safe to call more than once;
        :meth:`close` drains implicitly.
        """
        with self._lock:
            self._closed = True
            pending = list(self._inflight.values())
        deadline = (
            Deadline(timeout, stage="serve:drain") if timeout else None
        )
        for future in pending:
            try:
                if deadline is None:
                    future.result()
                else:
                    remaining = deadline.remaining
                    if remaining <= 0.0:
                        return False
                    future.result(timeout=remaining)
            except FutureTimeoutError:
                return False
            except Exception:
                # A failed computation still counts as drained; its error
                # already went to that request's caller.
                continue
        return True

    def close(self) -> None:
        """Stop accepting work and shut the worker pool down."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PlanServer":
        """Context-manager entry (no-op)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the pool."""
        self.close()
