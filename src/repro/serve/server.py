"""The plan server: concurrent request handling with single-flight.

:class:`PlanServer` binds a :class:`~repro.serve.engine.PlanEngine` to a
fixed model set and serves plan requests from many threads.  Its one job
beyond the engine's is **coalescing**: when N identical requests are in
flight at once, exactly one partitioner computation runs and all N
callers share its future.  The guarantee (tested by
``tests/test_serve_server.py``) is counter-based, not timing-based:
``counters.computations`` rises by one however many identical requests
race.

The server also exposes batch submission (:meth:`request_many`) for
callers that want a whole sweep of totals planned concurrently, and a
consolidated :meth:`stats` snapshot for the front ends.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.degrade.policy import DegradationPolicy
from repro.serve.cache import PlanCache
from repro.serve.engine import PlanEngine
from repro.serve.plan import PlanRequest, PlanResult


class PlanServer:
    """Serve partition plans for one model set, coalescing duplicates.

    Args:
        models: the fitted per-rank performance models to plan against.
        engine: optional preconfigured engine (cache/policy/partitioner
            wiring); a default cache-backed engine is built when omitted.
        cache: cache for the default engine (ignored when ``engine`` is
            given).
        policy: degradation policy for the default engine (ignored when
            ``engine`` is given).
        max_workers: worker-thread cap for concurrent computations.

    Use as a context manager, or call :meth:`close` when done, to stop
    the worker pool.
    """

    def __init__(
        self,
        models: Sequence,
        engine: Optional[PlanEngine] = None,
        cache: Optional[PlanCache] = None,
        policy: Optional[DegradationPolicy] = None,
        max_workers: int = 4,
    ) -> None:
        if not models:
            raise ValueError("a plan server needs at least one model")
        self.models = list(models)
        self.engine = (
            engine
            if engine is not None
            else PlanEngine(cache=cache, policy=policy)
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fupermod-serve"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, "Future[PlanResult]"] = {}
        self._closed = False

    # -- core serving ------------------------------------------------------

    def submit(
        self,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> "Future[PlanResult]":
        """Queue one request, returning its future.

        Single-flight: if an identical request (same content key) is
        already in flight, its future is returned and no new work starts;
        the duplicate is counted in ``counters.coalesced``.
        """
        request = self.engine.request(self.models, total, partitioner, options)
        with self._lock:
            if self._closed:
                raise RuntimeError("plan server is closed")
            existing = self._inflight.get(request.key)
            if existing is not None:
                self.engine.counters.coalesced += 1
                return existing
            future = self._pool.submit(self._run, request)
            self._inflight[request.key] = future
            return future

    def _run(self, request: PlanRequest) -> PlanResult:
        """Worker body: serve the request, then retire it from in-flight."""
        try:
            return self.engine.plan_request(self.models, request)
        finally:
            with self._lock:
                self._inflight.pop(request.key, None)

    def request(
        self,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> PlanResult:
        """Serve one request, blocking until the plan is ready."""
        return self.submit(total, partitioner, options).result()

    def request_many(
        self,
        specs: Sequence[Tuple[int, Optional[str], Optional[Mapping[str, Any]]]],
    ) -> List[PlanResult]:
        """Serve a batch of ``(total, partitioner, options)`` specs.

        All specs are submitted before any result is awaited, so
        independent plans compute concurrently (bounded by the worker
        pool) and identical specs coalesce to one computation.  Results
        come back in spec order.
        """
        futures = [self.submit(*spec) for spec in specs]
        return [f.result() for f in futures]

    # -- introspection and lifecycle --------------------------------------

    def inflight(self) -> int:
        """Number of distinct computations currently running."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, Any]:
        """Consolidated snapshot: cache counters + serving counters."""
        return {
            "cache": self.engine.cache.stats().to_dict(),
            "serve": self.engine.counters.to_dict(),
            "inflight": self.inflight(),
            "ranks": len(self.models),
        }

    def close(self) -> None:
        """Stop accepting work and shut the worker pool down."""
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "PlanServer":
        """Context-manager entry (no-op)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the pool."""
        self.close()
