"""Stable content fingerprints for models and plan requests.

Plans must be keyed by *semantic identity*, not object identity: two
`PerformanceModel` instances with the same fitted parameters describe the
same device, and a request against them for the same total and algorithm
must hit the same cache slot -- across threads, processes and restarts.

The fingerprint is a SHA-256 hash of a canonical encoding of the model's
:meth:`~repro.core.models.base.PerformanceModel.fingerprint_state` (its
fitted parameters) or of the request tuple ``(models fingerprint, total,
partitioner name, options)``.

Stability contract (documented in ``docs/API.md``):

* floats are encoded via ``repr``, which is exact for IEEE-754 doubles in
  Python 3 -- two floats fingerprint equal iff they are bit-equal (with
  ``-0.0`` distinguished from ``0.0`` and ``nan`` encoding stably);
* mapping keys are sorted, so option order never matters;
* the encoding is versioned (``_V`` prefix); any change to the canonical
  form bumps the version and thereby invalidates persisted caches instead
  of silently colliding with them.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping, Sequence

from repro.errors import FuPerModError

#: Canonical-encoding version, mixed into every digest.  Bump on any
#: change to :func:`canonical` so stale persisted caches miss cleanly.
FINGERPRINT_VERSION = "fp1"


def canonical(value: Any) -> str:
    """Canonical text encoding of a plain-Python value tree.

    Supports the types model states and request options are made of:
    ``None``, ``bool``, ``int``, ``float``, ``str``, sequences and
    mappings.  Anything else is a caller bug and raises
    :class:`~repro.errors.FuPerModError` (a fingerprint that silently
    falls back to ``repr`` of an arbitrary object would not be stable).
    """
    if value is None or isinstance(value, (bool, int)):
        return repr(value)
    if isinstance(value, float):
        # repr() of the builtin is the shortest round-trip form: bit-exact
        # and stable.  Normalise through float() so numpy.float64 (a float
        # subclass whose repr carries the type name) encodes identically.
        return repr(float(value))
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(canonical(v) for v in value) + "]"
    if isinstance(value, Mapping):
        items = sorted((str(k), v) for k, v in value.items())
        return "{" + ",".join(f"{k!r}:{canonical(v)}" for k, v in items) + "}"
    # numpy scalars quack like their Python counterparts via .item().
    item = getattr(value, "item", None)
    if callable(item):
        return canonical(item())
    raise FuPerModError(
        f"cannot canonicalise {type(value).__name__!r} for fingerprinting; "
        "use plain ints/floats/strings/sequences/mappings"
    )


def digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    h.update(FINGERPRINT_VERSION.encode("ascii"))
    for part in parts:
        h.update(b"\x1f")
        h.update(canonical(part).encode("utf-8"))
    return h.hexdigest()


def fingerprint_model(model) -> str:
    """Content hash of one fitted model.

    Delegates to the model's ``fingerprint_state`` hook (resolving the
    lazy fit), so equality of fingerprints means equality of the fitted
    parameters predictions actually use.
    """
    state = getattr(model, "fingerprint_state", None)
    if state is None:
        raise FuPerModError(
            f"{type(model).__name__} has no fingerprint_state hook; "
            "serving requires a fingerprintable PerformanceModel"
        )
    return digest("model", state())


def fingerprint_models(models: Sequence) -> str:
    """Content hash of an ordered model set (one per rank).

    Rank order matters -- swapping two devices' models is a different
    partitioning problem -- so the combined hash covers the sequence of
    per-model fingerprints in order.
    """
    return digest("models", [fingerprint_model(m) for m in models])


def fingerprint_request(
    models_fp: str,
    total: int,
    partitioner: str,
    options: Mapping[str, Any],
) -> str:
    """Content hash of a plan request (the cache key)."""
    return digest("request", models_fp, int(total), partitioner, options)


def fingerprint_objective_request(
    kind: str,
    models_fp: str,
    energy_fp: str,
    total: int,
    partitioner: str,
    options: Mapping[str, Any],
    objective: Mapping[str, Any],
) -> str:
    """Content hash of an objective-keyed plan request.

    Bi-objective plans are keyed on ``(models_fp, energy_fp, objective)``
    in addition to the classic request tuple: the plan ``kind`` and the
    energy-model fingerprint are mixed into the digest, so a ``"pareto"``
    plan can never collide with a ``"time"`` plan for the same speed
    models -- and a refit of the *power* side alone invalidates exactly
    the energy-keyed entries.  ``"time"`` requests keep the original
    :func:`fingerprint_request` key (bit-stable with every persisted
    cache and replica written before plan kinds existed).
    """
    if kind == "time":
        return fingerprint_request(models_fp, total, partitioner, options)
    return digest(
        "request", kind, models_fp, energy_fp, int(total), partitioner,
        options, dict(objective or {}),
    )


def affinity_key(
    total: int,
    partitioner: str,
    options: Mapping[str, Any],
) -> str:
    """The fleet routing key: the request *without* the model set.

    A fleet serves one model set, so including ``models_fp`` would add
    nothing to placement while coupling the consistent-hash ring to model
    refits (every refit would remap every key).  Router and workers both
    derive this key -- the router to pick the home shard, a worker to
    order its sibling-fill probes so the most likely holder is asked
    first.
    """
    return digest("affinity", int(total), partitioner, options or {})
