"""One fleet shard: a worker process serving plans over the asyncio front end.

Run as ``python -m repro.serve.worker`` (the fleet supervisor's child
process).  Each worker owns the full single-node serving stack -- its own
:class:`~repro.serve.engine.PlanEngine`,
:class:`~repro.serve.wal.DurablePlanCache` with a **per-shard** WAL, and
an :class:`~repro.serve.aio.AioFrontend` -- plus the fleet-internal
surface:

* ``GET /cache/<key>`` -- a pure cache peek for sibling fill and
  anti-entropy pulls: the plan's serialized form (plus the model
  fingerprint and request spec it was stored under) if this shard has
  it, 404 otherwise.  Never solves.
* ``POST /peers`` -- the supervisor's roster broadcast; installs the
  sibling-fill hook so local misses probe peers (in consistent-hash
  preference order for the request's affinity key) before solving cold,
  and feeds the replicator's peer roster (which doubles as its
  peer-recovery signal for hinted handoff).
* ``POST /replicate`` / ``GET /digest`` -- the replica write path and
  the anti-entropy digest (see :mod:`repro.serve.replicate`).
* ``POST /chaos`` / ``GET /chaos`` -- install / inspect a
  transport-fault plan (:mod:`repro.faults.net`) covering this worker's
  *outbound* links (sibling probes and replica pushes); the netsplit
  suite's seam for asymmetric partitions.
* a **READY line** on stdout once the port is bound:
  ``{"ready": true, "shard_id": ..., "port": ..., "durability": ...}``
  -- how the supervisor learns ephemeral ports (and the shard's
  durability mode) without a race.

Storage resilience: ``--durability-budget N`` (default 3) lets the
shard absorb journal-append failures and degrade to memory-only mode
instead of failing requests (``--no-durability-degrade`` restores the
fail-fast behaviour); ``--disk-fault-plan FILE`` splices a seeded
:class:`~repro.faults.disk.DiskFaultPlan` under the shard's journals --
the disk chaos suite's seam.  Durability-mode transitions log exactly
one stderr line each; ``GET /health`` and the READY line expose the
current mode.

``--slowdown MS`` injects a blocking per-request service time into the
event loop.  This is the fleet's simulated heterogeneity: the sleep
genuinely consumes the worker's serving capacity (its event loop can do
nothing else meanwhile), exactly as a slower processor would, so
routing and scaling results measured against it are real queueing
behaviour, not arithmetic.

Shutdown: SIGTERM/SIGINT drain in-flight solves and compact the WAL;
SIGKILL is the crash case the WAL recovers from on restart.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import model_factory
from repro.errors import FuPerModError, PersistenceError
from repro.faults.net import NetChaos, NetFaultPlan, wrap_shard_client
from repro.serve.aio import AioFrontend
from repro.serve.cache import PlanCache
from repro.serve.engine import PlanEngine
from repro.serve.fingerprint import affinity_key
from repro.serve.hashring import HashRing
from repro.serve.plan import PlanRequest, PlanResult
from repro.serve.replicate import DEFAULT_REPLICA_SET, PlanReplicator
from repro.serve.server import PlanServer
from repro.serve.shard import ShardClient
from repro.serve.wal import DurablePlanCache


def load_model_set(points_dir: Path, model: str = "piecewise") -> List[Any]:
    """Fitted per-rank models from a ``build`` output directory.

    The same loading path ``fupermod serve`` uses, factored out so the
    supervisor and every worker construct identical model sets (and
    therefore identical fingerprints -- the cache-identity invariant the
    whole fleet hangs off).
    """
    from repro.io.files import load_points

    files = sorted(Path(points_dir).glob("rank*.points"))
    if not files:
        raise FuPerModError(f"no rank*.points files in {points_dir}")
    factory = model_factory(model)
    models = []
    for rank, path in enumerate(files):
        try:
            points, _meta = load_points(path)
        except PersistenceError as exc:
            raise FuPerModError(
                f"cannot load points for rank {rank}: {exc}"
            ) from exc
        m = factory()
        m.update_many(points)
        models.append(m)
    return models


def load_energy_model_set(
    points_dir: Path, power_path: Path, model: str = "piecewise"
) -> List[Any]:
    """Fitted per-rank *energy* models from points plus power profiles.

    Each rank's measured timing points are priced in joules through its
    :class:`~repro.platform.power.PowerProfile` (rank order in the JSON
    file matches ``rank*.points`` order) and fitted with the energy
    family matching the speed-model choice
    (:func:`~repro.core.models.energy.energy_model_for`).  Used by both
    ``fupermod serve --power`` and the fleet workers, so every shard
    derives the identical energy fingerprint.
    """
    from repro.core.models.energy import energy_model_for
    from repro.io.files import load_points
    from repro.platform.power import energy_points_from_power, load_power_profiles

    files = sorted(Path(points_dir).glob("rank*.points"))
    if not files:
        raise FuPerModError(f"no rank*.points files in {points_dir}")
    profiles = load_power_profiles(power_path)
    if len(profiles) != len(files):
        raise FuPerModError(
            f"{len(profiles)} power profiles in {power_path} for "
            f"{len(files)} rank*.points files; they must pair up rank "
            f"for rank"
        )
    family = energy_model_for(model)
    energy_models = []
    for rank, (path, profile) in enumerate(zip(files, profiles)):
        try:
            points, _meta = load_points(path)
        except PersistenceError as exc:
            raise FuPerModError(
                f"cannot load points for rank {rank}: {exc}"
            ) from exc
        em = family()
        em.update_many(energy_points_from_power(points, profile))
        energy_models.append(em)
    return energy_models


class SiblingFill:
    """Peer-cache lookup hook for :class:`PlanEngine`.

    On a local miss the engine calls this with the
    :class:`~repro.serve.plan.PlanRequest`; peers are probed with a pure
    cache peek (``GET /cache/<key>``) in consistent-hash preference
    order for the request's affinity key -- the home shard, which the
    router sends that key to, is asked first.  A dead or slow peer is
    skipped (never fatal); at most ``max_probes`` peers are asked before
    giving up and solving cold.
    """

    def __init__(
        self,
        shard_id: str,
        max_probes: int = 2,
        timeout: float = 2.0,
        client_factory=None,
    ) -> None:
        self.shard_id = shard_id
        self.max_probes = max_probes
        self.timeout = timeout
        # The client seam the transport-fault layer wraps: probes to
        # peers go through whatever clients this factory builds.
        self._client_factory = client_factory or (
            lambda url, sid, tmo: ShardClient(url, sid, timeout=tmo)
        )
        self._lock = threading.Lock()
        self._clients: Dict[str, ShardClient] = {}
        self._ring = HashRing()

    def set_peers(self, peers: Sequence[Dict[str, str]]) -> int:
        """Install the roster (``[{"shard_id", "url"}, ...]``, self included)."""
        clients: Dict[str, ShardClient] = {}
        ring = HashRing()
        for peer in peers:
            sid, url = str(peer["shard_id"]), str(peer["url"])
            ring.add(sid)
            if sid != self.shard_id:
                clients[sid] = self._client_factory(url, sid, self.timeout)
        with self._lock:
            self._clients = clients
            self._ring = ring
        return len(clients)

    def peer_count(self) -> int:
        """Number of known peers (excluding this shard)."""
        with self._lock:
            return len(self._clients)

    def __call__(self, request: PlanRequest) -> Optional[PlanResult]:
        with self._lock:
            clients = dict(self._clients)
            ring = self._ring
        if not clients:
            return None
        key = affinity_key(request.total, request.partitioner,
                           request.option_dict())
        order = [s for s in ring.preference(key) if s in clients]
        probed = 0
        for sid in order:
            if probed >= self.max_probes:
                break
            probed += 1
            try:
                got = clients[sid].get_cached(request.key)
            except Exception:
                continue  # dead peer: the next preference may answer
            if got is not None:
                return got
        return None


def purge_unverified(cache: PlanCache, lineage) -> int:
    """Drop cached plans whose model fingerprint lineage cannot verify.

    The plan WAL and the lineage journal are separate files with
    separate torn tails: a crash can leave the cache holding plans
    stamped with a model epoch the (shorter) recovered lineage never
    reaches.  Serving such a plan would assert a provenance the lineage
    chain cannot back, so on worker recovery every entry whose
    ``models_fp`` is outside :meth:`ModelLineage.verified_fingerprints`
    is invalidated -- the fleet's replicas (or a cold solve against the
    recovered models) re-cover the key.  Returns how many were dropped.
    """
    verified = lineage.verified_fingerprints()
    purged = 0
    for item in cache.to_payload():
        if str(item["models_fp"]) not in verified:
            cache.invalidate(str(item["key"]))
            purged += 1
    return purged


def _extra_routes(
    server: PlanServer,
    sibling: SiblingFill,
    replicator: Optional[PlanReplicator] = None,
    chaos: Optional[NetChaos] = None,
):
    """The worker's fleet-internal routes for the asyncio front end."""

    def cache_peek(path: str, _payload) -> Tuple[int, Dict[str, Any]]:
        key = path.rsplit("/", 1)[-1]
        hit = server.engine.cache.export_entry(key)
        if hit is None:
            return 404, {"error": f"no cached plan for key {key[:16]}..."}
        result, models_fp, spec = hit
        return 200, {
            "plan": result.to_dict(),
            "models_fp": models_fp,
            "spec": list(spec) if spec is not None else None,
        }

    def set_peers(_path: str, payload) -> Tuple[int, Dict[str, Any]]:
        peers = (payload or {}).get("peers")
        if not isinstance(peers, list):
            return 400, {"error": "'peers' must be a list of shard records"}
        try:
            count = sibling.set_peers(peers)
            if replicator is not None:
                replicator.set_peers(peers)
        except (KeyError, TypeError, FuPerModError) as exc:
            return 400, {"error": f"bad peer roster: {exc}"}
        return 200, {"ok": True, "peers": count}

    routes = {
        "GET /cache/": cache_peek,
        "POST /peers": set_peers,
    }

    if replicator is not None:
        def replicate(_path: str, payload) -> Tuple[int, Dict[str, Any]]:
            return replicator.apply_replicate(payload)

        def digest(_path: str, _payload) -> Tuple[int, Dict[str, Any]]:
            return 200, replicator.digest()

        routes["POST /replicate"] = replicate
        routes["GET /digest"] = digest

    if chaos is not None:
        def set_chaos(_path: str, payload) -> Tuple[int, Dict[str, Any]]:
            try:
                plan = NetFaultPlan.from_dict(payload or {})
            except FuPerModError as exc:
                return 400, {"error": str(exc)}
            chaos.set_plan(plan)
            return 200, {"ok": True, "plan": plan.to_dict()}

        def get_chaos(_path: str, _payload) -> Tuple[int, Dict[str, Any]]:
            return 200, chaos.stats()

        routes["POST /chaos"] = set_chaos
        routes["GET /chaos"] = get_chaos

    return routes


def build_parser() -> argparse.ArgumentParser:
    """The worker's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker", description="one plan-fleet shard"
    )
    parser.add_argument("--points", required=True)
    parser.add_argument("--model", default="piecewise")
    parser.add_argument("--algorithm", default="geometric")
    parser.add_argument("--power", default=None,
                        help="per-rank power-profile JSON; enables "
                             "bi-objective (pareto) plans on this shard")
    parser.add_argument("--shard-id", default="shard0", dest="shard_id")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cache-file", default=None, dest="cache_file")
    parser.add_argument("--cache-size", type=int, default=512,
                        dest="cache_size")
    parser.add_argument("--ttl", type=float, default=None)
    parser.add_argument("--compact-every", type=int, default=256,
                        dest="compact_every")
    parser.add_argument("--durability-budget", type=int, default=3,
                        dest="durability_budget",
                        help="consecutive journal-append failures before "
                             "the cache degrades to memory-only mode")
    parser.add_argument("--no-durability-degrade", action="store_true",
                        dest="no_durability_degrade",
                        help="fail plan requests on journal errors instead "
                             "of degrading to memory-only mode")
    parser.add_argument("--probe-interval", type=float, default=1.0,
                        dest="probe_interval",
                        help="seconds between disk re-tests while degraded")
    parser.add_argument("--disk-fault-plan", default=None,
                        dest="disk_fault_plan", metavar="JSON",
                        help="seeded DiskFaultPlan file spliced under this "
                             "shard's journals (the disk chaos seam)")
    parser.add_argument("--threads", type=int, default=4,
                        help="solver threads for this shard")
    parser.add_argument("--max-pending", type=int, default=None,
                        dest="max_pending")
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--no-warm", action="store_true", dest="no_warm")
    parser.add_argument("--no-breaker", action="store_true", dest="no_breaker")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        dest="breaker_cooldown")
    parser.add_argument("--degrade", action="store_true")
    parser.add_argument("--sibling-probes", type=int, default=2,
                        dest="sibling_probes",
                        help="peers asked per miss before solving cold")
    parser.add_argument("--replicas", type=int,
                        default=DEFAULT_REPLICA_SET,
                        help="plan replica set size including the home "
                             "shard (1 disables replication)")
    parser.add_argument("--slowdown", type=float, default=0.0, metavar="MS",
                        help="simulated per-request service time in "
                             "milliseconds (models a slower shard)")
    parser.add_argument("--no-feedback", action="store_true",
                        dest="no_feedback",
                        help="serve without the closed-loop feedback path")
    parser.add_argument("--refit-every", type=int, default=16,
                        dest="refit_every",
                        help="accepted feedback reports between refits")
    parser.add_argument("--feedback-k", type=float, default=8.0,
                        dest="feedback_k",
                        help="outlier ratio bound of the feedback quarantine")
    parser.add_argument("--feedback-strikes", type=int, default=3,
                        dest="feedback_strikes",
                        help="consecutive rejections before a source is "
                             "quarantined")
    parser.add_argument("--feedback-rate", type=int, default=None,
                        dest="feedback_rate",
                        help="max feedback reports per source per minute "
                             "(default: unlimited)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Worker entry point: serve until SIGTERM/SIGINT."""
    args = build_parser().parse_args(argv)
    models = load_model_set(Path(args.points), args.model)

    opener = None
    if args.disk_fault_plan is not None:
        from repro.faults.disk import DiskFaultPlan, faulty_open

        opener = faulty_open(DiskFaultPlan.load(args.disk_fault_plan))

    durable = args.cache_file is not None
    if durable:
        def log_transition(mode: str, reason: str) -> None:
            # Exactly one line per durability-mode change (trip or
            # heal) -- never one per failed append.
            print(
                f"shard {args.shard_id}: durability {mode}: {reason}",
                file=sys.stderr, flush=True,
            )

        cache: PlanCache = DurablePlanCache(
            args.cache_file, compact_every=args.compact_every,
            capacity=args.cache_size, ttl=args.ttl,
            durability_budget=(
                None if args.no_durability_degrade
                else args.durability_budget
            ),
            probe_interval=args.probe_interval,
            opener=opener,
            on_transition=log_transition,
        )
        snapshot_entries, wal_ops = cache.recover()
        recovered = snapshot_entries + wal_ops
    else:
        cache = PlanCache(capacity=args.cache_size, ttl=args.ttl)
        recovered = 0

    policy = None
    if args.degrade:
        from repro.degrade import DegradationPolicy

        policy = DegradationPolicy()
    breakers = None
    if not args.no_breaker:
        from repro.serve.breaker import BreakerBoard

        breakers = BreakerBoard(cooldown=args.breaker_cooldown)

    # One fault controller covers every outbound link this worker owns
    # (sibling probes and replica pushes): the netsplit suite partitions
    # a worker by POSTing a plan to /chaos, and both transports see it.
    chaos = NetChaos()

    def chaotic_client(url: str, sid: str, tmo: float) -> ShardClient:
        return wrap_shard_client(
            ShardClient(url, sid, timeout=tmo), chaos, args.shard_id
        )

    sibling = SiblingFill(
        args.shard_id, max_probes=args.sibling_probes,
        client_factory=chaotic_client,
    )
    engine = PlanEngine(
        cache=cache, policy=policy, partitioner=args.algorithm,
        warm=not args.no_warm, breakers=breakers, sibling_fill=sibling,
    )
    server = PlanServer(
        models, engine=engine, max_workers=args.threads,
        max_pending=args.max_pending, default_deadline=args.deadline,
    )
    if args.power is not None:
        server.attach_energy(
            load_energy_model_set(Path(args.points), Path(args.power), args.model)
        )

    lineage = None
    if not args.no_feedback:
        from repro.serve.feedback import FeedbackController, FeedbackQuarantine
        from repro.serve.lineage import ModelLineage

        # The lineage journal sits beside the cache WAL: models and the
        # plans computed from them crash-recover as one coherent story.
        lineage_path = (
            str(args.cache_file) + ".lineage" if durable else None
        )
        lineage = ModelLineage(models, wal_path=lineage_path, opener=opener)
        lineage.recover()
        # Replay may have advanced past the snapshot's epoch: serve the
        # recovered models, not the freshly loaded ones.
        server.models = lineage.models
        # The plan WAL and lineage journal tear independently: drop any
        # recovered plan stamped with an epoch the lineage chain cannot
        # verify (see purge_unverified).
        purged = purge_unverified(cache, lineage)
        if purged:
            print(
                f"shard {args.shard_id}: purged {purged} cached plan(s) "
                "with unverifiable model fingerprints",
                file=sys.stderr,
            )
        server.attach_feedback(FeedbackController(
            server, lineage,
            quarantine=FeedbackQuarantine(
                k=args.feedback_k,
                max_strikes=args.feedback_strikes,
                rate_limit=args.feedback_rate,
            ),
            refit_every=args.refit_every,
        ))

    # Replica placement: every freshly committed plan is pushed to its
    # ring successors off the request path; failed pushes become durable
    # hints beside the cache WAL.  The replicator shares the chaos-
    # wrapped client factory, so partitions cut replication too.
    epoch_source = None
    if lineage is not None:
        epoch_source = lambda: (lineage.epoch, lineage.fingerprint)  # noqa: E731
    replicator = PlanReplicator(
        args.shard_id, cache, replicas=args.replicas,
        hint_path=(str(args.cache_file) + ".hints" if durable else None),
        client_factory=chaotic_client, epoch_source=epoch_source,
        opener=opener,
    )
    pending_hints = replicator.recover()
    engine.on_commit = replicator.plan_committed
    server.replication = replicator.stats

    plan_hook = None
    if args.slowdown > 0.0:
        delay = args.slowdown / 1000.0

        def plan_hook() -> None:
            # Deliberately blocks the event loop: this *is* the shard's
            # service time, so it must consume serving capacity.
            time.sleep(delay)

    frontend = AioFrontend(
        server, host=args.host, port=args.port,
        extra_routes=_extra_routes(server, sibling, replicator, chaos),
        plan_hook=plan_hook,
    )
    frontend.start()
    print(json.dumps({
        "ready": True,
        "shard_id": args.shard_id,
        "host": args.host,
        "port": frontend.port,
        "url": frontend.url,
        "recovered": recovered,
        "epoch": lineage.epoch if lineage is not None else None,
        "replicas": args.replicas,
        "pending_hints": pending_hints,
        "energy": server.energy_models is not None,
        "durability": (
            cache.durability_mode if durable else None  # type: ignore[union-attr]
        ),
    }), flush=True)

    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, _on_signal)
    stop.wait()

    frontend.stop()
    replicator.close()
    server.drain(timeout=10.0)
    server.close()
    if lineage is not None:
        lineage.close()
    if durable:
        cache.close()
    print(f"shard {args.shard_id}: clean shutdown", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
