"""One fleet shard: a worker process serving plans over the asyncio front end.

Run as ``python -m repro.serve.worker`` (the fleet supervisor's child
process).  Each worker owns the full single-node serving stack -- its own
:class:`~repro.serve.engine.PlanEngine`,
:class:`~repro.serve.wal.DurablePlanCache` with a **per-shard** WAL, and
an :class:`~repro.serve.aio.AioFrontend` -- plus the fleet-internal
surface:

* ``GET /cache/<key>`` -- a pure cache peek for sibling fill: the plan's
  serialized form if this shard has it, 404 otherwise.  Never solves.
* ``POST /peers`` -- the supervisor's roster broadcast; installs the
  sibling-fill hook so local misses probe peers (in consistent-hash
  preference order for the request's affinity key) before solving cold.
* a **READY line** on stdout once the port is bound:
  ``{"ready": true, "shard_id": ..., "port": ...}`` -- how the
  supervisor learns ephemeral ports without a race.

``--slowdown MS`` injects a blocking per-request service time into the
event loop.  This is the fleet's simulated heterogeneity: the sleep
genuinely consumes the worker's serving capacity (its event loop can do
nothing else meanwhile), exactly as a slower processor would, so
routing and scaling results measured against it are real queueing
behaviour, not arithmetic.

Shutdown: SIGTERM/SIGINT drain in-flight solves and compact the WAL;
SIGKILL is the crash case the WAL recovers from on restart.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import model_factory
from repro.errors import FuPerModError, PersistenceError
from repro.serve.aio import AioFrontend
from repro.serve.cache import PlanCache
from repro.serve.engine import PlanEngine
from repro.serve.fingerprint import affinity_key
from repro.serve.hashring import HashRing
from repro.serve.plan import PlanRequest, PlanResult
from repro.serve.server import PlanServer
from repro.serve.shard import ShardClient
from repro.serve.wal import DurablePlanCache


def load_model_set(points_dir: Path, model: str = "piecewise") -> List[Any]:
    """Fitted per-rank models from a ``build`` output directory.

    The same loading path ``fupermod serve`` uses, factored out so the
    supervisor and every worker construct identical model sets (and
    therefore identical fingerprints -- the cache-identity invariant the
    whole fleet hangs off).
    """
    from repro.io.files import load_points

    files = sorted(Path(points_dir).glob("rank*.points"))
    if not files:
        raise FuPerModError(f"no rank*.points files in {points_dir}")
    factory = model_factory(model)
    models = []
    for rank, path in enumerate(files):
        try:
            points, _meta = load_points(path)
        except PersistenceError as exc:
            raise FuPerModError(
                f"cannot load points for rank {rank}: {exc}"
            ) from exc
        m = factory()
        m.update_many(points)
        models.append(m)
    return models


class SiblingFill:
    """Peer-cache lookup hook for :class:`PlanEngine`.

    On a local miss the engine calls this with the
    :class:`~repro.serve.plan.PlanRequest`; peers are probed with a pure
    cache peek (``GET /cache/<key>``) in consistent-hash preference
    order for the request's affinity key -- the home shard, which the
    router sends that key to, is asked first.  A dead or slow peer is
    skipped (never fatal); at most ``max_probes`` peers are asked before
    giving up and solving cold.
    """

    def __init__(
        self, shard_id: str, max_probes: int = 2, timeout: float = 2.0
    ) -> None:
        self.shard_id = shard_id
        self.max_probes = max_probes
        self.timeout = timeout
        self._lock = threading.Lock()
        self._clients: Dict[str, ShardClient] = {}
        self._ring = HashRing()

    def set_peers(self, peers: Sequence[Dict[str, str]]) -> int:
        """Install the roster (``[{"shard_id", "url"}, ...]``, self included)."""
        clients: Dict[str, ShardClient] = {}
        ring = HashRing()
        for peer in peers:
            sid, url = str(peer["shard_id"]), str(peer["url"])
            ring.add(sid)
            if sid != self.shard_id:
                clients[sid] = ShardClient(url, sid, timeout=self.timeout)
        with self._lock:
            self._clients = clients
            self._ring = ring
        return len(clients)

    def peer_count(self) -> int:
        """Number of known peers (excluding this shard)."""
        with self._lock:
            return len(self._clients)

    def __call__(self, request: PlanRequest) -> Optional[PlanResult]:
        with self._lock:
            clients = dict(self._clients)
            ring = self._ring
        if not clients:
            return None
        key = affinity_key(request.total, request.partitioner,
                           request.option_dict())
        order = [s for s in ring.preference(key) if s in clients]
        probed = 0
        for sid in order:
            if probed >= self.max_probes:
                break
            probed += 1
            try:
                got = clients[sid].get_cached(request.key)
            except Exception:
                continue  # dead peer: the next preference may answer
            if got is not None:
                return got
        return None


def _extra_routes(server: PlanServer, sibling: SiblingFill):
    """The worker's fleet-internal routes for the asyncio front end."""

    def cache_peek(path: str, _payload) -> Tuple[int, Dict[str, Any]]:
        key = path.rsplit("/", 1)[-1]
        hit = server.engine.cache.peek(key)
        if hit is None:
            return 404, {"error": f"no cached plan for key {key[:16]}..."}
        return 200, {"plan": hit.to_dict()}

    def set_peers(_path: str, payload) -> Tuple[int, Dict[str, Any]]:
        peers = (payload or {}).get("peers")
        if not isinstance(peers, list):
            return 400, {"error": "'peers' must be a list of shard records"}
        try:
            count = sibling.set_peers(peers)
        except (KeyError, TypeError, FuPerModError) as exc:
            return 400, {"error": f"bad peer roster: {exc}"}
        return 200, {"ok": True, "peers": count}

    return {
        "GET /cache/": cache_peek,
        "POST /peers": set_peers,
    }


def build_parser() -> argparse.ArgumentParser:
    """The worker's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker", description="one plan-fleet shard"
    )
    parser.add_argument("--points", required=True)
    parser.add_argument("--model", default="piecewise")
    parser.add_argument("--algorithm", default="geometric")
    parser.add_argument("--shard-id", default="shard0", dest="shard_id")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--cache-file", default=None, dest="cache_file")
    parser.add_argument("--cache-size", type=int, default=512,
                        dest="cache_size")
    parser.add_argument("--ttl", type=float, default=None)
    parser.add_argument("--compact-every", type=int, default=256,
                        dest="compact_every")
    parser.add_argument("--threads", type=int, default=4,
                        help="solver threads for this shard")
    parser.add_argument("--max-pending", type=int, default=None,
                        dest="max_pending")
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--no-warm", action="store_true", dest="no_warm")
    parser.add_argument("--no-breaker", action="store_true", dest="no_breaker")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        dest="breaker_cooldown")
    parser.add_argument("--degrade", action="store_true")
    parser.add_argument("--sibling-probes", type=int, default=2,
                        dest="sibling_probes",
                        help="peers asked per miss before solving cold")
    parser.add_argument("--slowdown", type=float, default=0.0, metavar="MS",
                        help="simulated per-request service time in "
                             "milliseconds (models a slower shard)")
    parser.add_argument("--no-feedback", action="store_true",
                        dest="no_feedback",
                        help="serve without the closed-loop feedback path")
    parser.add_argument("--refit-every", type=int, default=16,
                        dest="refit_every",
                        help="accepted feedback reports between refits")
    parser.add_argument("--feedback-k", type=float, default=8.0,
                        dest="feedback_k",
                        help="outlier ratio bound of the feedback quarantine")
    parser.add_argument("--feedback-strikes", type=int, default=3,
                        dest="feedback_strikes",
                        help="consecutive rejections before a source is "
                             "quarantined")
    parser.add_argument("--feedback-rate", type=int, default=None,
                        dest="feedback_rate",
                        help="max feedback reports per source per minute "
                             "(default: unlimited)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Worker entry point: serve until SIGTERM/SIGINT."""
    args = build_parser().parse_args(argv)
    models = load_model_set(Path(args.points), args.model)

    durable = args.cache_file is not None
    if durable:
        cache: PlanCache = DurablePlanCache(
            args.cache_file, compact_every=args.compact_every,
            capacity=args.cache_size, ttl=args.ttl,
        )
        snapshot_entries, wal_ops = cache.recover()
        recovered = snapshot_entries + wal_ops
    else:
        cache = PlanCache(capacity=args.cache_size, ttl=args.ttl)
        recovered = 0

    policy = None
    if args.degrade:
        from repro.degrade import DegradationPolicy

        policy = DegradationPolicy()
    breakers = None
    if not args.no_breaker:
        from repro.serve.breaker import BreakerBoard

        breakers = BreakerBoard(cooldown=args.breaker_cooldown)

    sibling = SiblingFill(args.shard_id, max_probes=args.sibling_probes)
    engine = PlanEngine(
        cache=cache, policy=policy, partitioner=args.algorithm,
        warm=not args.no_warm, breakers=breakers, sibling_fill=sibling,
    )
    server = PlanServer(
        models, engine=engine, max_workers=args.threads,
        max_pending=args.max_pending, default_deadline=args.deadline,
    )

    lineage = None
    if not args.no_feedback:
        from repro.serve.feedback import FeedbackController, FeedbackQuarantine
        from repro.serve.lineage import ModelLineage

        # The lineage journal sits beside the cache WAL: models and the
        # plans computed from them crash-recover as one coherent story.
        lineage_path = (
            str(args.cache_file) + ".lineage" if durable else None
        )
        lineage = ModelLineage(models, wal_path=lineage_path)
        lineage.recover()
        # Replay may have advanced past the snapshot's epoch: serve the
        # recovered models, not the freshly loaded ones.
        server.models = lineage.models
        server.attach_feedback(FeedbackController(
            server, lineage,
            quarantine=FeedbackQuarantine(
                k=args.feedback_k,
                max_strikes=args.feedback_strikes,
                rate_limit=args.feedback_rate,
            ),
            refit_every=args.refit_every,
        ))

    plan_hook = None
    if args.slowdown > 0.0:
        delay = args.slowdown / 1000.0

        def plan_hook() -> None:
            # Deliberately blocks the event loop: this *is* the shard's
            # service time, so it must consume serving capacity.
            time.sleep(delay)

    frontend = AioFrontend(
        server, host=args.host, port=args.port,
        extra_routes=_extra_routes(server, sibling), plan_hook=plan_hook,
    )
    frontend.start()
    print(json.dumps({
        "ready": True,
        "shard_id": args.shard_id,
        "host": args.host,
        "port": frontend.port,
        "url": frontend.url,
        "recovered": recovered,
        "epoch": lineage.epoch if lineage is not None else None,
    }), flush=True)

    stop = threading.Event()

    def _on_signal(signum, _frame) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, _on_signal)
    stop.wait()

    frontend.stop()
    server.drain(timeout=10.0)
    server.close()
    if lineage is not None:
        lineage.close()
    if durable:
        cache.close()
    print(f"shard {args.shard_id}: clean shutdown", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
