"""A retrying client for the plan-service protocol.

:class:`PlanClient` wraps any transport that speaks the front-end
protocol (:mod:`repro.serve.frontend`) -- a callable taking the request
dict and returning the response dict -- and layers the client half of
the overload contract on top:

* **503 (shed / circuit open)** responses are retried with capped
  exponential backoff and *full jitter*: the sleep before attempt ``k``
  is uniform in ``[0, min(max_delay, base * 2**k)]``.  Jitter is the
  point -- a fleet of deterministic clients would all retry at the same
  instant and re-overload the server in lockstep.  When the response
  carries a ``retry_after`` hint the sleep is at least that long.
* **504 (deadline)** responses are retried the same way: the timed-out
  solve keeps running server-side and populates the cache, so the retry
  is usually a cache hit.
* **429 (feedback rate limit)** responses are retried identically, with
  the server's ``Retry-After`` hint as the backoff floor -- the window
  will free a slot, so patience succeeds where insistence is a strike.
* **400/403/404/413/500** responses are not retried -- the request (or
  the source's standing, for 403) is wrong, and resending cannot help.
  They raise immediately.

Retries exhausted, the final error is raised as its typed exception
(:class:`~repro.errors.ServiceOverloadError`,
:class:`~repro.errors.DeadlineExceeded`, ...), so callers keep one
except-clause vocabulary across in-process and remote serving.

The transport seam keeps this testable without sockets: tests drive the
client against :func:`~repro.serve.frontend.handle_request` directly (or
a scripted fake), and the sleep function and RNG are injectable.  An
HTTP transport for a live ``fupermod serve --http`` process is provided
by :func:`http_transport` (standard library only).
"""

from __future__ import annotations

import http.client
import json
import math
import random
import threading
import time
import urllib.parse
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    FeedbackRejected,
    FuPerModError,
    QuarantineError,
    ServiceOverloadError,
)
from repro.serve.plan import PlanResult

Transport = Callable[[Dict[str, Any]], Dict[str, Any]]

#: Response codes worth retrying: feedback rate limit (429), overload
#: (503) and deadline (504).
RETRYABLE_CODES = (429, 503, 504)


def _error_for(response: Mapping[str, Any]) -> FuPerModError:
    """The typed exception for a protocol error response."""
    code = response.get("code")
    message = str(response.get("error", "unknown service error"))
    retry_after = response.get("retry_after")
    if code == 503 and response.get("circuit_open"):
        return CircuitOpenError(message, retry_after=retry_after)
    if code == 503:
        return ServiceOverloadError(
            message, retry_after=retry_after,
            pending=int(response.get("pending", -1)),
        )
    if code == 504:
        return DeadlineExceeded(message, stage="serve:client")
    if code == 403 and response.get("quarantined"):
        return QuarantineError(message, source=str(response.get("source", "")))
    if code == 429 or "rejected" in response:
        return FeedbackRejected(
            message,
            reasons=tuple(response.get("rejected", ())),
            source=str(response.get("source", "")),
            retry_after=retry_after,
        )
    return FuPerModError(message)


class PlanClient:
    """Protocol client with capped exponential backoff and full jitter.

    Args:
        transport: callable mapping a request dict to a response dict
            (e.g. :func:`http_transport` output, or
            ``lambda p: handle_request(server, p)`` for in-process use).
        max_attempts: total tries per request (first attempt included).
        base_delay: backoff base in seconds; attempt ``k`` (0-based
            retry) sleeps uniform in ``[0, min(max_delay, base * 2**k)]``.
        max_delay: cap on any single sleep.
        rng: seeded generator for the jitter draw (deterministic tests).
        sleep: injectable sleep function (tests pass a recorder).
    """

    def __init__(
        self,
        transport: Transport,
        max_attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        rng: Optional[np.random.Generator] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_attempts <= 0:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        self.transport = transport
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.rng = rng if rng is not None else np.random.default_rng()
        self.sleep = sleep
        self.retries = 0
        # Plans acked with "durable": false -- served correctly, but the
        # server's journal could not persist them (degradation ladder).
        self.non_durable_acks = 0

    def _backoff(self, attempt: int, retry_after: Optional[float]) -> float:
        """The sleep before retry ``attempt`` (0-based)."""
        ceiling = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        delay = float(self.rng.uniform(0.0, ceiling))
        if retry_after is not None:
            # The server's hint is a floor, not a suggestion.
            delay = max(delay, float(retry_after))
        return delay

    def call(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one protocol request, retrying retryable errors.

        Returns the successful response dict; raises the typed exception
        for the final error once retries are exhausted (non-retryable
        errors raise immediately).
        """
        last: Dict[str, Any] = {}
        for attempt in range(self.max_attempts):
            response = self.transport(payload)
            if "error" not in response:
                return response
            last = response
            if response.get("code") not in RETRYABLE_CODES:
                raise _error_for(response)
            if attempt + 1 < self.max_attempts:
                self.retries += 1
                self.sleep(self._backoff(attempt, response.get("retry_after")))
        raise _error_for(last)

    def plan(
        self,
        total: int,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
        deadline: Optional[float] = None,
        objective: Optional[str] = None,
        alpha: Optional[float] = None,
        energy_cap: Optional[float] = None,
        npoints: Optional[int] = None,
    ) -> PlanResult:
        """Request one plan, returning it as a :class:`PlanResult`.

        Bi-objective plans: pass ``objective="pareto"`` plus optionally
        ``alpha`` (time weight in ``[0, 1]``), ``energy_cap`` (a joule
        budget) and ``npoints`` (front resolution).  These are validated
        *client-side* -- a malformed objective raises :class:`ValueError`
        naming the field before any bytes hit the wire, so a typo'd sweep
        script fails in microseconds instead of burning a server round
        trip per point.

        Durability: the returned result's ``durable`` attribute is
        ``False`` when the serving shard's cache is running memory-only
        (its disk failure budget is exhausted) -- the plan is correct
        but may not survive a crash of that shard.  Such acks are
        tallied in :attr:`non_durable_acks`.
        """
        if alpha is not None:
            a = float(alpha)
            if math.isnan(a) or not 0.0 <= a <= 1.0:
                raise ValueError(
                    f"alpha must be in [0, 1], got {alpha!r}"
                )
        if energy_cap is not None:
            cap = float(energy_cap)
            if not math.isfinite(cap) or not cap > 0.0:
                raise ValueError(
                    f"energy_cap must be a positive finite number of "
                    f"joules, got {energy_cap!r}"
                )
        if npoints is not None and (
            not isinstance(npoints, int) or isinstance(npoints, bool)
            or npoints < 2
        ):
            raise ValueError(
                f"npoints must be an integer >= 2, got {npoints!r}"
            )
        if objective is None and (
            alpha is not None or energy_cap is not None or npoints is not None
        ):
            raise ValueError(
                "alpha/energy_cap/npoints require objective='pareto'"
            )
        payload: Dict[str, Any] = {"cmd": "plan", "total": int(total)}
        if partitioner is not None:
            payload["partitioner"] = partitioner
        if options:
            payload["options"] = dict(options)
        if deadline is not None:
            payload["deadline"] = deadline
        if objective is not None:
            payload["objective"] = objective
        if alpha is not None:
            payload["alpha"] = float(alpha)
        if energy_cap is not None:
            payload["energy_cap"] = float(energy_cap)
        if npoints is not None:
            payload["npoints"] = npoints
        result = PlanResult.from_dict(self.call(payload))
        if not result.durable:
            self.non_durable_acks += 1
        return result

    def feedback(
        self,
        source: str,
        total: int,
        sizes,
        times,
        partitioner: Optional[str] = None,
        options: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Report actual per-rank timings into the closed loop.

        Same retry policy as :meth:`plan`: 429 (rate limit) retries with
        the server's ``Retry-After`` as the backoff floor; content
        rejections (400, :class:`~repro.errors.FeedbackRejected` with
        ``retry_after`` unset) and quarantine (403,
        :class:`~repro.errors.QuarantineError`) raise immediately --
        resending a rejected report is a strike, not a retry.

        Returns the acceptance response
        (``{"status": "accepted", "epoch", "buffered", "refit"}``).
        """
        payload: Dict[str, Any] = {
            "cmd": "feedback",
            "source": str(source),
            "total": int(total),
            "sizes": [int(s) for s in sizes],
            "times": [float(t) for t in times],
        }
        if partitioner is not None:
            payload["partitioner"] = partitioner
        if options:
            payload["options"] = dict(options)
        return self.call(payload)

    def stats(self) -> Dict[str, Any]:
        """The server's consolidated counter snapshot."""
        return self.call({"cmd": "stats"})["stats"]

    def metrics(self) -> Dict[str, Any]:
        """The server's ``/metrics`` snapshot (versioned counter schema)."""
        return self.call({"cmd": "metrics"})["metrics"]


class KeepAliveTransport:
    """HTTP transport reusing one persistent connection per thread.

    The pre-fleet transport opened (and tore down) a TCP connection per
    request, which dominated the cache-hit round trip.  Both front ends
    now speak HTTP/1.1 keep-alive, so this transport holds a
    :class:`http.client.HTTPConnection` in thread-local storage and
    reuses it across calls; a request that fails on a kept-alive
    connection (server restarted, idle timeout) is retried exactly once
    on a fresh connection before the error propagates.  Connections are
    per-thread because ``http.client`` connections are not thread-safe
    and :class:`PlanClient` callers drive benches from thread pools.

    HTTP error responses (4xx/5xx) are decoded back into protocol error
    dicts -- with ``code`` set from the status and ``retry_after``
    recovered from the ``Retry-After`` header when the body lacks it --
    so the client's retry logic is transport-agnostic.

    A request that fails on a connection retries on a fresh one with
    bounded, jittered backoff (uniform in ``[0, backoff_base * 2**k]``
    before retry ``k``, up to ``max_attempts`` tries) rather than the
    old single blind retry, so a briefly-restarting server is ridden
    out without every client in a fleet re-knocking at the same
    instant.  A ``deadline`` field in the payload caps the attempt loop
    and propagates to the server as the ``X-Fupermod-Deadline``
    per-hop header.

    ``connections_opened`` counts real TCP connects across all threads
    (the keep-alive tests assert it stays at one per thread however many
    requests flow); ``reconnects`` counts retry attempts after failures
    (the backoff witness -- zero against a healthy server).
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        max_attempts: int = 3,
        backoff_base: float = 0.02,
        rng: Optional["random.Random"] = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(base_url.rstrip("/"))
        if parsed.scheme not in ("http", ""):
            raise FuPerModError(
                f"http transport needs an http:// URL, got {base_url!r}"
            )
        if not parsed.hostname:
            raise FuPerModError(f"no host in transport URL {base_url!r}")
        if max_attempts <= 0:
            raise FuPerModError(
                f"max_attempts must be positive, got {max_attempts}"
            )
        self.host = parsed.hostname
        self.port = parsed.port if parsed.port is not None else 80
        self.prefix = parsed.path.rstrip("/")
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.rng = rng if rng is not None else random.Random()
        self.connections_opened = 0
        self.reconnects = 0
        self._count_lock = threading.Lock()
        self._local = threading.local()

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
            with self._count_lock:
                self.connections_opened += 1
        return conn

    def _drop(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._drop()

    def __call__(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        cmd = payload.get("cmd", "plan")
        if cmd in ("stats", "metrics"):
            method, path, body = "GET", f"/{cmd}", None
        else:
            method = "POST"
            path = "/feedback" if cmd == "feedback" else "/plan"
            body = json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        deadline = payload.get("deadline")
        budget = float(deadline) if deadline is not None else None
        start = time.monotonic()
        last_error: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            remaining: Optional[float] = None
            if budget is not None:
                remaining = budget - (time.monotonic() - start)
                if remaining <= 0.0:
                    break
                headers["X-Fupermod-Deadline"] = f"{remaining:.6f}"
            if attempt:
                # A stale kept-alive connection (server restarted, idle
                # close) or a transient fault: back off with full jitter
                # before the fresh-connection retry, bounded by the
                # remaining deadline.
                with self._count_lock:
                    self.reconnects += 1
                delay = self.rng.uniform(
                    0.0, self.backoff_base * (2.0 ** (attempt - 1))
                )
                if remaining is not None:
                    delay = min(delay, max(0.0, remaining))
                if delay > 0.0:
                    time.sleep(delay)
            conn = self._connection()
            try:
                conn.request(method, self.prefix + path, body=body,
                             headers=headers)
                reply = conn.getresponse()
                data = reply.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._drop()
                last_error = exc
                continue
            if reply.will_close:
                self._drop()
            try:
                decoded = json.loads(data.decode("utf-8"))
                if not isinstance(decoded, dict):
                    raise ValueError("expected a JSON object")
            except (UnicodeDecodeError, ValueError):
                decoded = {"error": f"HTTP {reply.status}"}
            if reply.status >= 400:
                decoded.setdefault("error", f"HTTP {reply.status}")
                decoded.setdefault("code", reply.status)
                retry_after = reply.headers.get("Retry-After")
                if retry_after is not None and "retry_after" not in decoded:
                    try:
                        decoded["retry_after"] = float(retry_after)
                    except ValueError:
                        pass
            return decoded
        if last_error is not None:
            raise last_error
        return {
            "error": "deadline exhausted before reaching the server",
            "code": 504,
        }


def http_transport(base_url: str, timeout: float = 30.0) -> Transport:
    """A :class:`PlanClient` transport for a live HTTP front end.

    Returns a :class:`KeepAliveTransport`: requests reuse one persistent
    HTTP/1.1 connection per calling thread instead of paying a TCP
    handshake each (the transport object exposes ``connections_opened``
    and ``close()``).
    """
    return KeepAliveTransport(base_url, timeout=timeout)
