"""Closed-loop model refinement behind an adversarial-feedback quarantine.

The serving stack's models were fitted offline; running apps know the
*actual* per-rank timings.  This module closes the loop -- apps report
timings, accepted points fold back into the models -- while treating
every report as **untrusted input**, because a single lying or
NaN-emitting rank must never poison the models every cached plan depends
on.  The trust boundary has three layers:

1. **Schema validation** (:meth:`FeedbackReport.from_payload`): a payload
   that is not even a well-formed report (missing fields, wrong types,
   mismatched lengths) raises a bare :class:`~repro.errors.FuPerModError`
   -- the front ends map it to HTTP 400 -- and never reaches scoring.
2. **Quarantine scoring** (:class:`FeedbackQuarantine`): a well-formed
   report is scored against the *current* models.  Non-finite or
   non-positive timings, timings outside the ``k``-ratio outlier gate,
   impossible size vectors and rate-limit violations reject the whole
   report with :class:`~repro.errors.FeedbackRejected` (reasons named),
   and every rejection is recorded -- source and all -- in a
   :class:`QuarantineReport` (the :mod:`repro.faults` reporting idiom).
   Sources that keep offending exhaust a strike budget and are
   quarantined outright: later reports get
   :class:`~repro.errors.QuarantineError` (HTTP 403) without scoring.
3. **The regression gate** (:meth:`FeedbackController._refit`): even
   *accepted* feedback only reaches served plans through a refit that
   must predict a held-back window of accepted reports at least as well
   as the parent models.  A refit that predicts worse rolls the lineage
   back -- counted, journalled, surfaced in ``/metrics``.

The outlier gate deliberately uses a **fixed ratio bound** ``k`` against
the current model's prediction (accept ``t`` iff ``pred/k <= t <=
k*pred``) rather than a dispersion learned from accepted residuals: a
learned sigma is itself a poisoning target (feed plausible-but-drifting
reports until the gate widens, then strike), while the fixed bound admits
honest platform drift (2-3x) and rejects the adversarial regime (orders
of magnitude, NaN) without being trainable by the adversary.

Plan consistency across refits is *staleness-bounded*, documented in
``docs/API.md``: served plans change only when the lineage commits an
epoch, rejected feedback never advances the epoch (so adversarial storms
leave served plans bit-identical), and after a commit the stale entries
are invalidated synchronously before the commit call returns -- a plan
observed after an epoch commit lags accepted feedback by at most the
``refit_every`` reports still buffered, never a whole epoch.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import (
    FeedbackRejected,
    FuPerModError,
    ModelError,
    QuarantineError,
)
from repro.serve.lineage import ModelLineage

#: Rejection-reason slugs, in the order checks run.
REASONS = ("rate-limit", "impossible-sizes", "non-finite", "negative", "outlier")


@dataclass(frozen=True)
class FeedbackReport:
    """One app's actual per-rank timings for a plan it executed.

    Attributes:
        source: reporting source's identity (app instance, job id, ...).
        total: the problem size the plan distributed.
        sizes: per-rank sizes the app actually ran with.
        times: per-rank kernel seconds actually observed.
        partitioner: the partitioner the plan came from (provenance and
            fleet routing; not scored).
        options: partitioner options (same role).
    """

    source: str
    total: int
    sizes: Tuple[int, ...]
    times: Tuple[float, ...]
    partitioner: Optional[str] = None
    options: Optional[Mapping[str, Any]] = None

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "FeedbackReport":
        """Parse and schema-validate a wire payload.

        Raises a *bare* :class:`~repro.errors.FuPerModError` (the front
        ends' 400 contract) on anything structurally wrong.  Content
        checks -- finiteness, outliers, size plausibility -- belong to
        the quarantine, not here; NaN *parses* as a float and crosses
        this layer deliberately, so the quarantine can name and count it.
        """
        if not isinstance(payload, Mapping):
            raise FuPerModError(
                f"feedback payload must be an object, got {type(payload).__name__}"
            )
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise FuPerModError(
                "feedback needs a non-empty string 'source'"
            )
        total = payload.get("total")
        if isinstance(total, bool) or not isinstance(total, int):
            raise FuPerModError(
                f"feedback 'total' must be an integer, got {total!r}"
            )
        sizes = payload.get("sizes")
        times = payload.get("times")
        if not isinstance(sizes, (list, tuple)) or not sizes:
            raise FuPerModError("feedback needs a non-empty 'sizes' array")
        if not isinstance(times, (list, tuple)) or not times:
            raise FuPerModError("feedback needs a non-empty 'times' array")
        if len(sizes) != len(times):
            raise FuPerModError(
                f"feedback has {len(sizes)} sizes but {len(times)} times"
            )
        clean_sizes: List[int] = []
        for value in sizes:
            if isinstance(value, bool) or not isinstance(value, int):
                raise FuPerModError(
                    f"feedback sizes must be integers, got {value!r}"
                )
            clean_sizes.append(value)
        clean_times: List[float] = []
        for value in times:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise FuPerModError(
                    f"feedback times must be numbers, got {value!r}"
                )
            clean_times.append(float(value))
        partitioner = payload.get("partitioner")
        if partitioner is not None and not isinstance(partitioner, str):
            raise FuPerModError(
                f"feedback 'partitioner' must be a string, got {partitioner!r}"
            )
        options = payload.get("options")
        if options is not None and not isinstance(options, Mapping):
            raise FuPerModError(
                f"feedback 'options' must be an object, got {options!r}"
            )
        return cls(
            source=source,
            total=total,
            sizes=tuple(clean_sizes),
            times=tuple(clean_times),
            partitioner=partitioner,
            options=dict(options) if options is not None else None,
        )


@dataclass(frozen=True)
class FeedbackRejection:
    """One report the quarantine refused (the audit-trail unit).

    Attributes:
        source: who sent it.
        reasons: rejection-reason slugs, in check order.
        detail: human-readable specifics (ranks, values, limits).
    """

    source: str
    reasons: Tuple[str, ...]
    detail: str = ""


@dataclass(frozen=True)
class SourceQuarantined:
    """A source excluded from the feedback loop instead of poisoning it.

    Attributes:
        source: the quarantined source's identity.
        strikes: consecutive rejections accumulated at the decision.
        reason: the final straw (last rejection's reason slugs, joined).
    """

    source: str
    strikes: int
    reason: str


@dataclass
class QuarantineReport:
    """Aggregated audit trail of the feedback trust boundary.

    Mirrors :class:`~repro.faults.ResilienceReport`: nothing is hidden --
    every rejection becomes a :class:`FeedbackRejection` naming its
    source, every exclusion a :class:`SourceQuarantined` -- and the
    report is built from deterministic quantities only, so a seeded
    :class:`~repro.faults.FeedbackStorm` replays to a bit-identical
    :meth:`to_dict`.

    Attributes:
        rejections: every refused report, in arrival order.
        quarantined: sources excluded from the loop.
        accepted: reports that passed every check.
    """

    rejections: List[FeedbackRejection] = field(default_factory=list)
    quarantined: List[SourceQuarantined] = field(default_factory=list)
    accepted: int = 0

    def record(
        self, source: str, reasons: Sequence[str], detail: str = ""
    ) -> None:
        """Append one rejection."""
        self.rejections.append(
            FeedbackRejection(
                source=source, reasons=tuple(reasons), detail=detail
            )
        )

    def quarantine(self, source: str, strikes: int, reason: str) -> None:
        """Mark ``source`` as quarantined (idempotent)."""
        if self.is_quarantined(source):
            return
        self.quarantined.append(
            SourceQuarantined(source=source, strikes=strikes, reason=reason)
        )

    def is_quarantined(self, source: str) -> bool:
        """Whether ``source`` has been quarantined."""
        return any(q.source == source for q in self.quarantined)

    @property
    def sources_named(self) -> List[str]:
        """Every source with at least one rejection, sorted."""
        return sorted({r.source for r in self.rejections})

    def to_dict(self) -> Dict[str, Any]:
        """Fully deterministic representation, for equality checks and JSON."""
        return {
            "rejections": [
                {"source": r.source, "reasons": list(r.reasons),
                 "detail": r.detail}
                for r in self.rejections
            ],
            "quarantined": [
                {"source": q.source, "strikes": q.strikes, "reason": q.reason}
                for q in self.quarantined
            ],
            "accepted": self.accepted,
        }

    def summary(self) -> str:
        """One-paragraph human summary for CLI output."""
        lines = [
            f"feedback quarantine: {self.accepted} accepted, "
            f"{len(self.rejections)} rejected, "
            f"{len(self.quarantined)} sources quarantined"
        ]
        for q in self.quarantined:
            lines.append(
                f"  quarantined {q.source!r}: {q.reason} "
                f"after {q.strikes} strikes"
            )
        return "\n".join(lines)


class FeedbackQuarantine:
    """Per-source trust scoring for feedback reports.

    Args:
        k: the outlier ratio bound -- a reported time ``t`` for a rank
            whose current model predicts ``pred`` is accepted iff
            ``pred/k <= t <= k*pred``.  This is the k-sigma gate with the
            dispersion pinned to the model's own prediction scale
            (deliberately not learned from residuals; see the module
            docstring).
        max_strikes: consecutive rejections before a source is
            quarantined outright.  An accepted report resets the streak.
        rate_limit: maximum reports per source per ``rate_window``
            seconds (``None`` disables rate limiting).
        rate_window: the rate-limit window in seconds.
        clock: monotonic-seconds source, injectable for deterministic
            rate-limit tests.

    Not internally locked: :class:`FeedbackController` serialises calls
    under its own lock, keeping streak and rate bookkeeping ordered with
    the accept/refit pipeline.
    """

    def __init__(
        self,
        k: float = 8.0,
        max_strikes: int = 3,
        rate_limit: Optional[int] = None,
        rate_window: float = 60.0,
        clock=None,
    ) -> None:
        if k <= 1.0:
            raise ValueError(f"outlier bound k must exceed 1, got {k}")
        if max_strikes <= 0:
            raise ValueError(f"max_strikes must be positive, got {max_strikes}")
        if rate_limit is not None and rate_limit <= 0:
            raise ValueError(f"rate_limit must be positive, got {rate_limit}")
        if rate_window <= 0:
            raise ValueError(f"rate_window must be positive, got {rate_window}")
        self.k = k
        self.max_strikes = max_strikes
        self.rate_limit = rate_limit
        self.rate_window = rate_window
        if clock is None:
            import time

            clock = time.monotonic
        self._clock = clock
        self.report = QuarantineReport()
        self._strikes: Dict[str, int] = {}
        self._arrivals: Dict[str, Deque[float]] = {}

    # -- individual checks -------------------------------------------------

    def _check_rate(self, source: str) -> Optional[float]:
        """Record an arrival; seconds until a slot frees if over limit."""
        if self.rate_limit is None:
            return None
        now = self._clock()
        window = self._arrivals.setdefault(source, deque())
        while window and now - window[0] > self.rate_window:
            window.popleft()
        if len(window) >= self.rate_limit:
            return max(0.0, self.rate_window - (now - window[0]))
        window.append(now)
        return None

    def _score_content(
        self, report: FeedbackReport, models: Sequence
    ) -> Tuple[List[str], List[str]]:
        """Content reasons and per-rank details for one report."""
        reasons: List[str] = []
        details: List[str] = []
        if (
            len(report.sizes) != len(models)
            or any(size < 1 for size in report.sizes)
            or sum(report.sizes) != report.total
        ):
            reasons.append("impossible-sizes")
            details.append(
                f"sizes {list(report.sizes)} cannot come from a plan for "
                f"total={report.total} over {len(models)} ranks"
            )
            return reasons, details
        for rank, (size, t) in enumerate(zip(report.sizes, report.times)):
            if not math.isfinite(t):
                if "non-finite" not in reasons:
                    reasons.append("non-finite")
                details.append(f"rank {rank}: non-finite time {t!r}")
                continue
            if t <= 0.0:
                if "negative" not in reasons:
                    reasons.append("negative")
                details.append(f"rank {rank}: non-positive time {t!r}")
                continue
            pred = self._predict(models[rank], size)
            if pred is None:
                continue
            if not (pred / self.k <= t <= pred * self.k):
                if "outlier" not in reasons:
                    reasons.append("outlier")
                details.append(
                    f"rank {rank}: time {t!r} vs predicted {pred!r} "
                    f"breaks the k={self.k:g} ratio gate"
                )
        return reasons, details

    @staticmethod
    def _predict(model: Any, size: int) -> Optional[float]:
        """The model's prediction at ``size``, or None when unscorable.

        A model that cannot predict (not enough points, size outside any
        fittable range) yields no gate for that rank -- the finiteness
        and positivity checks still apply, and sizes were already bounded
        by the impossible-sizes check, so this is not an adversarial
        bypass, just honesty about what the model knows.
        """
        try:
            pred = float(model.time(float(size)))
        except (ModelError, FuPerModError, ValueError, OverflowError):
            return None
        if not math.isfinite(pred) or pred <= 0.0:
            return None
        return pred

    # -- the boundary ------------------------------------------------------

    def admit(self, report: FeedbackReport, models: Sequence) -> None:
        """Pass ``report`` through the trust boundary, or raise.

        Check order: standing quarantine (403), rate limit (429), then
        content scoring (400).  Rejection is whole-report atomic -- one
        offending rank refuses the lot, because partial acceptance would
        let an adversary smuggle subtle poison alongside plausible
        values.  Every rejection is recorded in :attr:`report` and
        counts a strike; :attr:`max_strikes` consecutive strikes
        quarantine the source.

        Raises:
            QuarantineError: the source is quarantined (before or by
                this report).
            FeedbackRejected: the report failed rate limiting
                (``retry_after`` set) or content scoring.
        """
        source = report.source
        if self.report.is_quarantined(source):
            raise QuarantineError(
                f"source {source!r} is quarantined; report refused",
                source=source,
            )
        retry_after = self._check_rate(source)
        if retry_after is not None:
            self._strike(source, ("rate-limit",),
                         f"over {self.rate_limit}/{self.rate_window:g}s")
            raise FeedbackRejected(
                f"source {source!r} exceeded {self.rate_limit} reports per "
                f"{self.rate_window:g}s",
                reasons=("rate-limit",),
                source=source,
                retry_after=retry_after,
            )
        reasons, details = self._score_content(report, models)
        if reasons:
            self._strike(source, tuple(reasons), "; ".join(details))
            raise FeedbackRejected(
                f"report from {source!r} rejected: {'; '.join(details)}",
                reasons=tuple(reasons),
                source=source,
            )
        self._strikes.pop(source, None)
        self.report.accepted += 1

    def _strike(
        self, source: str, reasons: Tuple[str, ...], detail: str
    ) -> None:
        self.report.record(source, reasons, detail)
        strikes = self._strikes.get(source, 0) + 1
        self._strikes[source] = strikes
        if strikes >= self.max_strikes:
            self.report.quarantine(source, strikes, ",".join(reasons))

    def quarantined_sources(self) -> List[str]:
        """Sorted identities of quarantined sources."""
        return sorted(q.source for q in self.report.quarantined)


@dataclass
class FeedbackCounters:
    """Mutable feedback-loop counters, surfaced in ``/metrics``.

    Attributes:
        accepted: reports that passed the trust boundary.
        rejected: rejections keyed by reason slug (a multi-reason
            rejection counts once per reason).
        malformed: payloads refused at the schema layer (HTTP 400 before
            scoring; not attributable to a source).
        refits: lineage epochs committed from accepted feedback.
        rollbacks: refits the regression gate refused.
        refit_failures: refit attempts that failed to fit at all.
        invalidated_plans: cache entries dropped because their model
            fingerprint was superseded by an epoch commit.
        resolved_plans: invalidated plans re-solved against the child
            models off the request path.
    """

    accepted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    malformed: int = 0
    refits: int = 0
    rollbacks: int = 0
    refit_failures: int = 0
    invalidated_plans: int = 0
    resolved_plans: int = 0

    def count_rejection(self, reasons: Sequence[str]) -> None:
        """Bump the per-reason counters for one rejection."""
        for reason in reasons:
            self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (stable key order)."""
        return {
            "accepted": self.accepted,
            "rejected": {key: self.rejected[key] for key in sorted(self.rejected)},
            "malformed": self.malformed,
            "refits": self.refits,
            "rollbacks": self.rollbacks,
            "refit_failures": self.refit_failures,
            "invalidated_plans": self.invalidated_plans,
            "resolved_plans": self.resolved_plans,
        }


class FeedbackController:
    """The closed loop: quarantine -> buffer -> gated refit -> re-solve.

    Wires a :class:`FeedbackQuarantine` and a
    :class:`~repro.serve.lineage.ModelLineage` to a running
    :class:`~repro.serve.server.PlanServer`.  :meth:`handle` is the
    single entry point the front ends dispatch ``{"cmd": "feedback"}``
    to; its pipeline per report:

    1. schema-parse (:meth:`FeedbackReport.from_payload`, 400 on garbage);
    2. quarantine :meth:`~FeedbackQuarantine.admit` (403/429/400);
    3. buffer the accepted per-rank points;
    4. every ``refit_every`` accepted reports, attempt a refit: hold back
       the newest ``holdback_frac`` of the buffer, clone-and-extend the
       models with the rest (:meth:`ModelLineage.propose`), and score
       candidate vs parent on the held-back reports (mean relative
       prediction error).  Candidate no worse -> commit the epoch, swap
       ``server.models`` (one reference assignment -- in-flight requests
       keep the parent set, consistently), invalidate the parent
       fingerprint's cache entries and warm-re-solve their recorded
       specs ascending by total (each solve warm-starts from the last
       via the cache's ``nearest``).  Candidate worse -> journalled
       rollback; nothing served changes.

    The held-back reports return to the buffer either way -- they were
    never trained on, and they fold into the next epoch.

    Thread safety: :meth:`handle` serialises under one lock.  Plan
    serving never takes it; the only shared state is ``server.models``,
    swapped atomically.

    Args:
        server: the plan server whose models this loop refines.
        lineage: the versioned model set (must hold the same model list
            the server serves).
        quarantine: trust boundary (a default one is built if omitted).
        refit_every: accepted reports between refit attempts.
        holdback_frac: fraction of the buffer (newest first) reserved
            for the regression gate, never trained on.
        resolve_limit: maximum invalidated plans to re-solve per commit
            (the rest stay invalidated and re-solve lazily on demand).
    """

    def __init__(
        self,
        server: Any,
        lineage: ModelLineage,
        quarantine: Optional[FeedbackQuarantine] = None,
        refit_every: int = 16,
        holdback_frac: float = 0.25,
        resolve_limit: int = 32,
    ) -> None:
        if refit_every <= 0:
            raise ValueError(f"refit_every must be positive, got {refit_every}")
        if not 0.0 < holdback_frac < 1.0:
            raise ValueError(
                f"holdback_frac must be in (0, 1), got {holdback_frac}"
            )
        if resolve_limit < 0:
            raise ValueError(
                f"resolve_limit must be non-negative, got {resolve_limit}"
            )
        self.server = server
        self.lineage = lineage
        self.quarantine = quarantine if quarantine is not None else FeedbackQuarantine()
        self.refit_every = refit_every
        self.holdback_frac = holdback_frac
        self.resolve_limit = resolve_limit
        self.counters = FeedbackCounters()
        self._pending: List[FeedbackReport] = []
        self._since_refit = 0
        self._lock = threading.Lock()

    # -- the front-end entry point -----------------------------------------

    def handle(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Process one feedback payload end to end.

        Returns the response body for an accepted report:
        ``{"status": "accepted", "epoch", "buffered", "refit"}`` where
        ``refit`` is None unless this report triggered an attempt (then
        ``"committed"``, ``"rolled-back"`` or ``"failed"``).  Raises the
        taxonomy errors documented on :meth:`FeedbackQuarantine.admit`
        and :meth:`FeedbackReport.from_payload` for the front ends to map.
        """
        try:
            report = FeedbackReport.from_payload(payload)
        except FuPerModError:
            with self._lock:
                self.counters.malformed += 1
            raise
        with self._lock:
            try:
                self.quarantine.admit(report, self.server.models)
            except FeedbackRejected as exc:
                self.counters.count_rejection(exc.reasons)
                raise
            self.counters.accepted += 1
            self._pending.append(report)
            self._since_refit += 1
            refit_outcome: Optional[str] = None
            if self._since_refit >= self.refit_every:
                self._since_refit = 0
                refit_outcome = self._refit()
            return {
                "status": "accepted",
                "source": report.source,
                "epoch": self.lineage.epoch,
                "buffered": len(self._pending),
                "refit": refit_outcome,
            }

    # -- refit pipeline (caller holds the lock) ----------------------------

    def _refit(self) -> str:
        """One gated refit attempt; returns its outcome slug."""
        holdback_n = max(1, int(len(self._pending) * self.holdback_frac))
        train = self._pending[:-holdback_n]
        holdback = self._pending[-holdback_n:]
        if not train:
            return "skipped"
        points_per_rank = self._points_by_rank(train)
        try:
            candidate = self.lineage.propose(points_per_rank)
        except FuPerModError as exc:
            self.counters.refit_failures += 1
            self.lineage.rollback(f"refit failed to fit: {exc}")
            return "failed"
        parent_err = self._score(self.server.models, holdback)
        child_err = self._score(candidate.models, holdback)
        if child_err > parent_err:
            self.counters.rollbacks += 1
            self.lineage.rollback(
                f"regression gate: candidate err {child_err:.4g} > "
                f"parent err {parent_err:.4g} on {len(holdback)} held-back "
                f"reports"
            )
            # Holdback AND train stay pending: nothing was folded in, and
            # future accepted reports change the mix before the next try.
            return "rolled-back"
        old_fp = self.lineage.fingerprint
        self.lineage.commit(candidate)
        # One reference assignment: in-flight requests hold the parent
        # list; new requests fingerprint the child.  This *is* the
        # hit-path lineage check -- no lock, no epoch counter per request.
        self.server.models = self.lineage.models
        self.counters.refits += 1
        self._pending = list(holdback)
        self._reconcile_cache(old_fp)
        return "committed"

    def _points_by_rank(
        self, reports: Sequence[FeedbackReport]
    ) -> List[List[Any]]:
        """Accepted reports as per-rank MeasurementPoint lists."""
        from repro.core.point import MeasurementPoint

        ranks = len(self.server.models)
        out: List[List[Any]] = [[] for _ in range(ranks)]
        for report in reports:
            for rank, (size, t) in enumerate(zip(report.sizes, report.times)):
                out[rank].append(MeasurementPoint(d=int(size), t=float(t)))
        return out

    @staticmethod
    def _score(models: Sequence, holdback: Sequence[FeedbackReport]) -> float:
        """Mean relative prediction error of ``models`` on ``holdback``.

        The regression gate's metric: ``|pred - t| / max(t, eps)``
        averaged over every (rank, point) in the held-back reports.
        Unscorable ranks (model cannot predict) contribute the worst
        case, so a candidate that *lost* the ability to predict cannot
        pass the gate by silence.
        """
        errors: List[float] = []
        for report in holdback:
            for rank, (size, t) in enumerate(zip(report.sizes, report.times)):
                try:
                    pred = float(models[rank].time(float(size)))
                except (FuPerModError, ValueError, OverflowError):
                    errors.append(float("inf"))
                    continue
                if not math.isfinite(pred):
                    errors.append(float("inf"))
                    continue
                errors.append(abs(pred - t) / max(t, 1e-12))
        if not errors:
            return float("inf")
        return sum(errors) / len(errors)

    def _reconcile_cache(self, old_fp: str) -> None:
        """Invalidate the parent epoch's plans; warm-re-solve their specs.

        Runs on the feedback thread -- off the plan request path -- after
        the model swap.  Re-solves ascend by total so each solve
        warm-starts from its predecessor's fresh entry via the cache's
        ``nearest`` lookup; at most :attr:`resolve_limit` specs are
        re-solved (the remainder re-solve lazily on first demand).
        """
        cache = self.server.engine.cache
        specs = cache.invalidate_models(old_fp)
        self.counters.invalidated_plans += len(specs)
        todo = sorted(
            (spec for spec in specs if spec is not None),
            key=lambda spec: spec[0],
        )[: self.resolve_limit]
        models = self.server.models
        for spec in todo:
            total, partitioner, options = spec[0], spec[1], spec[2]
            # Kinded specs (bi-objective plans) append (kind, objective);
            # legacy 3-tuples are time plans.
            kind = str(spec[3]) if len(spec) >= 4 else "time"
            objective = spec[4] if len(spec) >= 5 else None
            energy = getattr(self.server, "energy_models", None)
            if kind != "time" and energy is None:
                continue  # energy side detached: re-solve lazily on demand
            try:
                self.server.engine.plan(
                    models, int(total), partitioner, options,
                    kind=kind, objective=objective,
                    energy_models=energy if kind != "time" else None,
                )
                self.counters.resolved_plans += 1
            except FuPerModError:
                # A spec that no longer solves stays uncached; the next
                # live request for it will surface the error to a caller.
                continue

    # -- introspection -----------------------------------------------------

    def pending(self) -> int:
        """Accepted reports buffered toward the next refit attempt."""
        with self._lock:
            return len(self._pending)

    def stats(self) -> Dict[str, Any]:
        """Feedback-loop snapshot for ``/stats`` and ``/metrics``."""
        with self._lock:
            out = self.counters.to_dict()
            out["quarantined_sources"] = self.quarantine.quarantined_sources()
            out["pending"] = len(self._pending)
            out["lineage"] = self.lineage.stats()
            return out
