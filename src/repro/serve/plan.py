"""Typed plan requests and results for the partition-plan service.

A :class:`PlanRequest` names a partitioning problem by semantic identity:
the fingerprint of the fitted model set, the total, the partitioner and
its options.  Its :attr:`~PlanRequest.key` is the cache key and the
single-flight coalescing key.

A :class:`PlanResult` is the answer: the integer shares and predicted
times (enough to rebuild a :class:`~repro.core.partition.dist.
Distribution`), the convergence certificate, and serving metadata -- did
it come from the cache, was the solve warm-started, did the degradation
ladder have to step in.  Results serialise to plain JSON dicts for the
stdio/HTTP front ends and for cache persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.partition.cert import ConvergenceCert
from repro.core.partition.dist import Distribution, Part
from repro.errors import PartitionError
from repro.serve.fingerprint import fingerprint_request


@dataclass(frozen=True)
class PlanRequest:
    """One partitioning problem, identified by content.

    Attributes:
        models_fp: fingerprint of the ordered fitted-model set (see
            :func:`~repro.serve.fingerprint.fingerprint_models`).
        total: problem size ``D`` in computation units.
        partitioner: registered partitioner name (``"geometric"``, ...).
        options: extra keyword arguments for the partitioner, as an
            order-insensitive tuple of ``(name, value)`` pairs.
    """

    models_fp: str
    total: int
    partitioner: str = "geometric"
    options: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        models_fp: str,
        total: int,
        partitioner: str = "geometric",
        options: Optional[Mapping[str, Any]] = None,
    ) -> "PlanRequest":
        """Build a request, normalising ``options`` from any mapping."""
        if total < 0:
            raise PartitionError(f"total must be non-negative, got {total}")
        opts = tuple(sorted((options or {}).items()))
        return PlanRequest(
            models_fp=models_fp,
            total=int(total),
            partitioner=partitioner,
            options=opts,
        )

    @property
    def key(self) -> str:
        """The request's content hash -- cache and coalescing key."""
        return fingerprint_request(
            self.models_fp, self.total, self.partitioner, dict(self.options)
        )

    def option_dict(self) -> Dict[str, Any]:
        """The options as a plain keyword-argument dict."""
        return dict(self.options)


@dataclass(frozen=True)
class PlanResult:
    """A served partition plan plus its provenance.

    Attributes:
        key: the originating request's content hash.
        total: the problem size the plan covers.
        sizes: integer per-rank shares (sum to ``total``).
        times: model-predicted per-rank seconds.
        algorithm: partitioner that actually produced the plan (after any
            degradation).
        cert: the solve's convergence certificate (None for plans from
            partitioners that do not certify).
        cached: True when served from the plan cache without computing.
        warm: True when the solve was warm-started from a nearby plan.
        degraded: summary of the degradation ladder's fallbacks, or ``""``
            when the requested partitioner succeeded directly.
        compute_seconds: wall seconds the solve took (0.0 for cache hits).
    """

    key: str
    total: int
    sizes: Tuple[int, ...]
    times: Tuple[float, ...]
    algorithm: str
    cert: Optional[ConvergenceCert] = None
    cached: bool = False
    warm: bool = False
    degraded: str = ""
    compute_seconds: float = 0.0

    def distribution(self) -> Distribution:
        """Rebuild a fresh :class:`Distribution` (cert re-attached)."""
        dist = Distribution(
            Part(d, t) for d, t in zip(self.sizes, self.times)
        )
        if self.cert is not None:
            dist.convergence = self.cert
        return dist

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (used by front ends and persistence)."""
        out: Dict[str, Any] = {
            "key": self.key,
            "total": self.total,
            "sizes": list(self.sizes),
            "times": [repr(t) for t in self.times],
            "algorithm": self.algorithm,
            "cached": self.cached,
            "warm": self.warm,
            "degraded": self.degraded,
            "compute_seconds": self.compute_seconds,
        }
        if self.cert is not None:
            out["cert"] = self.cert.to_dict()
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PlanResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises:
            PartitionError: on a malformed payload (missing fields or
                mismatched lengths), so corrupt persisted caches fail
                loudly instead of serving garbage plans.
        """
        try:
            sizes = tuple(int(d) for d in data["sizes"])
            times = tuple(float(t) for t in data["times"])
            if len(sizes) != len(times):
                raise ValueError(
                    f"{len(sizes)} sizes for {len(times)} times"
                )
            cert = None
            if "cert" in data:
                c = data["cert"]
                cert = ConvergenceCert(
                    algorithm=str(c["algorithm"]),
                    converged=bool(c["converged"]),
                    iterations=int(c["iterations"]),
                    max_iter=int(c["max_iter"]),
                    residual=float(c["residual"]),
                    tolerance=float(c["tolerance"]),
                    detail=str(c.get("detail", "")),
                )
            return PlanResult(
                key=str(data["key"]),
                total=int(data["total"]),
                sizes=sizes,
                times=times,
                algorithm=str(data["algorithm"]),
                cert=cert,
                cached=bool(data.get("cached", False)),
                warm=bool(data.get("warm", False)),
                degraded=str(data.get("degraded", "")),
                compute_seconds=float(data.get("compute_seconds", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PartitionError(f"malformed plan payload: {exc}") from exc

    def replace(self, **changes: Any) -> "PlanResult":
        """A copy with the given fields changed (dataclass-replace sugar)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)


@dataclass
class ServeCounters:
    """Mutable serving counters shared by engine and server.

    Attributes:
        computations: partitioner solves actually executed.
        warm_starts: solves that were seeded from a nearby cached plan.
        coalesced: requests that piggybacked on an identical in-flight
            computation instead of starting their own.
        shed: requests rejected at admission because the queue was full
            (each raised a :class:`~repro.errors.ServiceOverloadError`).
        deadline_expired: requests whose caller gave up on a
            :class:`~repro.degrade.watchdog.Deadline` before the plan
            arrived (the solve itself keeps running and fills the cache).
        short_circuits: requests served without trying the requested
            partitioner because the model set's circuit breaker was open.
        sibling_fills: cache misses answered by a sibling shard's cache
            instead of a cold solve (fleet serving only).
        sibling_misses: sibling lookups that came back empty (the solve
            proceeded cold).
        sibling_errors: sibling lookups that failed (dead peer, bad
            payload); never fatal -- the solve proceeds cold.
    """

    computations: int = 0
    warm_starts: int = 0
    coalesced: int = 0
    shed: int = 0
    deadline_expired: int = 0
    short_circuits: int = 0
    sibling_fills: int = 0
    sibling_misses: int = 0
    sibling_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Snapshot as a plain dict."""
        return {
            "computations": self.computations,
            "warm_starts": self.warm_starts,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "short_circuits": self.short_circuits,
            "sibling_fills": self.sibling_fills,
            "sibling_misses": self.sibling_misses,
            "sibling_errors": self.sibling_errors,
        }


# Re-exported for type hints in the front ends.
__all__ = ["PlanRequest", "PlanResult", "ServeCounters", "field"]
