"""Typed plan requests and results for the partition-plan service.

A :class:`PlanRequest` names a partitioning problem by semantic identity:
the fingerprint of the fitted model set, the total, the partitioner and
its options.  Its :attr:`~PlanRequest.key` is the cache key and the
single-flight coalescing key.

A :class:`PlanResult` is the answer: the integer shares and predicted
times (enough to rebuild a :class:`~repro.core.partition.dist.
Distribution`), the convergence certificate, and serving metadata -- did
it come from the cache, was the solve warm-started, did the degradation
ladder have to step in.  Results serialise to plain JSON dicts for the
stdio/HTTP front ends and for cache persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.partition.cert import ConvergenceCert
from repro.core.partition.dist import Distribution, Part
from repro.core.partition.pareto import ParetoFront, ParetoPoint
from repro.errors import PartitionError
from repro.serve.fingerprint import fingerprint_objective_request

#: Plan-kind schema version, emitted with every non-default-kind plan so
#: persisted caches and replicas from a future incompatible kind encoding
#: can be refused instead of misread.
PLAN_KIND_VERSION = 1

#: The plan kinds this build can serve.
PLAN_KINDS = ("time", "pareto")


@dataclass(frozen=True)
class PlanRequest:
    """One partitioning problem, identified by content.

    Attributes:
        models_fp: fingerprint of the ordered fitted-model set (see
            :func:`~repro.serve.fingerprint.fingerprint_models`).
        total: problem size ``D`` in computation units.
        partitioner: registered partitioner name (``"geometric"``, ...).
        options: extra keyword arguments for the partitioner, as an
            order-insensitive tuple of ``(name, value)`` pairs.
        kind: the plan kind -- ``"time"`` (default, the classic
            single-objective plan) or ``"pareto"`` (bi-objective front).
        energy_fp: fingerprint of the energy-model set (``""`` for
            ``"time"`` requests; required for ``"pareto"``).
        objective: objective parameters (``alpha``, ``energy_cap``,
            ``npoints``) as an order-insensitive tuple of pairs; part of
            the cache key for non-time kinds.
    """

    models_fp: str
    total: int
    partitioner: str = "geometric"
    options: Tuple[Tuple[str, Any], ...] = ()
    kind: str = "time"
    energy_fp: str = ""
    objective: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(
        models_fp: str,
        total: int,
        partitioner: str = "geometric",
        options: Optional[Mapping[str, Any]] = None,
        kind: str = "time",
        energy_fp: str = "",
        objective: Optional[Mapping[str, Any]] = None,
    ) -> "PlanRequest":
        """Build a request, normalising ``options`` from any mapping."""
        if total < 0:
            raise PartitionError(f"total must be non-negative, got {total}")
        if kind not in PLAN_KINDS:
            raise PartitionError(
                f"unknown plan kind {kind!r}; known kinds: {list(PLAN_KINDS)}"
            )
        if kind != "time" and not energy_fp:
            raise PartitionError(
                f"plan kind {kind!r} requires an energy-model fingerprint"
            )
        opts = tuple(sorted((options or {}).items()))
        obj = tuple(sorted((objective or {}).items()))
        return PlanRequest(
            models_fp=models_fp,
            total=int(total),
            partitioner=partitioner,
            options=opts,
            kind=kind,
            energy_fp=energy_fp if kind != "time" else "",
            objective=obj if kind != "time" else (),
        )

    @property
    def key(self) -> str:
        """The request's content hash -- cache and coalescing key.

        ``"time"`` requests hash exactly as before plan kinds existed;
        other kinds mix ``(kind, energy_fp, objective)`` into the digest
        so plans of different kinds can never alias.
        """
        return fingerprint_objective_request(
            self.kind, self.models_fp, self.energy_fp, self.total,
            self.partitioner, dict(self.options), dict(self.objective),
        )

    def option_dict(self) -> Dict[str, Any]:
        """The options as a plain keyword-argument dict."""
        return dict(self.options)

    def objective_dict(self) -> Dict[str, Any]:
        """The objective parameters as a plain dict."""
        return dict(self.objective)


@dataclass(frozen=True)
class PlanResult:
    """A served partition plan plus its provenance.

    Attributes:
        key: the originating request's content hash.
        total: the problem size the plan covers.
        sizes: integer per-rank shares (sum to ``total``).
        times: model-predicted per-rank seconds.
        algorithm: partitioner that actually produced the plan (after any
            degradation).
        cert: the solve's convergence certificate (None for plans from
            partitioners that do not certify).
        cached: True when served from the plan cache without computing.
        warm: True when the solve was warm-started from a nearby plan.
        degraded: summary of the degradation ladder's fallbacks, or ``""``
            when the requested partitioner succeeded directly.
        compute_seconds: wall seconds the solve took (0.0 for cache hits).
        kind: the plan kind (``"time"`` or ``"pareto"``); ``sizes`` and
            ``times`` always hold one concrete distribution -- for a
            pareto plan, the point selected by the request's objective.
        front: the full dominance-filtered front for ``"pareto"`` plans
            (empty for ``"time"`` plans).
        durable: False when the serving node acknowledged this plan
            while its durability layer was degraded to memory-only mode
            (the plan is correct but may not survive that node's crash);
            True everywhere else, including servers with no durable
            cache at all.  Serialisation emits the flag only when False,
            so historical payload layouts are byte-identical.
    """

    key: str
    total: int
    sizes: Tuple[int, ...]
    times: Tuple[float, ...]
    algorithm: str
    cert: Optional[ConvergenceCert] = None
    cached: bool = False
    warm: bool = False
    degraded: str = ""
    compute_seconds: float = 0.0
    kind: str = "time"
    durable: bool = True
    front: Tuple[ParetoPoint, ...] = ()

    def pareto_front(self) -> ParetoFront:
        """Rebuild the :class:`~repro.core.partition.pareto.ParetoFront`.

        Raises:
            PartitionError: on a ``"time"`` plan, which has no front.
        """
        if self.kind != "pareto" or not self.front:
            raise PartitionError(
                f"plan kind {self.kind!r} carries no pareto front"
            )
        return ParetoFront(total=self.total, points=self.front)

    def distribution(self) -> Distribution:
        """Rebuild a fresh :class:`Distribution` (cert re-attached)."""
        dist = Distribution(
            Part(d, t) for d, t in zip(self.sizes, self.times)
        )
        if self.cert is not None:
            dist.convergence = self.cert
        return dist

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (used by front ends and persistence)."""
        out: Dict[str, Any] = {
            "key": self.key,
            "total": self.total,
            "sizes": list(self.sizes),
            "times": [repr(t) for t in self.times],
            "algorithm": self.algorithm,
            "cached": self.cached,
            "warm": self.warm,
            "degraded": self.degraded,
            "compute_seconds": self.compute_seconds,
        }
        if self.cert is not None:
            out["cert"] = self.cert.to_dict()
        if not self.durable:
            # Emitted only when degraded: durable acks keep the
            # historical byte layout.
            out["durable"] = False
        if self.kind != "time":
            # Time plans keep their historical byte layout (bit parity
            # through relays, WALs and replicas written before kinds
            # existed); other kinds declare themselves and their schema.
            out["kind"] = self.kind
            out["kind_v"] = PLAN_KIND_VERSION
            out["front"] = [p.to_dict() for p in self.front]
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "PlanResult":
        """Rebuild a result from :meth:`to_dict` output.

        Raises:
            PartitionError: on a malformed payload (missing fields or
                mismatched lengths), so corrupt persisted caches fail
                loudly instead of serving garbage plans.
        """
        try:
            sizes = tuple(int(d) for d in data["sizes"])
            times = tuple(float(t) for t in data["times"])
            if len(sizes) != len(times):
                raise ValueError(
                    f"{len(sizes)} sizes for {len(times)} times"
                )
            cert = None
            if "cert" in data:
                c = data["cert"]
                cert = ConvergenceCert(
                    algorithm=str(c["algorithm"]),
                    converged=bool(c["converged"]),
                    iterations=int(c["iterations"]),
                    max_iter=int(c["max_iter"]),
                    residual=float(c["residual"]),
                    tolerance=float(c["tolerance"]),
                    detail=str(c.get("detail", "")),
                )
            kind = str(data.get("kind", "time"))
            if kind not in PLAN_KINDS:
                raise ValueError(f"unknown plan kind {kind!r}")
            front: Tuple[ParetoPoint, ...] = ()
            if kind != "time":
                kind_v = int(data.get("kind_v", PLAN_KIND_VERSION))
                if kind_v != PLAN_KIND_VERSION:
                    raise ValueError(
                        f"plan kind schema v{kind_v} is not v{PLAN_KIND_VERSION}"
                    )
                front = tuple(
                    ParetoPoint.from_dict(p) for p in data.get("front", ())
                )
                if not front:
                    raise ValueError(f"{kind!r} plan carries an empty front")
            return PlanResult(
                key=str(data["key"]),
                total=int(data["total"]),
                sizes=sizes,
                times=times,
                algorithm=str(data["algorithm"]),
                cert=cert,
                cached=bool(data.get("cached", False)),
                warm=bool(data.get("warm", False)),
                degraded=str(data.get("degraded", "")),
                compute_seconds=float(data.get("compute_seconds", 0.0)),
                kind=kind,
                durable=bool(data.get("durable", True)),
                front=front,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PartitionError(f"malformed plan payload: {exc}") from exc

    def replace(self, **changes: Any) -> "PlanResult":
        """A copy with the given fields changed (dataclass-replace sugar)."""
        from dataclasses import replace as _replace

        return _replace(self, **changes)


@dataclass
class ServeCounters:
    """Mutable serving counters shared by engine and server.

    Attributes:
        computations: partitioner solves actually executed.
        warm_starts: solves that were seeded from a nearby cached plan.
        coalesced: requests that piggybacked on an identical in-flight
            computation instead of starting their own.
        shed: requests rejected at admission because the queue was full
            (each raised a :class:`~repro.errors.ServiceOverloadError`).
        deadline_expired: requests whose caller gave up on a
            :class:`~repro.degrade.watchdog.Deadline` before the plan
            arrived (the solve itself keeps running and fills the cache).
        short_circuits: requests served without trying the requested
            partitioner because the model set's circuit breaker was open.
        sibling_fills: cache misses answered by a sibling shard's cache
            instead of a cold solve (fleet serving only).
        sibling_misses: sibling lookups that came back empty (the solve
            proceeded cold).
        sibling_errors: sibling lookups that failed (dead peer, bad
            payload); never fatal -- the solve proceeds cold.
    """

    computations: int = 0
    warm_starts: int = 0
    coalesced: int = 0
    shed: int = 0
    deadline_expired: int = 0
    short_circuits: int = 0
    sibling_fills: int = 0
    sibling_misses: int = 0
    sibling_errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        """Snapshot as a plain dict."""
        return {
            "computations": self.computations,
            "warm_starts": self.warm_starts,
            "coalesced": self.coalesced,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
            "short_circuits": self.short_circuits,
            "sibling_fills": self.sibling_fills,
            "sibling_misses": self.sibling_misses,
            "sibling_errors": self.sibling_errors,
        }


# Re-exported for type hints in the front ends.
__all__ = [
    "PLAN_KINDS",
    "PLAN_KIND_VERSION",
    "PlanRequest",
    "PlanResult",
    "ServeCounters",
    "field",
]
