"""Client for one fleet shard (a worker process's HTTP endpoint).

:class:`ShardClient` is the low-level, shard-aware counterpart of
:class:`~repro.serve.client.PlanClient`: where PlanClient speaks the
abstract plan protocol to *a* service, ShardClient speaks to one known
worker process and exposes the fleet-internal surface too --

* ``plan_raw`` returns the **raw response bytes** alongside the status,
  which is how the router guarantees bit-identical plans through the
  fleet: it relays the worker's bytes verbatim instead of re-encoding;
* ``get_cached`` is the sibling-fill probe (``GET /cache/<key>``): a
  pure cache peek on the peer that never triggers a solve there;
* ``set_peers`` delivers the supervisor's peer roster
  (``POST /peers``), re-broadcast whenever the fleet membership changes;
* ``health`` is the liveness probe used for startup waits and
  post-SIGKILL detection.

Connections are persistent (HTTP/1.1 keep-alive) with one
fresh-connection retry, matching
:class:`~repro.serve.client.KeepAliveTransport`; instances are
thread-safe via thread-local connections.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import FuPerModError
from repro.serve.plan import PlanResult


class ShardClient:
    """Keep-alive HTTP client for one worker shard.

    Args:
        url: the worker's base URL (``http://host:port``).
        shard_id: the worker's fleet identity (for error messages and
            router bookkeeping; not sent on the wire).
        timeout: socket timeout per request, seconds.
    """

    def __init__(
        self, url: str, shard_id: str = "", timeout: float = 30.0
    ) -> None:
        if not url.startswith("http://"):
            raise FuPerModError(f"shard client needs an http:// URL, got {url!r}")
        hostport = url[len("http://"):].rstrip("/")
        host, _, port_text = hostport.partition(":")
        if not host or not port_text:
            raise FuPerModError(f"shard URL must be http://host:port, got {url!r}")
        try:
            self.port = int(port_text)
        except ValueError:
            raise FuPerModError(f"bad port in shard URL {url!r}") from None
        self.host = host
        self.url = f"http://{host}:{self.port}"
        self.shard_id = shard_id or self.url
        self.timeout = timeout
        self.connections_opened = 0
        self._count_lock = threading.Lock()
        self._local = threading.local()

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
            with self._count_lock:
                self.connections_opened += 1
        return conn

    def _drop(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._drop()

    def _roundtrip(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, bytes]:
        """One request with the keep-alive retry contract.

        Returns ``(status, raw body bytes)``; raises ``ConnectionError``
        / ``OSError`` when the shard is unreachable even on a fresh
        connection (the router's cue to mark it dead).
        """
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                reply = conn.getresponse()
                data = reply.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                self._drop()
                if attempt:
                    raise
                continue
            if reply.will_close:
                self._drop()
            return reply.status, data
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        status, data = self._roundtrip(method, path, body)
        try:
            decoded = json.loads(data.decode("utf-8"))
            if not isinstance(decoded, dict):
                raise ValueError
        except (UnicodeDecodeError, ValueError):
            decoded = {"error": f"HTTP {status} from shard {self.shard_id}"}
        return status, decoded

    # -- fleet surface -----------------------------------------------------

    def plan_raw(self, payload: Dict[str, Any]) -> Tuple[int, bytes]:
        """``POST /plan`` returning ``(status, raw response bytes)``.

        The router relays these bytes verbatim, so a plan served through
        the fleet is bit-identical to one served by the worker directly.
        """
        body = json.dumps(payload).encode("utf-8")
        return self._roundtrip("POST", "/plan", body)

    def plan(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /plan`` decoded (convenience for tests and probes)."""
        status, decoded = self._json("POST", "/plan", payload)
        if status >= 400:
            decoded.setdefault("error", f"HTTP {status}")
            decoded.setdefault("code", status)
        return decoded

    def get_cached(self, key: str) -> Optional[PlanResult]:
        """The peer's cached plan for ``key``, or None (never solves).

        Any malformed answer is treated as a miss -- the engine's
        sibling-fill validation is the real poisoning guard; this just
        avoids raising on garbage.
        """
        status, decoded = self._json("GET", f"/cache/{key}")
        if status != 200 or "plan" not in decoded:
            return None
        try:
            return PlanResult.from_dict(decoded["plan"])
        except Exception:
            return None

    def set_peers(self, peers: Sequence[Dict[str, str]]) -> bool:
        """Deliver the peer roster: ``[{"shard_id": ..., "url": ...}]``."""
        status, _ = self._json("POST", "/peers", {"peers": list(peers)})
        return status == 200

    def health(self) -> bool:
        """Whether the shard answers its liveness probe."""
        try:
            status, _ = self._roundtrip("GET", "/health")
        except (http.client.HTTPException, ConnectionError, OSError):
            return False
        return status == 200

    def stats(self) -> Dict[str, Any]:
        """The shard's ``/stats`` snapshot."""
        status, decoded = self._json("GET", "/stats")
        if status != 200:
            raise FuPerModError(
                f"shard {self.shard_id} /stats failed: HTTP {status}"
            )
        return decoded.get("stats", decoded)

    def metrics(self) -> Dict[str, Any]:
        """The shard's ``/metrics`` snapshot."""
        status, decoded = self._json("GET", "/metrics")
        if status != 200:
            raise FuPerModError(
                f"shard {self.shard_id} /metrics failed: HTTP {status}"
            )
        return decoded.get("metrics", decoded)
