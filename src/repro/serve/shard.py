"""Client for one fleet shard (a worker process's HTTP endpoint).

:class:`ShardClient` is the low-level, shard-aware counterpart of
:class:`~repro.serve.client.PlanClient`: where PlanClient speaks the
abstract plan protocol to *a* service, ShardClient speaks to one known
worker process and exposes the fleet-internal surface too --

* ``plan_raw`` returns the **raw response bytes** alongside the status,
  which is how the router guarantees bit-identical plans through the
  fleet: it relays the worker's bytes verbatim instead of re-encoding;
* ``get_cached`` is the sibling-fill probe (``GET /cache/<key>``): a
  pure cache peek on the peer that never triggers a solve there;
* ``replicate`` / ``digest`` / ``get_entry`` are the replication and
  anti-entropy surface (``POST /replicate``, ``GET /digest``);
* ``set_peers`` delivers the supervisor's peer roster
  (``POST /peers``), re-broadcast whenever the fleet membership changes;
* ``chaos`` installs a transport-fault plan (``POST /chaos``, the
  netsplit suite's seam);
* ``health`` is the liveness probe used for startup waits and
  post-SIGKILL detection.

Connections are persistent (HTTP/1.1 keep-alive).  A request that fails
on a connection is retried on a fresh one with **bounded, jittered
backoff** -- up to ``max_attempts`` tries, sleeping uniform in
``[0, base * 2**k]`` before retry ``k`` -- instead of the old single
blind retry, so a briefly unreachable peer (restart, transient
partition) is ridden out without a fleet of clients hammering it in
lockstep.  A propagated per-hop deadline caps the whole attempt loop:
retries never outlive the caller.  ``reconnects`` counts retry attempts
(the witness the backoff tests assert on) alongside
``connections_opened``; instances are thread-safe via thread-local
connections.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import FuPerModError
from repro.serve.plan import PlanResult

#: HTTP header carrying the remaining per-request deadline (seconds) to
#: the next hop; see docs/API.md "Deadline propagation".
DEADLINE_HEADER = "X-Fupermod-Deadline"


class ShardClient:
    """Keep-alive HTTP client for one worker shard.

    Args:
        url: the worker's base URL (``http://host:port``).
        shard_id: the worker's fleet identity (for error messages and
            router bookkeeping; not sent on the wire).
        timeout: socket timeout per request, seconds.
        max_attempts: total connection attempts per request (first try
            included); failures between attempts back off with full
            jitter.
        backoff_base: backoff base in seconds; retry ``k`` (0-based)
            sleeps uniform in ``[0, backoff_base * 2**k]``.
        rng: seeded ``random.Random`` for the jitter draw (deterministic
            tests); a fresh unseeded one by default.
    """

    def __init__(
        self,
        url: str,
        shard_id: str = "",
        timeout: float = 30.0,
        max_attempts: int = 3,
        backoff_base: float = 0.02,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not url.startswith("http://"):
            raise FuPerModError(f"shard client needs an http:// URL, got {url!r}")
        hostport = url[len("http://"):].rstrip("/")
        host, _, port_text = hostport.partition(":")
        if not host or not port_text:
            raise FuPerModError(f"shard URL must be http://host:port, got {url!r}")
        try:
            self.port = int(port_text)
        except ValueError:
            raise FuPerModError(f"bad port in shard URL {url!r}") from None
        if max_attempts <= 0:
            raise FuPerModError(
                f"max_attempts must be positive, got {max_attempts}"
            )
        self.host = host
        self.url = f"http://{host}:{self.port}"
        self.shard_id = shard_id or self.url
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.rng = rng if rng is not None else random.Random()
        self.connections_opened = 0
        #: Retry attempts after a failed round trip (the backoff
        #: witness: one request against a healthy shard adds zero).
        self.reconnects = 0
        self._count_lock = threading.Lock()
        self._local = threading.local()

    # -- transport ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
            with self._count_lock:
                self.connections_opened += 1
        return conn

    def _drop(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's persistent connection (if any)."""
        self._drop()

    def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[int, bytes]:
        """One request with bounded, jittered reconnect backoff.

        ``deadline`` is the remaining per-request budget in seconds: it
        caps the whole attempt loop (no retry starts past it) and rides
        to the shard in the ``X-Fupermod-Deadline`` header so downstream
        work never outlives the caller either.  Returns ``(status, raw
        body bytes)``; raises ``ConnectionError`` / ``OSError`` when the
        shard stays unreachable through every allowed attempt (the
        router's cue to mark it dead).
        """
        start = time.monotonic()
        headers: Dict[str, str] = (
            {"Content-Type": "application/json"} if body else {}
        )
        last_error: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = deadline - (time.monotonic() - start)
                if remaining <= 0.0:
                    break
                headers[DEADLINE_HEADER] = f"{remaining:.6f}"
            if attempt:
                with self._count_lock:
                    self.reconnects += 1
                delay = self.rng.uniform(
                    0.0, self.backoff_base * (2.0 ** (attempt - 1))
                )
                if remaining is not None:
                    delay = min(delay, max(0.0, remaining))
                if delay > 0.0:
                    time.sleep(delay)
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                reply = conn.getresponse()
                data = reply.read()
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._drop()
                last_error = exc
                continue
            if reply.will_close:
                self._drop()
            return reply.status, data
        if last_error is not None:
            raise (
                last_error
                if isinstance(last_error, (ConnectionError, OSError))
                else ConnectionError(str(last_error))
            )
        raise ConnectionError(
            f"deadline exhausted before reaching shard {self.shard_id}"
        )

    def _json(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        deadline: Optional[float] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        status, data = self._roundtrip(method, path, body, deadline=deadline)
        try:
            decoded = json.loads(data.decode("utf-8"))
            if not isinstance(decoded, dict):
                raise ValueError
        except (UnicodeDecodeError, ValueError):
            decoded = {"error": f"HTTP {status} from shard {self.shard_id}"}
        return status, decoded

    # -- fleet surface -----------------------------------------------------

    def plan_raw(self, payload: Dict[str, Any]) -> Tuple[int, bytes]:
        """``POST /plan`` returning ``(status, raw response bytes)``.

        The router relays these bytes verbatim, so a plan served through
        the fleet is bit-identical to one served by the worker directly.
        A ``deadline`` field in the payload bounds the retry loop and
        propagates as the per-hop header.
        """
        body = json.dumps(payload).encode("utf-8")
        deadline = payload.get("deadline")
        return self._roundtrip(
            "POST", "/plan", body,
            deadline=float(deadline) if deadline is not None else None,
        )

    def plan(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /plan`` decoded (convenience for tests and probes)."""
        deadline = payload.get("deadline")
        status, decoded = self._json(
            "POST", "/plan", payload,
            deadline=float(deadline) if deadline is not None else None,
        )
        if status >= 400:
            decoded.setdefault("error", f"HTTP {status}")
            decoded.setdefault("code", status)
        return decoded

    def get_cached(self, key: str) -> Optional[PlanResult]:
        """The peer's cached plan for ``key``, or None (never solves).

        Any malformed answer is treated as a miss -- the engine's
        sibling-fill validation is the real poisoning guard; this just
        avoids raising on garbage.
        """
        status, decoded = self._json("GET", f"/cache/{key}")
        if status != 200 or "plan" not in decoded:
            return None
        try:
            return PlanResult.from_dict(decoded["plan"])
        except Exception:
            return None

    def get_entry(
        self, key: str
    ) -> Optional[Tuple[PlanResult, str, Optional[Tuple[Any, ...]]]]:
        """The peer's full cache entry: ``(result, models_fp, spec)``.

        The anti-entropy repair path uses this to pull a divergent entry
        from its authoritative holder before pushing it to the shards
        that lack it.  Returns None on a miss or any malformed answer.
        """
        status, decoded = self._json("GET", f"/cache/{key}")
        if status != 200 or "plan" not in decoded:
            return None
        try:
            result = PlanResult.from_dict(decoded["plan"])
            models_fp = str(decoded["models_fp"])
            spec = decoded.get("spec")
            return result, models_fp, tuple(spec) if spec is not None else None
        except Exception:
            return None

    def replicate(self, entry: Dict[str, Any]) -> bool:
        """Push one cache entry to this peer (``POST /replicate``)."""
        status, _ = self._json("POST", "/replicate", entry)
        return status == 200

    def digest(self) -> Optional[Dict[str, Any]]:
        """The peer's anti-entropy digest (``GET /digest``), or None."""
        try:
            status, decoded = self._json("GET", "/digest")
        except (http.client.HTTPException, ConnectionError, OSError):
            return None
        if status != 200 or "entries" not in decoded:
            return None
        return decoded

    def chaos(self, plan: Dict[str, Any]) -> bool:
        """Install a transport-fault plan on the peer (``POST /chaos``)."""
        status, _ = self._json("POST", "/chaos", plan)
        return status == 200

    def set_peers(self, peers: Sequence[Dict[str, str]]) -> bool:
        """Deliver the peer roster: ``[{"shard_id": ..., "url": ...}]``."""
        status, _ = self._json("POST", "/peers", {"peers": list(peers)})
        return status == 200

    def health(self) -> bool:
        """Whether the shard answers its liveness probe."""
        try:
            status, _ = self._roundtrip("GET", "/health")
        except (http.client.HTTPException, ConnectionError, OSError):
            return False
        return status == 200

    def stats(self) -> Dict[str, Any]:
        """The shard's ``/stats`` snapshot."""
        status, decoded = self._json("GET", "/stats")
        if status != 200:
            raise FuPerModError(
                f"shard {self.shard_id} /stats failed: HTTP {status}"
            )
        return decoded.get("stats", decoded)

    def metrics(self) -> Dict[str, Any]:
        """The shard's ``/metrics`` snapshot."""
        status, decoded = self._json("GET", "/metrics")
        if status != 200:
            raise FuPerModError(
                f"shard {self.shard_id} /metrics failed: HTTP {status}"
            )
        return decoded.get("metrics", decoded)
