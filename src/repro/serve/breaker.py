"""Per-model-fingerprint circuit breakers for the plan service.

A model set whose solves keep failing (malformed fitted data, a
pathological speed function, an injected chaos fault) should not burn a
worker thread per request re-discovering the same failure.  The breaker
is the classic three-state machine:

* **closed** -- requests flow to the requested partitioner; outcomes are
  recorded in a sliding window.  When the window holds at least
  ``min_calls`` outcomes and the failure rate reaches
  ``failure_threshold``, the breaker *opens*.
* **open** -- requests are short-circuited without touching the
  partitioner: the engine serves them through the
  :class:`~repro.degrade.DegradationPolicy` ladder (or raises
  :class:`~repro.errors.CircuitOpenError` when no policy is configured).
  After ``cooldown`` seconds the breaker *half-opens*.
* **half-open** -- exactly one trial request is admitted to the real
  partitioner.  Success closes the breaker (window reset); failure
  re-opens it for another cooldown.

Breakers are keyed by model-set fingerprint in a :class:`BreakerBoard`:
one misbehaving model set cannot trip serving for the healthy ones.
State transitions and short-circuit counts surface in the server's
``stats()`` snapshot, so overload tests assert on counters rather than
timing.  The clock is injectable (monotonic by default) -- chaos tests
drive cooldowns with a fake clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

#: State names (plain strings so they serialise directly into stats).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate circuit breaker for one model set.

    Args:
        failure_threshold: failure fraction of the sliding window at
            which the breaker opens (in ``(0, 1]``).
        window: number of most-recent outcomes considered.
        min_calls: outcomes required before the rate is meaningful (a
            single failure must not trip a cold breaker).
        cooldown: seconds the breaker stays open before half-opening.
        clock: monotonic-seconds source, injectable for deterministic
            tests.

    Thread-safe: ``allow`` / ``record_success`` / ``record_failure`` may
    race from many serving threads.  In the half-open state only one
    caller wins the trial slot; the rest stay short-circuited until the
    trial resolves.
    """

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 8,
        min_calls: int = 4,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if min_calls <= 0 or min_calls > window:
            raise ValueError(
                f"min_calls must be in [1, window={window}], got {min_calls}"
            )
        if cooldown <= 0.0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._trial_inflight = False
        self.opens = 0
        self.short_circuits = 0

    # -- state machine -----------------------------------------------------

    def _open(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._trial_inflight = False
        self.opens += 1

    @property
    def state(self) -> str:
        """Current state name (cooldown elapse is applied lazily)."""
        with self._lock:
            return self._peek_state(self._clock())

    def _peek_state(self, now: float) -> str:
        if self._state == OPEN and now - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether the next request may reach the real partitioner.

        Returns False (and counts a short-circuit) while open; in the
        half-open window exactly one caller gets True as the trial.
        """
        with self._lock:
            now = self._clock()
            if self._state == OPEN and now - self._opened_at >= self.cooldown:
                self._state = HALF_OPEN
                self._trial_inflight = False
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._trial_inflight:
                self._trial_inflight = True
                return True
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        """A solve for this model set succeeded."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._trial_inflight = False
                self._outcomes.clear()
            elif self._state == CLOSED:
                self._outcomes.append(False)

    def record_failure(self) -> None:
        """A solve for this model set failed with a typed error."""
        with self._lock:
            now = self._clock()
            if self._state == HALF_OPEN:
                # The trial failed: straight back to open, fresh cooldown.
                self._open(now)
                return
            if self._state == OPEN:
                return
            self._outcomes.append(True)
            if len(self._outcomes) >= self.min_calls:
                rate = sum(self._outcomes) / len(self._outcomes)
                if rate >= self.failure_threshold:
                    self._open(now)
                    self._outcomes.clear()

    def remaining_cooldown(self) -> float:
        """Seconds until an open breaker half-opens (0 when not open)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot for stats endpoints."""
        with self._lock:
            now = self._clock()
            outcomes = list(self._outcomes)
            return {
                "state": self._peek_state(now),
                "opens": self.opens,
                "short_circuits": self.short_circuits,
                "window_failures": sum(outcomes),
                "window_calls": len(outcomes),
            }


class BreakerBoard:
    """The breakers of a serving process, keyed by model-set fingerprint.

    Args:
        **breaker_kwargs: forwarded to every :class:`CircuitBreaker`
            minted by :meth:`breaker` (``failure_threshold``, ``window``,
            ``min_calls``, ``cooldown``, ``clock``).

    Thread-safe; breakers are created lazily on first use and live for
    the board's lifetime (a refit produces a new fingerprint, whose
    breaker starts closed).
    """

    def __init__(self, **breaker_kwargs: Any) -> None:
        # Validate eagerly so a bad configuration fails at construction,
        # not on the first unlucky request.
        CircuitBreaker(**breaker_kwargs)
        self._kwargs = breaker_kwargs
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, models_fp: str) -> CircuitBreaker:
        """The breaker for ``models_fp`` (created closed on first use)."""
        with self._lock:
            breaker = self._breakers.get(models_fp)
            if breaker is None:
                breaker = CircuitBreaker(**self._kwargs)
                self._breakers[models_fp] = breaker
            return breaker

    def get(self, models_fp: str) -> Optional[CircuitBreaker]:
        """The breaker for ``models_fp`` if one exists (no creation)."""
        with self._lock:
            return self._breakers.get(models_fp)

    def to_dict(self) -> Dict[str, Any]:
        """Per-fingerprint snapshots plus aggregate counters."""
        with self._lock:
            boards = dict(self._breakers)
        per_fp = {fp: b.to_dict() for fp, b in boards.items()}
        return {
            "breakers": per_fp,
            "open": sum(1 for b in per_fp.values() if b["state"] != CLOSED),
            "opens": sum(b["opens"] for b in per_fp.values()),
            "short_circuits": sum(
                b["short_circuits"] for b in per_fp.values()
            ),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._breakers)
