"""Asyncio HTTP front end for the plan service.

The original HTTP transport (:func:`repro.serve.frontend.make_http_server`)
is a :class:`~http.server.ThreadingHTTPServer`: one OS thread per
connection, every request -- even a microsecond cache hit -- paying two
thread handoffs (socket thread in, worker pool out).  This front end
replaces it with a single-threaded :mod:`asyncio` event loop:

* connections are coroutines, so thousands of keep-alive clients cost
  file descriptors, not threads;
* the **cache-hit fast lane** serves hits inline on the event loop via
  :meth:`~repro.serve.server.PlanServer.try_cached` -- fingerprint plus
  LRU lookup, no executor round trip, no thread context switch;
* only cache *misses* (and protocol commands that may block) dispatch to
  a thread pool, through the exact same
  :func:`~repro.serve.frontend.handle_request` the threaded and stdio
  transports use, so the protocol and its 400/404/413/500/503/504 error
  taxonomy cannot drift between front ends.

The HTTP surface is deliberately minimal (we control both ends):
HTTP/1.1, Content-Length framing only, keep-alive by default,
``Connection: close`` honoured.  Endpoints: ``POST /plan``,
``POST /feedback`` (closed-loop refinement), ``GET /stats``,
``GET /metrics``, ``GET /health``, plus any ``extra_routes`` the fleet
worker mounts (sibling cache peeks, peer wiring).

The connection loop and lifecycle live in :class:`AsyncHTTPBase` so the
fleet router (:mod:`repro.serve.router`) -- which relays raw bytes
rather than serving a local :class:`PlanServer` -- shares them.  Both
servers can either own the process (:meth:`~AsyncHTTPBase.run`, the CLI
path) or run on a background thread (:meth:`~AsyncHTTPBase.start` /
:meth:`~AsyncHTTPBase.stop`, the tests' and supervisor's path).
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.serve.frontend import (
    MAX_BODY_BYTES, handle_request, merge_deadline_header, validate_objective,
)
from repro.serve.server import PlanServer

#: An extra route handler: ``(path, payload) -> (status, response dict)``.
#: Must be fast and non-blocking -- it runs inline on the event loop.
RouteHandler = Callable[[str, Optional[Dict[str, Any]]], Tuple[int, Dict[str, Any]]]

#: A handler's reply: the status, a JSON-able dict *or* pre-encoded raw
#: body bytes (the router's relay path), and optional extra headers.
Reply = Tuple[int, Union[Dict[str, Any], bytes], Optional[Dict[str, str]]]

_REASONS = {
    200: "OK", 400: "Bad Request", 403: "Forbidden", 404: "Not Found",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def encode_response(
    status: int,
    payload: Union[Mapping[str, Any], bytes],
    keep_alive: bool,
    extra_headers: Optional[Mapping[str, str]] = None,
) -> bytes:
    """One full HTTP/1.1 response with Content-Length framing.

    ``payload`` may be a dict (encoded as JSON) or raw pre-encoded bytes
    (relayed verbatim -- the router's bit-parity guarantee).  A 503 or
    429 dict carrying ``retry_after`` grows the RFC 7231 ``Retry-After``
    header.
    """
    headers: Dict[str, str] = dict(extra_headers or {})
    if isinstance(payload, bytes):
        body = payload
    else:
        body = json.dumps(payload).encode("utf-8")
        retry_after = payload.get("retry_after")
        if status in (429, 503) and retry_after is not None:
            headers.setdefault(
                "Retry-After", str(max(1, int(round(retry_after))))
            )
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body


class _BodyTooLarge(Exception):
    """Internal: a request advertised a body over the cap."""

    def __init__(self, length: int) -> None:
        super().__init__(f"body of {length} bytes over cap")
        self.length = length


class AsyncHTTPBase:
    """Minimal asyncio HTTP/1.1 server: framing, keep-alive, lifecycle.

    Subclasses implement :meth:`_handle_one` -- everything else
    (request parsing, keep-alive semantics, 400/413 refusals, running
    foreground or on a background thread, ephemeral-port discovery) is
    shared between the plan front end and the fleet router.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
        thread_name: str = "fupermod-aio",
    ) -> None:
        self.host = host
        self._requested_port = port
        self.max_body_bytes = max_body_bytes
        self._thread_name = thread_name
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopping = False
        self.port: Optional[int] = None
        self.requests_served = 0

    async def _handle_one(
        self, method: str, path: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Reply:
        """Route one parsed request; subclasses implement.

        ``headers`` carries the parsed request headers (lower-cased
        names) so hop-by-hop metadata -- notably the propagated
        ``X-Fupermod-Deadline`` budget -- reaches the handler.
        """
        raise NotImplementedError

    # -- connection loop ---------------------------------------------------

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one framed request; None on clean EOF, ValueError on junk."""
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not line:
            return None
        parts = line.decode("ascii", "replace").split()
        if len(parts) < 2:
            raise ValueError(f"malformed request line {line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("ascii", "replace").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError
        except ValueError:
            raise ValueError(f"bad Content-Length {length_text!r}") from None
        if length > self.max_body_bytes:
            raise _BodyTooLarge(length)
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One keep-alive connection: requests until EOF, error or close."""
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _BodyTooLarge as exc:
                    # Refuse before buffering the oversized body, like the
                    # threaded front end; the connection cannot be reused
                    # (the unread body would desynchronise framing).
                    writer.write(encode_response(413, {
                        "error": (
                            f"request body of {exc.length} bytes exceeds "
                            f"the {self.max_body_bytes}-byte cap"
                        ),
                    }, keep_alive=False))
                    await writer.drain()
                    return
                except ValueError as exc:
                    writer.write(encode_response(
                        400, {"error": str(exc)}, keep_alive=False
                    ))
                    await writer.drain()
                    return
                except asyncio.IncompleteReadError:
                    return
                if parsed is None:
                    return
                method, path, headers, body = parsed
                keep = headers.get("connection", "keep-alive").lower() != "close"
                status, payload, extra = await self._handle_one(
                    method, path, body, headers
                )
                self.requests_served += 1
                writer.write(encode_response(
                    status, payload, keep_alive=keep, extra_headers=extra
                ))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- lifecycle ---------------------------------------------------------

    async def _on_start(self) -> None:
        """Hook run on the loop after binding, before serving."""

    async def _on_stop(self) -> None:
        """Hook run on the loop as serving winds down."""

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._aio_server = await asyncio.start_server(
            self._serve_connection, self.host, self._requested_port
        )
        self.port = self._aio_server.sockets[0].getsockname()[1]
        await self._on_start()
        self._ready.set()
        try:
            async with self._aio_server:
                await self._aio_server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self._on_stop()

    def run(self) -> None:
        """Serve until cancelled (blocks; the CLI's foreground path)."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            pass

    def start(self, timeout: float = 10.0) -> "AsyncHTTPBase":
        """Serve on a background thread; returns once the port is bound."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.run, name=self._thread_name, daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("asyncio server failed to bind in time")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop serving and join the background thread (idempotent)."""
        if self._stopping:
            return
        self._stopping = True
        loop = self._loop
        if loop is not None and loop.is_running():
            def _shutdown() -> None:
                if self._aio_server is not None:
                    self._aio_server.close()
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def url(self) -> str:
        """The bound base URL (valid once started)."""
        if self.port is None:
            raise RuntimeError("server is not bound yet")
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "AsyncHTTPBase":
        """Context-manager entry: start on a background thread."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: stop and join."""
        self.stop()


def try_fast_plan(
    server: PlanServer, payload: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """The response for ``payload`` iff it is a clean cache hit, else None.

    Only well-formed plain plan requests qualify; anything surprising
    (bad field types, unknown commands) falls through to
    :func:`handle_request` on the executor, which owns validation and
    the error taxonomy.
    """
    if payload.get("cmd", "plan") != "plan":
        return None
    total = payload.get("total")
    if not isinstance(total, int) or isinstance(total, bool) or total < 0:
        return None
    partitioner = payload.get("partitioner")
    if partitioner is not None and not isinstance(partitioner, str):
        return None
    options = payload.get("options") or {}
    if not isinstance(options, dict):
        return None
    try:
        # Bi-objective requests ride the fast lane too: a cached front is
        # exactly as cheap to serve as a cached time plan.  Validation
        # failures fall through so the executor path owns the 400.
        kind, objective = validate_objective(payload, server)
        hit = server.try_cached(total, partitioner, options, kind, objective)
    except Exception:
        # Let the slow path produce the typed error response.
        return None
    if hit is None:
        return None
    out = hit.to_dict()
    # Fast-lane acks carry the same durability honesty as the slow
    # path: a hit served while the cache is memory-only may not
    # survive this node's crash.
    if server.ack_durable() is False:
        out["durable"] = False
    if payload.get("id") is not None:
        out["id"] = payload["id"]
    return out


class AioFrontend(AsyncHTTPBase):
    """Asyncio HTTP transport for a :class:`PlanServer`.

    Args:
        server: the plan server to expose.
        host: bind address.
        port: bind port (0 picks an ephemeral one; read :attr:`port`).
        max_body_bytes: request-body cap; larger bodies get 413 and the
            connection is closed.
        extra_routes: mapping of ``"METHOD /path-prefix"`` to
            :data:`RouteHandler`; matched by longest prefix after the
            built-in routes.  Handlers run inline on the loop.
        plan_hook: optional callable invoked inline before each plan
            request is served.  The fleet uses it to model heterogeneous
            shard service rates (a blocking sleep genuinely consumes this
            worker's serving capacity, exactly like a slower processor).
        executor_threads: thread-pool size for the miss path.
    """

    def __init__(
        self,
        server: PlanServer,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
        extra_routes: Optional[Mapping[str, RouteHandler]] = None,
        plan_hook: Optional[Callable[[], None]] = None,
        executor_threads: int = 8,
    ) -> None:
        super().__init__(host, port, max_body_bytes, "fupermod-aio-frontend")
        self.server = server
        self.extra_routes = dict(extra_routes or {})
        self.plan_hook = plan_hook
        self._pool = ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="fupermod-aio"
        )

    def _route_extra(
        self, method: str, path: str, payload: Optional[Dict[str, Any]]
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Dispatch to the longest-prefix extra route, or None."""
        want = f"{method} "
        best: Optional[Tuple[str, RouteHandler]] = None
        for route, handler in self.extra_routes.items():
            if not route.startswith(want):
                continue
            prefix = route[len(want):]
            if path == prefix or path.startswith(prefix):
                if best is None or len(prefix) > len(best[0]):
                    best = (prefix, handler)
        if best is None:
            return None
        return best[1](path, payload)

    async def _respond_plan(
        self, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Serve one decoded plan-protocol object (fast lane, then pool)."""
        if self.plan_hook is not None and payload.get("cmd", "plan") == "plan":
            self.plan_hook()
        fast = try_fast_plan(self.server, payload)
        if fast is not None:
            return 200, fast
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(
            self._pool, handle_request, self.server, payload
        )
        if "error" in response:
            return response.pop("code", 400), response
        return 200, response

    async def _handle_one(
        self, method: str, path: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Reply:
        path = path.split("?", 1)[0]
        norm = path.rstrip("/") or "/"
        if method == "GET":
            if norm == "/stats":
                return 200, {"stats": self.server.stats()}, None
            if norm == "/metrics":
                return 200, {"metrics": self.server.metrics()}, None
            if norm == "/health":
                health: Dict[str, Any] = {"ok": True}
                durable = self.server.ack_durable()
                if durable is not None:
                    health["durable"] = durable
                return 200, health, None
            extra = self._route_extra("GET", path, None)
            if extra is not None:
                return extra[0], extra[1], None
            return 404, {"error": f"no such endpoint {path!r}"}, None
        if method == "POST":
            try:
                payload = json.loads(body.decode("utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("request body must be a JSON object")
            except (UnicodeDecodeError, ValueError) as exc:
                return 400, {"error": f"bad JSON: {exc}"}, None
            merge_deadline_header(payload, headers)
            if norm == "/plan":
                status, response = await self._respond_plan(payload)
                return status, response, None
            if norm == "/feedback":
                # Same executor path as plans: handle_request dispatches
                # cmd="feedback" and owns the 400/403/429 taxonomy.  The
                # fast lane and plan hook ignore non-plan commands, so
                # reusing _respond_plan cannot serve feedback from cache.
                payload["cmd"] = "feedback"
                status, response = await self._respond_plan(payload)
                return status, response, None
            extra = self._route_extra("POST", path, payload)
            if extra is not None:
                return extra[0], extra[1], None
            return 404, {"error": f"no such endpoint {path!r}"}, None
        return 404, {"error": f"unsupported method {method}"}, None

    def run(self) -> None:
        """Serve until cancelled (blocks; the CLI's foreground path)."""
        try:
            super().run()
        finally:
            self._pool.shutdown(wait=False)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop serving, join the thread, shut the executor down."""
        if self._stopping:
            return
        super().stop(timeout)
        self._pool.shutdown(wait=False)
