"""One append-only journal discipline for every durable log.

Four journals grew the same idiom independently -- the plan WAL
(:mod:`repro.serve.wal`), the lineage WAL (:mod:`repro.serve.lineage`),
the hint log (:mod:`repro.serve.replicate`) and the sweep checkpoint
(:mod:`repro.io.checkpoint`): one fsynced JSON line per committed
record, a torn final line (SIGKILL mid-append) forgiven on replay,
interior corruption refused.  :class:`AppendJournal` is that idiom
extracted once, so all four share a single recovery contract and --
the point of the extraction -- a single place to inject storage faults:

* **append-is-commit** -- :meth:`_write_line` opens lazily, appends one
  ``json.dumps(..., sort_keys=True)`` line, flushes and fsyncs; once it
  returns the record is durable;
* **the fsyncgate rule** -- when a write *or an fsync* fails, the file
  handle is discarded before the error propagates.  A later fsync on
  the same handle may report success without covering the failed pages
  (the PostgreSQL fsyncgate lesson), so the only safe continuation is
  a fresh ``open()`` -- and before the next append uses it, any torn
  partial record the failure left at the tail is truncated away
  (*taint repair*), so appending after a short write can never weld a
  fragment onto the next record;
* **torn-tail replay** -- :meth:`replay_lines` returns the validated
  records, the byte length of the well-formed prefix (for truncation)
  and whether a torn tail was dropped; damage anywhere except the final
  line raises :class:`~repro.errors.PersistenceError`;
* **an injectable opener** -- every file touch (append, replay,
  truncate, reset) goes through ``self.opener``, so a single
  constructor argument splices :func:`repro.faults.disk.faulty_open`
  into any journal without that journal knowing faults exist.

Directory durability: creating the journal file and truncating or
resetting it are followed by a best-effort :func:`fsync_dir` of the
parent directory -- a crash between the metadata change and the
directory flush can otherwise lose the file itself.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.errors import PersistenceError

PathLike = Union[str, Path]

#: Anything that can stand in for the built-in ``open`` (the storage
#: fault seam; see :func:`repro.faults.disk.faulty_open`).
Opener = Callable[..., Any]


def fsync_dir(path: PathLike) -> None:
    """Flush a directory so a just-created/renamed file survives a crash.

    ``os.replace`` and file creation update the parent directory; until
    that directory inode is fsynced, a power cut can forget the rename
    while keeping the data blocks.  Best-effort: platforms that cannot
    open directories (or refuse to fsync them) are silently skipped --
    the file data itself was already fsynced by the caller.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class JournalFormatError(PersistenceError):
    """A line that is not even the right *kind* of record.

    Raised for magic/version mismatches, as opposed to a record of the
    right kind with damaged contents.  The distinction matters only at
    the tail: a torn final line of our own journal is forgivable, but
    :class:`~repro.io.checkpoint.SweepCheckpoint` refuses a *foreign*
    final line (a complete record of some other file format means the
    path points at the wrong file, not at a crashed append).
    """


class AppendJournal:
    """Append-only, fsynced JSON-lines journal (the shared discipline).

    Subclasses set the class attributes below and implement
    :meth:`_validate` for their record vocabulary; the base owns the
    append path, the torn-tail replay loop and the lifecycle.

    Args:
        path: the journal file; created (with its parent directory) on
            the first append.
        fsync: fsync every appended record (the durability guarantee;
            disable only in benchmarks that measure the no-sync floor).
        opener: ``open``-compatible callable used for every file access
            -- the storage fault injection seam.  A returned object with
            an ``fsync()`` method is synced through it instead of
            ``os.fsync`` (so a wrapping :class:`repro.faults.disk.FaultyFile`
            can fail the sync, not just the write).

    Appends are not internally locked -- owners serialise them so
    journal order always matches apply order.
    """

    #: First-field sentinel every record must carry.
    magic: str = "fupermod-journal"
    #: Record format version (mismatches are refused on replay).
    version: int = 1
    #: Noun used in corruption messages: "not a <record_name> record".
    record_name: str = "journal"
    #: Noun used in version messages: "unsupported <log_name> version".
    log_name: str = "journal"
    #: Noun used in op messages: "unknown <op_name> operation".
    op_name: str = "journal"
    #: Allowed values of the ``op`` field (empty = records carry no op).
    ops: Tuple[str, ...] = ()
    #: Keep the append handle open across writes; per-write open/close
    #: when False (the sweep checkpoint's historical behaviour, which
    #: survives its own ``compact``'s ``os.replace`` and ``clear``).
    keep_handle: bool = True

    def __init__(
        self,
        path: PathLike,
        fsync: bool = True,
        opener: Optional[Opener] = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.opener: Opener = opener if opener is not None else open
        self._handle: Any = None
        # A failed append may have left a torn partial record at the
        # tail (a short write persists a prefix); appending after it
        # would weld the fragment onto the next record and turn a
        # forgivable torn tail into fatal interior corruption.  The
        # flag makes the next append repair the tail first.
        self._tainted = False
        #: Records appended (or replayed) since the last reset; owners
        #: with compaction thresholds count against this.
        self.records = 0
        #: Appends that failed with an OSError (storage fault visibility).
        self.append_errors = 0

    @property
    def exists(self) -> bool:
        """Whether a journal file is present on disk."""
        return self.path.exists()

    # -- appending ---------------------------------------------------------

    def _stamp(self, **fields: Any) -> dict:
        """A record dict carrying the journal's magic and version."""
        return {"magic": self.magic, "v": self.version, **fields}

    def _sync(self, handle: Any) -> None:
        """fsync through the handle's own method when it has one.

        A plain file syncs via ``os.fsync``; an injected
        :class:`~repro.faults.disk.FaultyFile` exposes ``fsync()`` so
        the fault plan can fail the sync itself.
        """
        sync = getattr(handle, "fsync", None)
        if callable(sync):
            sync()
        else:
            os.fsync(handle.fileno())

    def _write_line(self, record: dict) -> None:
        """Durably append one record; committed once this returns."""
        line = json.dumps(record, sort_keys=True)
        try:
            if self._handle is None:
                if self._tainted:
                    self._repair_tail()
                created = not self.path.exists()
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.opener(self.path, "a", encoding="utf-8")
                if created and self.fsync:
                    fsync_dir(self.path.parent)
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                self._sync(self._handle)
        except OSError as exc:
            self.append_errors += 1
            self._tainted = True
            # The fsyncgate rule: a handle whose write or fsync failed
            # may silently never cover this data, even if a later fsync
            # on it reports success.  Drop it; the next append reopens.
            self._discard_handle()
            raise PersistenceError(
                f"cannot journal to {self.path}: {exc}"
            ) from exc
        if not self.keep_handle:
            self._discard_handle()
        self.records += 1

    def _repair_tail(self) -> None:
        """Truncate a torn partial record a failed short write left behind.

        Records are single lines with no interior newline (``json.dumps``
        escapes control characters), so cutting back to the last newline
        removes exactly the fragment -- complete records, including ones
        whose *fsync* failed after the write landed, are untouched.
        """
        if not self.path.exists():
            self._tainted = False
            return
        with self.opener(self.path, "r+b") as handle:
            data = handle.read()
            cut = data.rfind(b"\n") + 1
            if cut != len(data):
                handle.truncate(cut)
                handle.flush()
                self._sync(handle)
        self._tainted = False

    # -- replay ------------------------------------------------------------

    def replay_lines(self) -> Tuple[List[Any], int, bool]:
        """Read the journal back: ``(entries, valid_bytes, dropped_tail)``.

        ``entries`` holds whatever :meth:`_validate` returned for each
        well-formed line, *including* ``None`` placeholders for records
        it chose to skip (e.g. foreign fingerprint versions) -- callers
        filter, so they can still count skipped-but-valid lines.
        ``valid_bytes`` is the length of the well-formed prefix; a
        recovering owner truncates there so the torn tail of an
        interrupted commit cannot corrupt later appends.  A missing
        journal is empty; a torn *final* line is dropped
        (``dropped_tail``); corruption anywhere else raises
        :class:`~repro.errors.PersistenceError`.
        """
        if not self.path.exists():
            return [], 0, False
        try:
            with self.opener(self.path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError) as exc:
            raise PersistenceError(f"cannot read {self.path}: {exc}") from exc
        entries: List[Any] = []
        valid_bytes = 0
        dropped = False
        lines = text.split("\n")
        # A well-formed journal ends with a newline, so the final split
        # element is empty; anything else is a torn tail.
        body, tail = lines[:-1], lines[-1]
        if tail:
            dropped = True
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                valid_bytes += len(line.encode("utf-8")) + 1
                continue
            try:
                entry = self._parse(line, lineno)
            except PersistenceError as exc:
                if lineno == len(body) and not tail \
                        and self._tail_forgivable(exc):
                    # Torn final line: the crash interrupted this
                    # commit; everything before it is intact.
                    dropped = True
                    break
                raise
            entries.append(entry)
            valid_bytes += len(line.encode("utf-8")) + 1
        return entries, valid_bytes, dropped

    def _parse(self, line: str, lineno: int) -> Any:
        """Decode and frame-check one line, then delegate to the subclass."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"{self.path}:{lineno}: {exc}") from None
        if not isinstance(record, dict) or record.get("magic") != self.magic:
            raise JournalFormatError(
                f"{self.path}:{lineno}: not a {self.record_name} record"
            )
        if record.get("v") != self.version:
            raise JournalFormatError(
                f"{self.path}:{lineno}: unsupported {self.log_name} version "
                f"{record.get('v')!r}"
            )
        return self._validate(record, lineno)

    def _check_op(self, record: dict, lineno: int) -> str:
        """The record's op, or raise when outside the journal's vocabulary."""
        op = record.get("op")
        if op not in self.ops:
            raise JournalFormatError(
                f"{self.path}:{lineno}: unknown {self.op_name} "
                f"operation {op!r}"
            )
        return str(op)

    def _validate(self, record: dict, lineno: int) -> Any:
        """Subclass hook: check record contents, return the replay entry.

        Return ``None`` to skip the record while still counting the
        line as well-formed.  Raise :class:`PersistenceError` for
        damaged contents (forgiven only as a torn tail).
        """
        return record

    def _tail_forgivable(self, exc: PersistenceError) -> bool:
        """Whether a damaged *final* line may be dropped as a torn tail.

        The default forgives everything (a crash can tear a line into
        any shape).  Subclasses that must refuse complete-but-foreign
        records even at the tail override this to inspect ``exc``.
        """
        return True

    # -- lifecycle ---------------------------------------------------------

    def truncate(self, valid_bytes: int) -> None:
        """Cut the journal back to its well-formed prefix."""
        if not self.path.exists():
            return
        self._discard_handle()
        try:
            with self.opener(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                self._sync(handle)
        except OSError as exc:
            raise PersistenceError(
                f"cannot truncate {self.path}: {exc}"
            ) from exc
        fsync_dir(self.path.parent)
        self._tainted = False

    def reset(self) -> None:
        """Empty the journal (after its contents reached a snapshot)."""
        self._discard_handle()
        try:
            with self.opener(self.path, "w", encoding="utf-8") as handle:
                handle.flush()
                self._sync(handle)
        except OSError as exc:
            raise PersistenceError(f"cannot reset {self.path}: {exc}") from exc
        fsync_dir(self.path.parent)
        self._tainted = False
        self.records = 0

    def _discard_handle(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:  # pragma: no cover - close-on-error path
                pass

    def close(self) -> None:
        """Close the append handle (the journal file stays on disk)."""
        self._discard_handle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({str(self.path)!r}, "
            f"records={self.records})"
        )
