"""Wire front ends for the plan server: JSON-lines stdio and HTTP.

Both front ends speak the same tiny protocol over a
:class:`~repro.serve.server.PlanServer`:

* a **plan** request is an object with ``total`` (required),
  ``partitioner``, ``options`` and ``deadline`` (optional, seconds), and
  a client-chosen ``id`` echoed back in the response; bi-objective
  requests add ``objective: "pareto"`` plus optional ``alpha`` (time
  weight in ``[0, 1]``), ``energy_cap`` (joule budget) and ``npoints``
  (front resolution) -- all validated here with typed 400s naming the
  offending field;
* a **stats** request (``{"cmd": "stats"}`` on stdio, ``GET /stats`` over
  HTTP) returns the consolidated counter snapshot;
* a **metrics** request (``{"cmd": "metrics"}``, ``GET /metrics``) returns
  the same counters under the versioned ``fupermod-metrics/4`` schema
  (cache hits/misses, coalesced, shed, per-fingerprint breaker state,
  served plans by kind under ``plans_by_kind``, feedback counters when
  closed-loop refinement is attached, a ``replication`` section when
  the worker runs with a replica set, and a ``durability`` section --
  mode, trips, heals, append errors -- when the cache is durable);
* a **plan** response answered while the durability layer is degraded
  to memory-only mode carries ``"durable": false`` (omitted otherwise):
  the plan is correct but may not survive the serving node's crash
  until the disk heals and the cache re-syncs;
* a **feedback** request (``{"cmd": "feedback"}`` on stdio,
  ``POST /feedback`` over HTTP) reports actual per-rank timings into the
  closed-loop refinement path (:mod:`repro.serve.feedback`); servers
  without an attached controller answer 400;
* errors come back as ``{"error": ..., "code": ...}`` with the connection
  kept alive -- one bad request must not kill a serving session.

Error responses carry the failure taxonomy so clients can tell *retry
later* from *fix your request*:

====  ===========================================================
code  meaning
====  ===========================================================
400   malformed request (bad JSON, missing/invalid fields), or a
      feedback report rejected on content (``rejected`` reasons named)
403   the feedback source is quarantined; its reports are refused
404   unknown endpoint
413   request body larger than the transport's cap
429   feedback rate limit exceeded (``retry_after`` seconds included;
      HTTP adds ``Retry-After``)
500   the solve failed internally (typed fault, no fallback)
503   shed by admission control, circuit open with no fallback, or --
      at the fleet router -- no live shard could serve the request
      (``retry_after`` seconds included; HTTP adds ``Retry-After``)
504   the request's deadline expired before the plan arrived; at the
      fleet router, the propagated per-hop budget ran out before a
      shard answered (retries never outlive the caller)
====  ===========================================================

Fleet replication failures never surface here: replica pushes are
asynchronous and best-effort, a failed push becomes a durable hint
(hinted handoff), and divergence left over after a partition heals is
repaired by anti-entropy -- all off the request path (see
:mod:`repro.serve.replicate` and docs/API.md "Fleet replication &
partition tolerance").

A request arriving over HTTP may carry an ``X-Fupermod-Deadline``
header: the remaining time budget (seconds) propagated by the previous
hop.  It merges into the payload's ``deadline`` as a minimum -- a hop
can shrink, never extend, the budget it was granted.

The stdio transport (``fupermod serve``) reads one JSON object per line
and writes one JSON object per line, which makes it scriptable from any
language and trivially testable.  The HTTP transport
(``fupermod serve --http``) uses only the standard library
(:mod:`http.server`), honouring the no-new-dependencies rule.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, IO, Optional

import math

from repro.core.partition.pareto import MAX_FRONT_POINTS
from repro.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    FeedbackRejected,
    FuPerModError,
    QuarantineError,
    ServiceOverloadError,
)
from repro.serve.plan import PLAN_KINDS
from repro.serve.server import PlanServer

#: Default request-body cap for the HTTP transport (1 MiB).
MAX_BODY_BYTES = 1 << 20


def validate_objective(
    payload: Dict[str, Any], server: PlanServer
) -> "tuple[str, Dict[str, Any]]":
    """Extract ``(kind, objective)`` from a plan payload, or raise a 400.

    Every malformed-objective failure raises *bare*
    :class:`~repro.errors.FuPerModError` naming the offending field, so
    both transports answer 400 (fix your request), never 500.
    """
    kind = payload.get("objective", "time")
    if not isinstance(kind, str) or kind not in PLAN_KINDS:
        raise FuPerModError(
            f"'objective' must be one of {list(PLAN_KINDS)}, got {kind!r}"
        )
    objective: Dict[str, Any] = {}
    alpha = payload.get("alpha")
    if alpha is not None:
        if (
            not isinstance(alpha, (int, float))
            or isinstance(alpha, bool)
            or not 0.0 <= float(alpha) <= 1.0
        ):
            raise FuPerModError(
                f"'alpha' must be a number in [0, 1], got {alpha!r}"
            )
        objective["alpha"] = float(alpha)
    cap = payload.get("energy_cap")
    if cap is not None:
        if (
            not isinstance(cap, (int, float))
            or isinstance(cap, bool)
            or not math.isfinite(float(cap))
            or not float(cap) > 0.0
        ):
            raise FuPerModError(
                f"'energy_cap' must be a positive finite number of joules, "
                f"got {cap!r}"
            )
        objective["energy_cap"] = float(cap)
    npoints = payload.get("npoints")
    if npoints is not None:
        if (
            not isinstance(npoints, int)
            or isinstance(npoints, bool)
            or not 2 <= npoints <= MAX_FRONT_POINTS
        ):
            raise FuPerModError(
                f"'npoints' must be an integer in [2, {MAX_FRONT_POINTS}], "
                f"got {npoints!r}"
            )
        objective["npoints"] = npoints
    if kind == "time" and objective:
        raise FuPerModError(
            f"objective parameters {sorted(objective)} need "
            f"'objective': 'pareto'; a time plan takes none"
        )
    if kind != "time" and server.energy_models is None:
        raise FuPerModError(
            f"this server has no energy models attached; "
            f"{kind!r} plans are unavailable"
        )
    return kind, objective


def merge_deadline_header(
    payload: Dict[str, Any], headers: Optional[Dict[str, Optional[str]]]
) -> None:
    """Fold a propagated ``X-Fupermod-Deadline`` header into ``payload``.

    The header carries the *remaining* per-request budget (seconds) from
    the previous hop; the payload may carry its own ``deadline`` field.
    The effective budget is the minimum of the two -- a hop can only
    shrink the time it grants downstream, never extend it.  Malformed
    or non-positive header values are ignored (a damaged header must
    not reject an otherwise valid request).  Header names are expected
    lower-cased.
    """
    if not headers:
        return
    raw = headers.get("x-fupermod-deadline")
    if raw is None:
        return
    try:
        budget = float(raw)
    except (TypeError, ValueError):
        return
    if budget <= 0.0:
        return
    existing = payload.get("deadline")
    try:
        existing_f = float(existing) if existing is not None else None
    except (TypeError, ValueError):
        existing_f = None
    payload["deadline"] = (
        budget if existing_f is None else min(existing_f, budget)
    )


def handle_request(server: PlanServer, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Serve one decoded protocol object, never raising for bad input.

    Shared by both transports so the protocol cannot drift between them.
    Error responses carry a ``code`` field with the HTTP-status taxonomy
    from the module docstring (the stdio transport passes it through
    verbatim; the HTTP transport promotes it to the response status).
    """
    req_id = payload.get("id")
    try:
        cmd = payload.get("cmd", "plan")
        if cmd == "stats":
            out: Dict[str, Any] = {"stats": server.stats()}
        elif cmd == "metrics":
            out = {"metrics": server.metrics()}
        elif cmd == "plan":
            if "total" not in payload:
                raise FuPerModError("plan request needs a 'total' field")
            total = payload["total"]
            if not isinstance(total, int) or isinstance(total, bool):
                raise FuPerModError(
                    f"'total' must be an integer, got {total!r}"
                )
            if total < 0:
                raise FuPerModError(
                    f"'total' must be non-negative, got {total}"
                )
            options = payload.get("options") or {}
            if not isinstance(options, dict):
                raise FuPerModError("'options' must be an object")
            kind, objective = validate_objective(payload, server)
            deadline = payload.get("deadline")
            if deadline is not None:
                if not isinstance(deadline, (int, float)) or isinstance(
                    deadline, bool
                ) or not deadline > 0:
                    raise FuPerModError(
                        f"'deadline' must be a positive number of seconds, "
                        f"got {deadline!r}"
                    )
            result = server.request(
                total, payload.get("partitioner"), options,
                deadline=deadline, kind=kind, objective=objective,
            )
            out = result.to_dict()
            # The durability degradation ladder: a plan acknowledged
            # while the durable cache is memory-only is correct but may
            # not survive this node's crash -- the ack says so.  The
            # flag lands on the response copy only; cached and
            # journaled results never carry it.
            if server.ack_durable() is False:
                out["durable"] = False
        elif cmd == "feedback":
            if server.feedback is None:
                raise FuPerModError(
                    "this server has no feedback loop attached"
                )
            out = server.feedback.handle(payload)
        else:
            raise FuPerModError(f"unknown command {cmd!r}")
    except ServiceOverloadError as exc:
        out = {"error": str(exc), "code": 503, "shed": True}
        if exc.retry_after is not None:
            out["retry_after"] = exc.retry_after
    except CircuitOpenError as exc:
        out = {"error": str(exc), "code": 503, "circuit_open": True}
        if exc.retry_after is not None:
            out["retry_after"] = exc.retry_after
    except DeadlineExceeded as exc:
        out = {"error": str(exc), "code": 504}
    except QuarantineError as exc:
        out = {
            "error": str(exc),
            "code": 403,
            "quarantined": True,
            "source": exc.source,
        }
    except FeedbackRejected as exc:
        # Rate limiting is worth retrying (429 + Retry-After); content
        # rejections are not (400) -- retrying the same lie cannot help.
        out = {
            "error": str(exc),
            "code": 429 if exc.retry_after is not None else 400,
            "rejected": list(exc.reasons),
            "source": exc.source,
        }
        if exc.retry_after is not None:
            out["retry_after"] = exc.retry_after
    except FuPerModError as exc:
        # Validation errors above raise bare FuPerModError (400); any
        # subclass reaching here escaped the solve path itself (500).
        code = 400 if type(exc) is FuPerModError else 500
        out = {"error": str(exc), "code": code}
    except (TypeError, ValueError) as exc:
        out = {"error": f"bad request: {exc}", "code": 400}
    if req_id is not None:
        out["id"] = req_id
    return out


def serve_stdio(
    server: PlanServer,
    stdin: IO[str],
    stdout: IO[str],
) -> int:
    """Serve JSON-lines requests from ``stdin`` until EOF or shutdown.

    Returns the number of requests served (shutdown line included), so
    the CLI can log a summary.  Undecodable lines produce an ``error``
    response and the loop continues.
    """
    served = 0
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        served += 1
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            print(json.dumps({"error": f"bad JSON: {exc}", "code": 400}),
                  file=stdout, flush=True)
            continue
        if payload.get("cmd") == "shutdown":
            print(json.dumps({"ok": True, "shutdown": True}), file=stdout,
                  flush=True)
            break
        print(json.dumps(handle_request(server, payload)), file=stdout,
              flush=True)
    return served


class _PlanHTTPHandler(BaseHTTPRequestHandler):
    """Request handler bridging HTTP to :func:`handle_request`."""

    # The bound PlanServer, set by make_http_server on the handler class.
    plan_server: Optional[PlanServer] = None
    # Request-body cap; bodies over this are refused with 413.
    max_body_bytes: int = MAX_BODY_BYTES
    # HTTP/1.1 keeps connections alive between requests (every response
    # carries Content-Length, which 1.1 keep-alive requires).  This is
    # half of the client-side connection-reuse win -- the other half is
    # PlanClient's persistent-connection transport.
    protocol_version = "HTTP/1.1"

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        retry_after = payload.get("retry_after")
        if status in (429, 503) and retry_after is not None:
            # RFC 7231 Retry-After in whole seconds, at least 1.
            self.send_header(
                "Retry-After", str(max(1, int(round(retry_after))))
            )
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """``GET /stats`` or ``GET /metrics``; anything else 404."""
        path = self.path.rstrip("/")
        assert self.plan_server is not None
        if path == "/stats":
            self._send(200, {"stats": self.plan_server.stats()})
        elif path == "/metrics":
            self._send(200, {"metrics": self.plan_server.metrics()})
        else:
            self._send(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """``POST /plan`` or ``POST /feedback`` with a JSON body."""
        path = self.path.rstrip("/")
        if path not in ("/plan", "/feedback"):
            self._send(404, {"error": f"no such endpoint {self.path!r}"})
            return
        assert self.plan_server is not None
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send(400, {"error": "bad Content-Length header"})
            return
        if length > self.max_body_bytes:
            # Refuse before reading: an oversized body must not be
            # buffered into memory just to be rejected.
            self._send(413, {
                "error": (
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte cap"
                ),
            })
            self.close_connection = True
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
        except ValueError as exc:
            self._send(400, {"error": f"bad JSON: {exc}"})
            return
        merge_deadline_header(
            payload,
            {"x-fupermod-deadline": self.headers.get("X-Fupermod-Deadline")},
        )
        if path == "/feedback":
            payload["cmd"] = "feedback"
        response = handle_request(self.plan_server, payload)
        status = response.pop("code", None) if "error" in response else None
        self._send(status or (400 if "error" in response else 200), response)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging (the CLI owns the terminal)."""


def make_http_server(
    server: PlanServer,
    host: str = "127.0.0.1",
    port: int = 0,
    max_body_bytes: int = MAX_BODY_BYTES,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP transport for ``server``.

    Returns a :class:`ThreadingHTTPServer`; the caller runs
    ``serve_forever()`` (the CLI) or drives it from a thread and reads
    ``server_address`` for the bound port (tests pass ``port=0``).
    ``max_body_bytes`` caps POST bodies; larger ones get 413.
    """
    handler = type(
        "PlanHTTPHandler",
        (_PlanHTTPHandler,),
        {"plan_server": server, "max_body_bytes": max_body_bytes},
    )
    return ThreadingHTTPServer((host, port), handler)
