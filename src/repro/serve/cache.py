"""Thread-safe LRU plan cache with TTL, byte budget and counters.

The cache maps request keys (content fingerprints) to
:class:`~repro.serve.plan.PlanResult` objects.  Eviction is
least-recently-used, with two optional extra pressures:

* ``ttl`` -- entries older than this many seconds are expired lazily on
  access (the clock is injectable for tests; ``time.monotonic`` by
  default, so wall-clock jumps never mass-expire a cache);
* ``max_bytes`` -- an approximate byte budget; entry sizes are estimated
  from their JSON encoding, and inserts evict LRU entries until the
  budget holds.

Every decision is counted: :class:`CacheStats` snapshots hits, misses,
inserts, evictions and expirations so tests and benchmarks can assert the
serving contract ("repeated identical requests never recompute") on the
counters rather than on timing.

A secondary index by model-set fingerprint supports
:meth:`PlanCache.nearest` -- the warm-start lookup: "the cached plan for
these same devices whose total is closest to mine".
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import PartitionError
from repro.serve.plan import PlanResult


def _spec_kind(spec: Optional[Tuple[Any, ...]]) -> str:
    """The plan kind a request spec names (legacy 3-tuples mean "time").

    Specs recorded before plan kinds existed are
    ``(total, partitioner, options)``; kinded specs append the kind as a
    fourth element.  Centralised so the cache, the WAL replayer and the
    replicator all read specs the same way.
    """
    if spec is not None and len(spec) >= 4:
        return str(spec[3])
    return "time"


def check_spec_kind(result: PlanResult, spec: Optional[Tuple[Any, ...]]) -> None:
    """Refuse a spec/result pair that disagrees on the plan kind.

    Entry keys embed the plan kind
    (:func:`~repro.serve.fingerprint.fingerprint_objective_request`), so
    a mismatched pair means some caller built the key for one kind and
    the payload for another -- caching it would let a ``"time"`` plan
    answer a ``"pareto"`` request or vice versa.  Called by
    :meth:`PlanCache.put` and, *before journaling*, by
    :meth:`~repro.serve.wal.DurablePlanCache.put`, so a poisoned entry
    can reach neither memory nor the WAL.

    Raises:
        PartitionError: on a kind mismatch.
    """
    if spec is not None and _spec_kind(spec) != result.kind:
        raise PartitionError(
            f"plan kind mismatch: spec says {_spec_kind(spec)!r} but "
            f"result is {result.kind!r}; refusing to cache a "
            f"cross-kind aliased entry"
        )


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's counters.

    Attributes:
        hits: gets that returned a live entry.
        misses: gets that found nothing (or only an expired entry).
        inserts: puts that stored a new entry.
        evictions: entries dropped for capacity or byte-budget pressure.
        expirations: entries dropped because their TTL ran out.
        entries: live entry count at snapshot time.
        bytes_used: estimated bytes of the live entries.
    """

    hits: int
    misses: int
    inserts: int
    evictions: int
    expirations: int
    entries: int
    bytes_used: int

    @property
    def hit_rate(self) -> float:
        """Fraction of gets served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (for ``/stats`` endpoints)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "entries": self.entries,
            "bytes_used": self.bytes_used,
            "hit_rate": self.hit_rate,
        }


class _Entry:
    """One cached plan plus bookkeeping (internal)."""

    __slots__ = ("result", "models_fp", "stored_at", "nbytes", "spec")

    def __init__(
        self,
        result: PlanResult,
        models_fp: str,
        stored_at: float,
        nbytes: int,
        spec: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        self.result = result
        self.models_fp = models_fp
        self.stored_at = stored_at
        self.nbytes = nbytes
        self.spec = spec


def _estimate_bytes(result: PlanResult) -> int:
    """Approximate in-cache footprint as the JSON encoding's length."""
    return len(json.dumps(result.to_dict(), separators=(",", ":")))


class PlanCache:
    """LRU cache for partition plans, safe for concurrent serving threads.

    Args:
        capacity: maximum entry count (must be positive).
        ttl: optional time-to-live in seconds; ``None`` disables expiry.
        max_bytes: optional approximate byte budget; ``None`` disables it.
        clock: monotonic-seconds source, injectable for deterministic
            TTL tests.

    All public methods take the internal lock, so interleaved get/put
    from many threads never corrupts the LRU order or the counters.
    """

    def __init__(
        self,
        capacity: int = 128,
        ttl: Optional[float] = None,
        max_bytes: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive, got {ttl}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self._capacity = capacity
        self._ttl = ttl
        self._max_bytes = max_bytes
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._by_models: Dict[str, Set[str]] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._evictions = 0
        self._expirations = 0

    # -- internal helpers (caller holds the lock) --------------------------

    def _drop(self, key: str) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.nbytes
        peers = self._by_models.get(entry.models_fp)
        if peers is not None:
            peers.discard(key)
            if not peers:
                del self._by_models[entry.models_fp]

    def _expired(self, entry: _Entry, now: float) -> bool:
        return self._ttl is not None and now - entry.stored_at > self._ttl

    def _live_entry(self, key: str, now: float) -> Optional[_Entry]:
        """The entry for ``key`` if present and unexpired, else None.

        The single expiry gate for every lookup path (``get``,
        ``nearest``, ``__contains__``): a TTL-expired entry is evicted
        and counted as an expiration *here*, so no path can ever hand
        out (or warm-start from) an entry another path would refuse.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._expired(entry, now):
            self._drop(key)
            self._expirations += 1
            return None
        return entry

    def _evict_for_space(self) -> None:
        while len(self._entries) > self._capacity:
            key = next(iter(self._entries))
            self._drop(key)
            self._evictions += 1
        if self._max_bytes is not None:
            while self._bytes > self._max_bytes and len(self._entries) > 1:
                key = next(iter(self._entries))
                self._drop(key)
                self._evictions += 1

    # -- public API --------------------------------------------------------

    def get(self, key: str) -> Optional[PlanResult]:
        """The cached plan for ``key``, or None (counting hit/miss)."""
        with self._lock:
            entry = self._live_entry(key, self._clock())
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry.result

    def peek(self, key: str) -> Optional[PlanResult]:
        """The cached plan for ``key`` without counting a hit or a miss.

        Sibling cache-fill probes from peer shards use this: a peer
        peeking for a plan must not skew this shard's hit-rate counters
        or refresh the entry's LRU position (the peer's interest says
        nothing about local access patterns).  TTL expiry still applies
        -- a peek never hands out an entry :meth:`get` would refuse.
        """
        with self._lock:
            entry = self._live_entry(key, self._clock())
            return entry.result if entry is not None else None

    def put(
        self,
        key: str,
        result: PlanResult,
        models_fp: str,
        spec: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Store ``result`` under ``key``, evicting as needed.

        ``models_fp`` feeds the secondary warm-start index; pass the
        model-set fingerprint the plan was computed against.  ``spec``
        optionally records the ``(total, partitioner, options[, kind])``
        the plan answers, so a model refit can re-solve invalidated
        entries (:meth:`invalidate_models`) without reverse-engineering
        requests from result keys.

        Raises:
            PartitionError: when ``spec`` names a plan kind that differs
                from ``result.kind``.  Entry keys embed the plan kind
                (``fingerprint_objective_request``), so a mismatched
                spec/result pair means some caller built the key for one
                kind and the payload for another -- caching it would let
                a ``"time"`` plan answer a ``"pareto"`` request or vice
                versa.  Refuse at the boundary instead.
        """
        check_spec_kind(result, spec)
        with self._lock:
            if key in self._entries:
                self._drop(key)
            nbytes = _estimate_bytes(result)
            self._entries[key] = _Entry(
                result, models_fp, self._clock(), nbytes, spec
            )
            self._bytes += nbytes
            self._by_models.setdefault(models_fp, set()).add(key)
            self._inserts += 1
            self._evict_for_space()

    def nearest(
        self,
        models_fp: str,
        total: int,
        exclude: Optional[str] = None,
        kind: str = "time",
    ) -> Optional[PlanResult]:
        """The live cached plan for the same model set nearest in total.

        This is the warm-start lookup: an exact-key miss can still find a
        plan for the *same devices* at a different problem size, whose
        equal-time level scales to a tight initial bracket.  Ties go to
        the smaller total (conservative bracket).  Only plans of the same
        ``kind`` are considered: a pareto front's selected point sits at
        some blend of time and energy, so its level would mis-seed a
        time-only bisection (and vice versa).  Returns None when no live
        same-kind plan for ``models_fp`` exists.
        """
        with self._lock:
            keys = self._by_models.get(models_fp)
            if not keys:
                return None
            now = self._clock()
            best: Optional[_Entry] = None
            best_key: Optional[str] = None
            # _live_entry evicts expired entries, mutating the index set;
            # iterate a copy.
            for key in list(keys):
                entry = self._live_entry(key, now)
                if entry is None or key == exclude or entry.result.total <= 0:
                    continue
                if entry.result.kind != kind:
                    continue
                if best is None or (
                    abs(entry.result.total - total),
                    entry.result.total,
                ) < (abs(best.result.total - total), best.result.total):
                    best, best_key = entry, key
            if best_key is not None:
                self._entries.move_to_end(best_key)
            return best.result if best is not None else None

    def export_entry(
        self, key: str
    ) -> Optional[Tuple[PlanResult, str, Optional[Tuple[Any, ...]]]]:
        """The full stored entry for ``key``: ``(result, models_fp, spec)``.

        The replication and anti-entropy paths use this: pushing a plan
        to a peer needs the model fingerprint and request spec the entry
        was stored under, not just the result.  Like :meth:`peek` it
        neither counts a hit/miss nor refreshes LRU order (a repair
        pulling an entry says nothing about local access patterns), and
        TTL expiry still applies.  Returns None when absent or expired.
        """
        with self._lock:
            entry = self._live_entry(key, self._clock())
            if entry is None:
                return None
            return entry.result, entry.models_fp, entry.spec

    def invalidate(self, key: str) -> bool:
        """Drop one entry; True if it existed."""
        with self._lock:
            if key not in self._entries:
                return False
            self._drop(key)
            return True

    def invalidate_models(self, models_fp: str) -> List[Optional[Tuple[Any, ...]]]:
        """Drop every entry planned against ``models_fp``.

        This is the refit invalidation hook: when a model lineage commits
        a new epoch, plans computed against the *parent* fingerprint are
        stale -- they answer requests correctly for models nobody serves
        any more.  Returns the recorded request spec of each dropped
        entry, oldest-first (``None`` for entries stored without one), so
        the caller can count the drops and warm-re-solve the spec'd ones
        against the child models off the request path.

        Goes through :meth:`invalidate` per key, so subclasses that
        journal invalidations (``DurablePlanCache``) record each drop.
        """
        with self._lock:
            keys = [
                key
                for key in self._entries
                if self._entries[key].models_fp == models_fp
            ]
            specs = [self._entries[key].spec for key in keys]
            for key in keys:
                self.invalidate(key)
            return specs

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._by_models.clear()
            self._bytes = 0

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                inserts=self._inserts,
                evictions=self._evictions,
                expirations=self._expirations,
                entries=len(self._entries),
                bytes_used=self._bytes,
            )

    def __len__(self) -> int:
        """Live entry count."""
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership without touching LRU order or hit/miss counters.

        A TTL-expired entry is evicted here too (counted as an
        expiration), so membership agrees with ``get`` *and* leaves the
        same cache state behind.
        """
        with self._lock:
            return self._live_entry(key, self._clock()) is not None

    # -- persistence (payload shape; file I/O lives in repro.io.plans) -----

    def to_payload(self) -> List[Dict[str, Any]]:
        """Entries oldest-first as JSON-ready dicts (LRU order preserved).

        The optional ``spec`` slot (refit re-solve bookkeeping) is
        emitted only when present, so payloads from spec-less caches are
        byte-identical to the pre-lineage format.
        """
        with self._lock:
            out: List[Dict[str, Any]] = []
            for key, entry in self._entries.items():
                item: Dict[str, Any] = {
                    "key": key,
                    "models_fp": entry.models_fp,
                    "result": entry.result.to_dict(),
                }
                if entry.spec is not None:
                    item["spec"] = list(entry.spec)
                out.append(item)
            return out

    def load_payload(self, payload: List[Dict[str, Any]]) -> int:
        """Insert persisted entries, returning how many were loaded.

        Entries get a *fresh* TTL clock: monotonic timestamps do not
        survive a process restart, so age cannot be carried across one
        (documented in ``docs/API.md``).  Malformed entries raise
        :class:`~repro.errors.PartitionError` via
        :meth:`PlanResult.from_dict`.
        """
        count = 0
        for item in payload:
            result = PlanResult.from_dict(item["result"])
            spec = item.get("spec")
            self.put(
                str(item["key"]),
                result,
                str(item["models_fp"]),
                spec=tuple(spec) if spec is not None else None,
            )
            count += 1
        return count
