"""The fleet router: consistent-hash affinity plus FPM-balanced spillover.

The router is the fleet's single public endpoint.  Every request takes
one of two paths:

* **Affinity routing** (the default): the request's
  :func:`~repro.serve.fingerprint.affinity_key` is looked up on a
  consistent-hash ring (:class:`~repro.serve.hashring.HashRing`), so
  identical requests always land on the same *home* shard and the
  fleet's aggregate cache is the union of the shards' caches, not N
  copies of one.  A dead home fails over to the next shard clockwise --
  the same preference order workers use for sibling-fill probes.
* **Balanced routing** (requests carrying ``"affinity": false``): the
  request stream is apportioned by the repo's own machinery, dogfooded.
  Each worker's *service* is modelled as a functional performance model
  -- a :class:`~repro.core.models.PiecewiseModel` fitted to measured
  batch-latency points, exactly as a compute kernel would be -- and a
  registered partitioner divides a slot budget among the workers the
  way it would divide matrix rows among processors.  The resulting
  integer shares drive a deterministic smooth weighted round-robin.
  Latencies observed in flight refit the models online, so a shard that
  slows down sheds load without operator input.

Plans are **relayed as raw bytes**: the router never re-encodes a
worker's response, which makes plans served through the fleet
bit-identical to plans served by the worker directly (the parity tests
assert this).  Shard failures mark the shard dead and reroute; the
supervisor revives it after a restart.

The router also tracks each shard's **durability mode**: the health
probe loop polls live workers' ``GET /health`` and remembers which ones
report ``"durable": false`` (their :class:`~repro.serve.wal.DurablePlanCache`
tripped to memory-only after exhausting its disk failure budget).
Memory-only shards stay fully routable -- they serve correct plans from
memory -- but candidate ordering deprioritizes them so new cold solves
land on shards whose disks can actually keep the result.  Fleet
``/metrics`` (schema ``fupermod-fleet-metrics/4``) aggregates the
per-shard ``durability`` sections plus the router's own view.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import registry
from repro.core.models import PiecewiseModel
from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError, PartitionError
from repro.serve.aio import (
    MAX_BODY_BYTES, AsyncHTTPBase, Reply, merge_deadline_header,
)
from repro.serve.fingerprint import affinity_key
from repro.serve.hashring import DEFAULT_REPLICAS, HashRing
from repro.serve.shard import DEADLINE_HEADER

#: Slot budget the partitioner divides among workers.  Finer than the
#: worker count by orders of magnitude so shares resolve small speed
#: differences; coarse enough that geometric partitioning is instant.
BALANCE_SLOTS = 240


class RetryBudget:
    """Token-bucket budget for failover retries (the anti-retry-storm).

    The *first* shard tried for a request is always free; every
    additional attempt (a failover after an error) must draw a token.
    Tokens refill at ``rate`` per second up to ``burst``, so a brief
    blip retries freely while a sustained partition quickly degrades to
    "serve from whoever answers first, else fail fast" instead of every
    request hammering the whole candidate list.  Thread-safe; time is
    injected for deterministic tests.
    """

    def __init__(
        self,
        rate: float = 10.0,
        burst: float = 20.0,
        clock=time.monotonic,
    ) -> None:
        if rate < 0.0 or burst <= 0.0:
            raise FuPerModError(
                f"retry budget needs rate >= 0 and burst > 0, "
                f"got rate={rate}, burst={burst}"
            )
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Draw ``tokens`` from the bucket; False means budget exhausted."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Tokens currently in the bucket (refilled to now)."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            return self._tokens


class RoundRobinBalancer:
    """The control: equal turns to every live worker, no model.

    Shares the :class:`FpmBalancer` interface so the router (and the
    benchmark that compares the two) can swap them freely.
    """

    def __init__(self, shard_ids: Sequence[str]) -> None:
        self._ids = sorted(shard_ids)
        self._alive = set(self._ids)
        self._cursor = 0
        self._lock = threading.Lock()

    def seed(self, shard_id: str, points: Sequence[Tuple[float, float]]) -> None:
        """No-op: round-robin has no model to seed."""

    def observe(self, shard_id: str, seconds: float) -> None:
        """No-op: round-robin never adapts."""

    def set_alive(self, shard_id: str, alive: bool) -> None:
        """Mark a worker (un)routable."""
        with self._lock:
            (self._alive.add if alive else self._alive.discard)(shard_id)

    def next(self) -> Optional[str]:
        """The next live worker in strict rotation (None if all dead)."""
        with self._lock:
            if not self._alive:
                return None
            for _ in range(len(self._ids)):
                sid = self._ids[self._cursor % len(self._ids)]
                self._cursor += 1
                if sid in self._alive:
                    return sid
        return None  # pragma: no cover

    def to_dict(self) -> Dict[str, Any]:
        """Snapshot for ``/metrics``."""
        with self._lock:
            return {"policy": "round-robin", "alive": sorted(self._alive)}


class FpmBalancer:
    """Load shares from functional performance models of the workers.

    Args:
        shard_ids: the fleet's worker identities.
        partitioner: registered partitioner dividing the slot budget
            (the dogfooding seam -- the same algorithm that splits
            matrices splits the request stream).
        slots: integer slot budget to divide (resolution of the shares).
        window: sliding-window length of observed per-request latencies
            kept per worker for online refits.
        refresh_every: observations between automatic refits.

    Seeding: the supervisor measures each worker's hit-path service rate
    at startup (timed batches of b requests) and calls :meth:`seed` with
    ``(batch, seconds)`` points; these become the worker's FPM exactly
    as kernel benchmarks become a device's FPM.  :meth:`observe` feeds
    per-request latencies from live traffic; every ``refresh_every``
    observations the models refit from the sliding window and the
    shares re-partition.
    """

    def __init__(
        self,
        shard_ids: Sequence[str],
        partitioner: str = "geometric",
        slots: int = BALANCE_SLOTS,
        window: int = 256,
        refresh_every: int = 64,
    ) -> None:
        if slots < len(shard_ids):
            raise FuPerModError(
                f"{slots} slots cannot cover {len(shard_ids)} workers"
            )
        self.partitioner_name = partitioner
        self.slots = slots
        self.window = window
        self.refresh_every = refresh_every
        self.refits = 0
        self._ids = sorted(shard_ids)
        self._alive = set(self._ids)
        self._seeds: Dict[str, List[MeasurementPoint]] = {}
        self._observed: Dict[str, Deque[float]] = {
            sid: deque(maxlen=window) for sid in self._ids
        }
        self._since_refresh = 0
        self._weights: Dict[str, int] = {sid: 1 for sid in self._ids}
        self._swrr: Dict[str, int] = {sid: 0 for sid in self._ids}
        self._lock = threading.Lock()

    # -- model fitting -----------------------------------------------------

    def seed(self, shard_id: str, points: Sequence[Tuple[float, float]]) -> None:
        """Install startup-probe measurements: ``(batch size, seconds)``."""
        fitted = [
            MeasurementPoint(d=max(1, int(round(b))), t=max(float(t), 1e-9))
            for b, t in points
        ]
        with self._lock:
            self._seeds[shard_id] = fitted
            self._refit_locked()

    def observe(self, shard_id: str, seconds: float) -> None:
        """Feed one observed request latency; refits periodically."""
        if seconds <= 0.0:
            return
        with self._lock:
            window = self._observed.get(shard_id)
            if window is None:
                return
            window.append(seconds)
            self._since_refresh += 1
            if self._since_refresh >= self.refresh_every:
                self._refit_locked()

    def _model_for(self, sid: str) -> Optional[PiecewiseModel]:
        """This worker's service FPM from observations, else seeds."""
        window = self._observed.get(sid)
        if window and len(window) >= 8:
            mean = sum(window) / len(window)
            points = [
                MeasurementPoint(d=b, t=max(mean * b, 1e-9))
                for b in (1, 2, 4, 8)
            ]
        elif self._seeds.get(sid):
            points = self._seeds[sid]
        else:
            return None
        model = PiecewiseModel()
        model.update_many(points)
        return model

    def _refit_locked(self) -> None:
        """Rebuild models and re-partition the slot budget (lock held)."""
        self._since_refresh = 0
        alive = [sid for sid in self._ids if sid in self._alive]
        if not alive:
            return
        models = [self._model_for(sid) for sid in alive]
        weights: Dict[str, int]
        if any(m is None for m in models) or len(alive) == 1:
            weights = {sid: self.slots // len(alive) for sid in alive}
        else:
            try:
                fn = registry.partitioner(self.partitioner_name)
                dist = fn(self.slots, models)
                # A starving share still gets one slot: a slow shard must
                # stay observable or its model can never recover.
                weights = {
                    sid: max(1, int(d)) for sid, d in zip(alive, dist.sizes)
                }
            except (PartitionError, FuPerModError, ValueError):
                weights = {sid: self.slots // len(alive) for sid in alive}
        self._weights = weights
        self._swrr = {sid: 0 for sid in weights}
        self.refits += 1

    # -- routing -----------------------------------------------------------

    def set_alive(self, shard_id: str, alive: bool) -> None:
        """Mark a worker (un)routable and re-partition among survivors."""
        with self._lock:
            (self._alive.add if alive else self._alive.discard)(shard_id)
            self._refit_locked()

    def next(self) -> Optional[str]:
        """Deterministic smooth weighted round-robin pick (None = all dead).

        Classic SWRR: every pick adds each worker's weight to its
        current score, serves the highest score, then subtracts the
        total weight from it -- proportional in the long run, maximally
        interleaved in the short run, and fully deterministic (ties
        break lexicographically).
        """
        with self._lock:
            live = {
                sid: w for sid, w in self._weights.items()
                if sid in self._alive
            }
            if not live:
                return None
            total = sum(live.values())
            best: Optional[str] = None
            for sid in sorted(live):
                self._swrr[sid] = self._swrr.get(sid, 0) + live[sid]
                if best is None or self._swrr[sid] > self._swrr[best]:
                    best = sid
            self._swrr[best] -= total
            return best

    def weights(self) -> Dict[str, int]:
        """Current integer shares (slots per worker)."""
        with self._lock:
            return dict(self._weights)

    def to_dict(self) -> Dict[str, Any]:
        """Snapshot for ``/metrics``."""
        with self._lock:
            return {
                "policy": "fpm",
                "partitioner": self.partitioner_name,
                "slots": self.slots,
                "weights": dict(self._weights),
                "alive": sorted(self._alive),
                "refits": self.refits,
                "observed": {
                    sid: len(win) for sid, win in self._observed.items()
                },
            }


class WorkerLink:
    """Pooled keep-alive asyncio connections to one worker.

    Lives on the router's event loop.  Up to ``pool`` requests run
    concurrently, each on its own persistent connection; a request that
    fails on a *reused* connection retries once on a fresh one, while a
    fresh-connection failure propagates (the shard is down).
    """

    def __init__(
        self, shard_id: str, url: str, pool: int = 8, timeout: float = 30.0
    ) -> None:
        if not url.startswith("http://"):
            raise FuPerModError(f"worker link needs an http:// URL, got {url!r}")
        hostport = url[len("http://"):].rstrip("/")
        host, _, port_text = hostport.partition(":")
        self.shard_id = shard_id
        self.url = url.rstrip("/")
        self.host = host
        self.port = int(port_text)
        self.timeout = timeout
        self._free: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._sem = asyncio.Semaphore(pool)

    async def _roundtrip(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        payload = body or b""
        head_lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(payload)}",
            "Content-Type: application/json",
        ]
        if headers:
            head_lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("ascii")
        while True:
            reused = bool(self._free)
            if reused:
                reader, writer = self._free.pop()
            else:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
            try:
                writer.write(head + payload)
                await writer.drain()
                status_line = await reader.readline()
                if not status_line:
                    raise ConnectionError("worker closed the connection")
                status = int(status_line.split()[1])
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if not line:
                        raise ConnectionError("worker truncated the response")
                    if line in (b"\r\n", b"\n"):
                        break
                    name, _, value = (
                        line.decode("ascii", "replace").partition(":")
                    )
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0"))
                data = await reader.readexactly(length) if length else b""
            except (
                ConnectionError, OSError,
                asyncio.IncompleteReadError, ValueError, IndexError,
            ):
                writer.close()
                if reused:
                    continue  # stale kept-alive connection: one fresh retry
                raise
            if headers.get("connection", "keep-alive").lower() == "close":
                writer.close()
            else:
                self._free.append((reader, writer))
            return status, headers, data

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One request to this worker: ``(status, headers, raw body)``.

        ``headers`` rides extra hop metadata (the propagated deadline);
        ``timeout`` overrides the link's default for this call so a
        nearly-exhausted request budget is honoured instead of the full
        worker timeout.
        """
        async with self._sem:
            return await asyncio.wait_for(
                self._roundtrip(method, path, body, headers=headers),
                timeout=self.timeout if timeout is None else timeout,
            )

    def close(self) -> None:
        """Close pooled connections (call from the event loop)."""
        for _reader, writer in self._free:
            writer.close()
        self._free.clear()


class PlanRouter(AsyncHTTPBase):
    """The fleet's public endpoint: route, relay, fail over.

    Args:
        workers: mapping of shard id to worker base URL.
        routing: ``"fpm"`` (FPM-partitioned smooth weighted round-robin)
            or ``"round-robin"`` for balanced requests.
        balance_partitioner: partitioner dividing the slot budget when
            ``routing="fpm"``.
        replicas: virtual nodes per shard on the affinity ring.
        read_replicas: the fleet's plan replica-set size (how many
            shards hold each committed plan); reported in metrics so
            operators see the durability the fleet was launched with.
        host / port: bind address (port 0 = ephemeral).
        link_pool: concurrent connections per worker.
        worker_timeout: per-relay timeout, seconds.
        retry_rate / retry_burst: the failover :class:`RetryBudget`
            (tokens per second / bucket depth).  The first shard tried
            per request is free; each failover hop draws one token, so
            a partition degrades to fast single-shot serving instead of
            a retry storm.
        health_probe_interval: seconds between half-open probe rounds
            over dead shards (``GET /metrics``); 0 disables probing.
    """

    def __init__(
        self,
        workers: Mapping[str, str],
        routing: str = "fpm",
        balance_partitioner: str = "geometric",
        replicas: int = DEFAULT_REPLICAS,
        read_replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body_bytes: int = MAX_BODY_BYTES,
        link_pool: int = 8,
        worker_timeout: float = 30.0,
        retry_rate: float = 10.0,
        retry_burst: float = 20.0,
        health_probe_interval: float = 1.0,
    ) -> None:
        if not workers:
            raise FuPerModError("a plan router needs at least one worker")
        if routing not in ("fpm", "round-robin"):
            raise FuPerModError(
                f"unknown routing policy {routing!r} "
                "(want 'fpm' or 'round-robin')"
            )
        super().__init__(host, port, max_body_bytes, "fupermod-router")
        self.routing = routing
        self.ring = HashRing(workers, replicas=replicas)
        self.read_replicas = read_replicas
        self._urls = {sid: url.rstrip("/") for sid, url in workers.items()}
        self._link_pool = link_pool
        self._worker_timeout = worker_timeout
        self._links: Dict[str, WorkerLink] = {}
        self._dead: set = set()
        # Shards whose durability layer reported memory-only mode: still
        # routable (they serve correctly from memory) but deprioritized,
        # so new plans land on disks that can actually keep them.
        self._memory_only: set = set()
        self._state_lock = threading.Lock()
        self._started_at = time.monotonic()
        self.retry_budget = RetryBudget(rate=retry_rate, burst=retry_burst)
        self.health_probe_interval = health_probe_interval
        self._probe_task: Optional["asyncio.Task[None]"] = None
        self._probe_cooldown: Dict[str, float] = {}
        if routing == "fpm":
            self.balancer = FpmBalancer(
                list(workers), partitioner=balance_partitioner
            )
        else:
            self.balancer = RoundRobinBalancer(list(workers))
        self.counters: Dict[str, int] = {
            "requests": 0,
            "affinity_routed": 0,
            "balanced_routed": 0,
            "reroutes": 0,
            "shard_errors": 0,
            "feedback_relayed": 0,
            "retry_budget_exhausted": 0,
            "deadline_rejected": 0,
            "health_probes": 0,
            "probe_revivals": 0,
            "durability_probes": 0,
        }

    # -- membership (supervisor-facing, thread-safe) -----------------------

    def mark_dead(self, shard_id: str) -> None:
        """Stop routing to a shard (router also does this on errors).

        A dead shard is not gone for good: the half-open health prober
        pings it (``GET /metrics``) every probe round and revives it the
        moment it answers again, so a healed-but-never-restarted shard
        rejoins routing without supervisor intervention.
        """
        with self._state_lock:
            self._dead.add(shard_id)
            self._probe_cooldown[shard_id] = time.monotonic()
        self.balancer.set_alive(shard_id, False)

    def revive(self, shard_id: str, url: Optional[str] = None) -> None:
        """Route to a shard again (optionally at a new URL post-restart)."""
        with self._state_lock:
            if url is not None:
                self._urls[shard_id] = url.rstrip("/")
                # The old link's sockets died with the old process; a new
                # link is built lazily on the loop at the new URL.
                self._links.pop(shard_id, None)
            self._dead.discard(shard_id)
        self.balancer.set_alive(shard_id, True)

    def alive(self) -> List[str]:
        """Currently routable shard ids."""
        with self._state_lock:
            return [s for s in self.ring.shards if s not in self._dead]

    def note_durability(self, shard_id: str, durable: bool) -> None:
        """Record a shard's reported durability mode.

        Fed by the health-probe loop (every live shard's ``GET /health``
        now reports ``durable``) and available to supervisors and tests
        directly.  A memory-only shard keeps serving -- cache hits are
        as correct as ever -- but :meth:`_candidates` deprioritizes it,
        so plans that have yet to be computed prefer shards whose acks
        actually mean durable.
        """
        with self._state_lock:
            if durable:
                self._memory_only.discard(shard_id)
            else:
                self._memory_only.add(shard_id)

    def memory_only(self) -> List[str]:
        """Shards currently known to be serving memory-only."""
        with self._state_lock:
            return sorted(self._memory_only)

    def _link(self, shard_id: str) -> WorkerLink:
        with self._state_lock:
            link = self._links.get(shard_id)
            if link is None:
                link = WorkerLink(
                    shard_id, self._urls[shard_id],
                    pool=self._link_pool, timeout=self._worker_timeout,
                )
                self._links[shard_id] = link
            return link

    # -- routing -----------------------------------------------------------

    def _candidates(
        self, payload: Dict[str, Any], force_affinity: bool = False
    ) -> Tuple[List[str], bool]:
        """The shard order to try for a plan payload.

        Returns ``(candidates, affinity)``.  Affinity requests follow
        ring preference (home first); balanced requests take the
        balancer's pick, with the remaining live shards as failovers.
        ``force_affinity`` ignores the payload's ``affinity`` flag --
        feedback must reach the shard that owns the plan's cache entries
        and models, so it is never load-balanced.

        Durability-aware ordering: shards reporting memory-only mode
        (see :meth:`note_durability`) are deprioritized.  On the
        affinity path only the replica group -- the first
        ``read_replicas`` candidates, which all hold copies of a cached
        plan -- is stably reordered durable-first, so cache hits are
        still served by the replica set while cold solves prefer a
        member whose disk works; the failover tail keeps ring order.
        Balanced requests (no data affinity, any shard computes) are
        stably reordered durable-first outright.
        """
        live = set(self.alive())
        affinity = force_affinity or bool(payload.get("affinity", True))
        if affinity:
            try:
                key = affinity_key(
                    int(payload.get("total", 0)),
                    str(payload.get("partitioner") or "geometric"),
                    payload.get("options") or {},
                )
            except (TypeError, ValueError, FuPerModError):
                # Malformed request: any shard will produce the 400.
                return self._durable_first(sorted(live)), True
            order = [s for s in self.ring.preference(key) if s in live]
            head = self._durable_first(order[:self.read_replicas])
            return head + order[self.read_replicas:], True
        pick = self.balancer.next()
        if pick is None or pick not in live:
            return self._durable_first(sorted(live)), False
        return self._durable_first([pick] + sorted(live - {pick})), False

    def _durable_first(self, order: List[str]) -> List[str]:
        """Stable partition: durable shards first, memory-only after."""
        with self._state_lock:
            degraded = set(self._memory_only)
        if not degraded:
            return order
        return (
            [s for s in order if s not in degraded]
            + [s for s in order if s in degraded]
        )

    async def _route_plan(
        self,
        body: bytes,
        path: str = "/plan",
        force_affinity: bool = False,
        request_headers: Optional[Dict[str, str]] = None,
    ) -> Reply:
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
        except (UnicodeDecodeError, ValueError) as exc:
            return 400, {"error": f"bad JSON: {exc}"}, None
        merge_deadline_header(payload, request_headers)
        deadline: Optional[float] = None
        raw_deadline = payload.get("deadline")
        if raw_deadline is not None:
            try:
                deadline = float(raw_deadline)
            except (TypeError, ValueError):
                deadline = None
        candidates, affinity = self._candidates(payload, force_affinity)
        self.counters["requests"] += 1
        started = time.monotonic()
        for position, sid in enumerate(candidates):
            hop_headers: Optional[Dict[str, str]] = None
            hop_timeout: Optional[float] = None
            if deadline is not None:
                remaining = deadline - (time.monotonic() - started)
                if remaining <= 0.0:
                    self.counters["deadline_rejected"] += 1
                    return 504, {
                        "error": (
                            f"deadline of {deadline:.3f}s exhausted "
                            f"before {path} could be served"
                        ),
                        "code": 504,
                    }, None
                hop_headers = {DEADLINE_HEADER: f"{remaining:.6f}"}
                hop_timeout = min(self._worker_timeout, remaining)
            if position > 0 and not self.retry_budget.try_acquire():
                # Budget spent: fail fast instead of walking the whole
                # candidate list during a sustained partition.
                self.counters["retry_budget_exhausted"] += 1
                break
            link = self._link(sid)
            start = time.perf_counter()
            try:
                status, headers, data = await link.request(
                    "POST", path, body,
                    headers=hop_headers, timeout=hop_timeout,
                )
            except (
                ConnectionError, OSError, asyncio.TimeoutError,
                asyncio.IncompleteReadError, ValueError,
            ):
                self.counters["shard_errors"] += 1
                self.mark_dead(sid)
                continue
            if position > 0:
                self.counters["reroutes"] += 1
            if affinity:
                self.counters["affinity_routed"] += 1
            else:
                self.counters["balanced_routed"] += 1
                if status == 200:
                    self.balancer.observe(sid, time.perf_counter() - start)
            extra = None
            retry_after = headers.get("retry-after")
            if retry_after is not None:
                extra = {"Retry-After": retry_after}
            # Raw relay: the worker's bytes, untouched (bit parity).
            return status, data, extra
        return 503, {
            "error": f"no live shard can serve {path}",
            "code": 503,
            "retry_after": 1.0,
        }, None

    async def _aggregate(self, endpoint: str) -> Dict[str, Any]:
        """Fan ``GET endpoint`` out to live shards, keyed by shard id."""
        shards = self.alive()

        async def one(sid: str) -> Tuple[str, Dict[str, Any]]:
            try:
                status, _headers, data = await self._link(sid).request(
                    "GET", endpoint
                )
                decoded = json.loads(data.decode("utf-8"))
                if status != 200 or not isinstance(decoded, dict):
                    raise ValueError(f"HTTP {status}")
            except Exception as exc:
                return sid, {"error": f"unreachable: {exc}"}
            return sid, decoded.get(endpoint.strip("/"), decoded)

        pairs = await asyncio.gather(*(one(sid) for sid in shards))
        return dict(pairs)

    def _fleet_summary(self) -> Dict[str, Any]:
        with self._state_lock:
            dead = sorted(self._dead)
            memory_only = sorted(self._memory_only)
        return {
            "routing": self.routing,
            "shards": list(self.ring.shards),
            "dead": dead,
            "memory_only": memory_only,
            "counters": dict(self.counters),
            "balancer": self.balancer.to_dict(),
        }

    def _replication_summary(
        self, per_shard: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """The fleet-wide ``replication`` metrics section.

        Sums the numeric fields of every reachable shard's own
        ``replication`` section (replicas written, hints queued/drained,
        digests served, repairs applied) and adds the router-side
        partition-tolerance counters (retry-budget exhaustions, probe
        revivals).
        """
        totals: Dict[str, float] = {}
        reporting = 0
        for info in per_shard.values():
            section = info.get("replication") if isinstance(info, dict) else None
            if not isinstance(section, dict):
                continue
            reporting += 1
            for name, value in section.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                totals[name] = totals.get(name, 0) + value
        return {
            "replica_set": self.read_replicas,
            "shards_reporting": reporting,
            "workers": totals,
            "router": {
                "retry_budget_exhausted":
                    self.counters["retry_budget_exhausted"],
                "retry_budget_available":
                    round(self.retry_budget.available(), 3),
                "deadline_rejected": self.counters["deadline_rejected"],
                "health_probes": self.counters["health_probes"],
                "probe_revivals": self.counters["probe_revivals"],
            },
        }

    def _durability_summary(
        self, per_shard: Mapping[str, Any]
    ) -> Dict[str, Any]:
        """The fleet-wide ``durability`` metrics section.

        Sums the numeric fields of every reachable shard's own
        ``durability`` section (journal append errors, trips, heals,
        consecutive failures) and reports the degradation ladder's
        fleet view: which shards the router currently believes are
        serving from memory only, and a by-mode shard count.
        """
        totals: Dict[str, float] = {}
        modes: Dict[str, int] = {}
        reporting = 0
        for info in per_shard.values():
            section = info.get("durability") if isinstance(info, dict) else None
            if not isinstance(section, dict):
                continue
            reporting += 1
            mode = section.get("mode")
            if isinstance(mode, str):
                modes[mode] = modes.get(mode, 0) + 1
            for name, value in section.items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                totals[name] = totals.get(name, 0) + value
        return {
            "shards_reporting": reporting,
            "modes": modes,
            "memory_only": self.memory_only(),
            "workers": totals,
            "router": {
                "durability_probes": self.counters["durability_probes"],
            },
        }

    @staticmethod
    def _plans_by_kind_summary(per_shard: Mapping[str, Any]) -> Dict[str, int]:
        """Fleet-wide served-plans-by-kind tally.

        Sums each reachable shard's ``plans_by_kind`` counters (schema
        ``fupermod-metrics/4``); shards that predate the section, or were
        unreachable, simply contribute nothing -- the same tolerant
        summing as :meth:`_replication_summary`.
        """
        totals: Dict[str, int] = {}
        for info in per_shard.values():
            section = info.get("plans_by_kind") if isinstance(info, dict) else None
            if not isinstance(section, dict):
                continue
            for name, value in section.items():
                if isinstance(value, bool) or not isinstance(value, int):
                    continue
                totals[str(name)] = totals.get(str(name), 0) + value
        return totals

    async def _probe_dead_shards(self) -> None:
        """Half-open probe loop: ping dead shards, revive the responsive.

        Runs on the event loop for the router's whole life.  Each round
        probes every dead shard whose cooldown has lapsed with a cheap
        ``GET /metrics``; a 200 means the process is healthy again
        (restarted by hand, or the partition healed) and it rejoins
        routing immediately -- ``revive`` stays available for the
        supervisor's explicit restart path, which also updates the URL.
        """
        interval = self.health_probe_interval
        while True:
            await asyncio.sleep(interval)
            await self._poll_durability()
            with self._state_lock:
                dead = sorted(self._dead)
            now = time.monotonic()
            for sid in dead:
                with self._state_lock:
                    since = self._probe_cooldown.get(sid, 0.0)
                if now - since < interval:
                    continue
                self.counters["health_probes"] += 1
                try:
                    status, _headers, _data = await self._link(sid).request(
                        "GET", "/metrics", timeout=min(2.0, interval * 2),
                    )
                except Exception:
                    with self._state_lock:
                        self._probe_cooldown[sid] = time.monotonic()
                    continue
                if status == 200:
                    self.counters["probe_revivals"] += 1
                    self.revive(sid)
                else:
                    with self._state_lock:
                        self._probe_cooldown[sid] = time.monotonic()

    async def _poll_durability(self) -> None:
        """One ``GET /health`` round over live shards: learn durability.

        Workers report ``durable`` in their health payload (absent on
        shards with no durable cache).  A shard that trips to
        memory-only mode mid-flood is deprioritized within one probe
        interval; one that heals is restored just as fast.  Probe
        failures change nothing here -- the request path's own error
        handling owns marking shards dead.
        """
        for sid in self.alive():
            self.counters["durability_probes"] += 1
            try:
                status, _headers, data = await self._link(sid).request(
                    "GET", "/health",
                    timeout=min(2.0, self.health_probe_interval * 2),
                )
                health = json.loads(data.decode("utf-8"))
                if status != 200 or not isinstance(health, dict):
                    continue
            except Exception:
                continue
            durable = health.get("durable")
            if isinstance(durable, bool):
                self.note_durability(sid, durable)
            else:
                self.note_durability(sid, True)

    async def _handle_one(
        self, method: str, path: str, body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Reply:
        norm = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "POST" and norm == "/plan":
            return await self._route_plan(body, request_headers=headers)
        if method == "POST" and norm == "/feedback":
            # Forced affinity: a report must reach the shard whose
            # models and cached plans cover its (total, partitioner,
            # options) -- the same home the plan itself routed to.  The
            # shard's response (200/400/403/429) relays verbatim.
            self.counters["feedback_relayed"] += 1
            return await self._route_plan(
                body, path="/feedback", force_affinity=True,
                request_headers=headers,
            )
        if method == "GET" and norm == "/health":
            return 200, {"ok": True, "role": "router",
                         "alive": self.alive()}, None
        if method == "GET" and norm in ("/stats", "/metrics"):
            per_shard = await self._aggregate(norm)
            out: Dict[str, Any] = {
                "fleet": self._fleet_summary(),
                "shards": per_shard,
            }
            if norm == "/metrics":
                out["fleet"]["replication"] = (
                    self._replication_summary(per_shard)
                )
                out["fleet"]["plans_by_kind"] = (
                    self._plans_by_kind_summary(per_shard)
                )
                out["fleet"]["durability"] = (
                    self._durability_summary(per_shard)
                )
                out["schema"] = "fupermod-fleet-metrics/4"
                out["uptime_s"] = time.monotonic() - self._started_at
                return 200, {"metrics": out}, None
            return 200, {"stats": out}, None
        return 404, {"error": f"no such endpoint {path!r}"}, None

    async def _on_start(self) -> None:
        if self.health_probe_interval > 0.0:
            self._probe_task = asyncio.get_running_loop().create_task(
                self._probe_dead_shards()
            )

    async def _on_stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            self._probe_task = None
        with self._state_lock:
            links = list(self._links.values())
        for link in links:
            link.close()
