"""Versioned model lineage: epochs, fingerprint chains, crash-safe refits.

Closed-loop refinement mutates the model set a running server plans
against.  Doing that *in place* would be a correctness hazard twice
over: a request racing the refit could fingerprint half-updated models,
and a SIGKILL mid-refit would leave no way to know which points made it
in.  :class:`ModelLineage` removes both hazards:

* **Copy-on-refit.**  :meth:`propose` never touches the served models.
  It builds a *candidate* set by clone-and-extend -- a fresh model per
  rank, refitted via ``update_many`` from the parent's points plus the
  accepted feedback -- so the parent epoch stays fully servable (old
  plans, old fingerprints, old cache entries) for as long as the refit
  and its regression gate take.
* **Fingerprint chain.**  Every committed epoch records
  ``parent fingerprint -> child fingerprint`` with a monotonically
  increasing epoch number.  The chain is the audit trail: any served
  plan's ``models_fp`` names exactly one epoch of exactly one lineage.
* **Write-ahead durability.**  :meth:`commit` journals the epoch record
  (parent, child, the accepted points) to a :class:`LineageWAL` --
  fsynced, one JSON line -- *before* swapping the in-memory model set.
  The append is the commit point: a SIGKILL before it loses the refit
  entirely (the parent epoch survives, consistent); a SIGKILL after it
  replays to the child epoch on restart.  Replay tolerates a torn final
  record (the interrupted commit) and refuses interior corruption, the
  same contract as :class:`~repro.serve.wal.PlanWAL`; it also verifies
  that every replayed epoch reproduces its recorded child fingerprint,
  so a journal that no longer matches the base models (wrong points
  directory, silent edit) fails loudly instead of serving a lineage
  that never existed.

Rollbacks -- a refit the regression gate refused -- are journaled too
(as no-op audit records) and counted, but never advance the epoch.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.point import MeasurementPoint
from repro.errors import PersistenceError
from repro.serve.fingerprint import FINGERPRINT_VERSION, fingerprint_models
from repro.serve.journal import AppendJournal, Opener

PathLike = Union[str, Path]

_MAGIC = "fupermod-lineage-wal"
_VERSION = 1

#: Operations a lineage journal record may carry.
_OPS = ("epoch", "rollback")

#: Per-rank accepted points, aligned with the model set's rank order.
RankPoints = Sequence[Sequence[MeasurementPoint]]


def _encode_points(points_per_rank: RankPoints) -> List[List[List[float]]]:
    """Per-rank points as JSON-ready ``[[d, t], ...]`` lists."""
    return [
        [[int(p.d), float(p.t)] for p in rank_points]
        for rank_points in points_per_rank
    ]


def _decode_points(encoded: Any, ranks: int) -> List[List[MeasurementPoint]]:
    """Rebuild per-rank points from a journal record, validating shape."""
    if not isinstance(encoded, list) or len(encoded) != ranks:
        raise PersistenceError(
            f"lineage record carries points for {len(encoded) if isinstance(encoded, list) else '?'} "
            f"ranks, lineage has {ranks}"
        )
    out: List[List[MeasurementPoint]] = []
    for rank_points in encoded:
        out.append(
            [MeasurementPoint(d=int(d), t=float(t)) for d, t in rank_points]
        )
    return out


@dataclass(frozen=True)
class LineageRecord:
    """One committed epoch of a model lineage.

    Attributes:
        epoch: the child epoch number (parent's + 1; the root is 0).
        parent_fp: the model-set fingerprint this refit started from.
        child_fp: the fingerprint after folding the points in.
        point_count: accepted feedback points folded in, across ranks.
    """

    epoch: int
    parent_fp: str
    child_fp: str
    point_count: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (for ``/stats`` and tests)."""
        return {
            "epoch": self.epoch,
            "parent_fp": self.parent_fp,
            "child_fp": self.child_fp,
            "point_count": self.point_count,
        }


@dataclass(frozen=True)
class LineageCandidate:
    """A proposed child epoch: refitted models awaiting the gate.

    Built by :meth:`ModelLineage.propose`; holds everything
    :meth:`ModelLineage.commit` needs, so the regression gate can score
    ``models`` against held-back feedback without mutating the lineage.
    """

    models: Tuple[Any, ...]
    fingerprint: str
    parent_fp: str
    points_per_rank: Tuple[Tuple[MeasurementPoint, ...], ...]


class LineageWAL(AppendJournal):
    """Append-only, fsynced journal of lineage epochs.

    The same journalling discipline as :class:`~repro.serve.wal.PlanWAL`
    -- both ride the shared :class:`~repro.serve.journal.AppendJournal`
    base (append path, torn-tail replay, injectable ``opener`` fault
    seam).  Kept a separate journal because the record vocabulary
    differs (epochs and point sets, not cache operations) and because
    the two journals fail independently -- a corrupt plan WAL must not
    take the lineage down with it, nor vice versa.
    """

    magic = _MAGIC
    version = _VERSION
    record_name = "lineage-WAL"
    log_name = "lineage-WAL"
    op_name = "lineage"
    ops = _OPS

    def append_epoch(
        self,
        epoch: int,
        parent_fp: str,
        child_fp: str,
        points_per_rank: RankPoints,
    ) -> None:
        """Durably journal one epoch commit (the commit point itself)."""
        self._write_line({
            "magic": _MAGIC,
            "v": _VERSION,
            "fp": FINGERPRINT_VERSION,
            "op": "epoch",
            "epoch": epoch,
            "parent": parent_fp,
            "child": child_fp,
            "points": _encode_points(points_per_rank),
        })

    def append_rollback(self, epoch: int, parent_fp: str, reason: str) -> None:
        """Journal a refused refit (audit only; a no-op on replay)."""
        self._write_line({
            "magic": _MAGIC,
            "v": _VERSION,
            "fp": FINGERPRINT_VERSION,
            "op": "rollback",
            "epoch": epoch,
            "parent": parent_fp,
            "reason": reason,
        })

    def replay(self) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Read committed records back: ``(ops, valid_bytes, dropped_tail)``.

        A missing journal is empty.  A torn *final* line -- the signature
        of a SIGKILL mid-commit -- is dropped; corruption anywhere else
        raises :class:`~repro.errors.PersistenceError`.  Records written
        under a different fingerprint version are omitted (their
        fingerprints cannot be compared under the current encoding).
        """
        entries, valid_bytes, dropped = self.replay_lines()
        ops = [entry for entry in entries if entry is not None]
        return ops, valid_bytes, dropped

    def _validate(self, record: Dict[str, Any], lineno: int) -> Optional[Dict[str, Any]]:
        op = self._check_op(record, lineno)
        if op == "epoch":
            try:
                int(record["epoch"])
                str(record["parent"]), str(record["child"])
                if not isinstance(record["points"], list):
                    raise ValueError("'points' must be a list")
            except (KeyError, TypeError, ValueError) as exc:
                raise PersistenceError(
                    f"{self.path}:{lineno}: malformed epoch record: {exc}"
                ) from None
        if record.get("fp") != FINGERPRINT_VERSION:
            return None
        return record


class ModelLineage:
    """The versioned model set a closed-loop server plans against.

    Args:
        models: the root (epoch 0) fitted per-rank model set.  The
            lineage takes ownership of the *list*; the model objects are
            never mutated -- refits clone-and-extend.
        wal_path: optional journal path; without it the lineage is
            memory-only (commits still work, crashes lose them).
        fsync: fsync every journal append.
        opener: ``open``-compatible callable for every journal file
            access (the storage fault seam; see
            :mod:`repro.faults.disk`).

    Thread safety: :attr:`models`, :attr:`fingerprint` and :attr:`epoch`
    are swapped together under an internal lock by :meth:`commit`;
    readers that need a consistent triple use :meth:`snapshot`.  Plain
    attribute reads see either the parent or the child epoch, never a
    mixture, because the swap replaces whole references.
    """

    def __init__(
        self,
        models: Sequence,
        wal_path: Optional[PathLike] = None,
        fsync: bool = True,
        opener: Optional[Opener] = None,
    ) -> None:
        if not models:
            raise ValueError("a model lineage needs at least one model")
        self.models: List[Any] = list(models)
        self.fingerprint: str = fingerprint_models(self.models)
        self.parent_fp: Optional[str] = None
        self.epoch: int = 0
        self.rollbacks: int = 0
        self.history: List[LineageRecord] = []
        self.wal: Optional[LineageWAL] = (
            LineageWAL(wal_path, fsync=fsync, opener=opener)
            if wal_path is not None else None
        )
        self._lock = threading.Lock()
        self._replaying = False

    # -- refit construction ------------------------------------------------

    def propose(self, points_per_rank: RankPoints) -> LineageCandidate:
        """A candidate child epoch from accepted feedback points.

        ``points_per_rank`` is aligned with the model set's rank order
        (empty sequences for ranks with no new points).  Each rank's
        model is rebuilt from scratch -- the parent's points plus the new
        ones through ``update_many`` -- so the parent models are never
        touched and the candidate's fit is exactly what a cold build
        from the union would produce.  Raises
        :class:`~repro.errors.ModelError` if any rank's extended point
        set cannot be fitted (the caller counts that as a failed refit).
        """
        if len(points_per_rank) != len(self.models):
            raise ValueError(
                f"{len(points_per_rank)} rank point sets for "
                f"{len(self.models)} models"
            )
        rebuilt: List[Any] = []
        for model, new_points in zip(self.models, points_per_rank):
            child = type(model)()
            child.update_many(list(model.points) + list(new_points))
            rebuilt.append(child)
        return LineageCandidate(
            models=tuple(rebuilt),
            fingerprint=fingerprint_models(rebuilt),
            parent_fp=self.fingerprint,
            points_per_rank=tuple(
                tuple(rank_points) for rank_points in points_per_rank
            ),
        )

    # -- state transitions -------------------------------------------------

    def commit(self, candidate: LineageCandidate) -> LineageRecord:
        """Journal the epoch, then atomically swap to the child models.

        The journal append *is* the commit point: once it returns, a
        crash replays to the child epoch; before it, the parent epoch
        survives untouched.  Raises :class:`ValueError` if the candidate
        was proposed against a fingerprint that is no longer current
        (a concurrent commit won the race).
        """
        with self._lock:
            if candidate.parent_fp != self.fingerprint:
                raise ValueError(
                    f"stale candidate: parent {candidate.parent_fp[:12]}... "
                    f"is not the current epoch {self.fingerprint[:12]}..."
                )
            record = LineageRecord(
                epoch=self.epoch + 1,
                parent_fp=candidate.parent_fp,
                child_fp=candidate.fingerprint,
                point_count=sum(len(r) for r in candidate.points_per_rank),
            )
            if self.wal is not None and not self._replaying:
                self.wal.append_epoch(
                    record.epoch, record.parent_fp, record.child_fp,
                    candidate.points_per_rank,
                )
            self.models = list(candidate.models)
            self.parent_fp = candidate.parent_fp
            self.fingerprint = candidate.fingerprint
            self.epoch = record.epoch
            self.history.append(record)
            return record

    def rollback(self, reason: str) -> None:
        """Count (and journal) a refit the regression gate refused."""
        with self._lock:
            self.rollbacks += 1
            if self.wal is not None and not self._replaying:
                self.wal.append_rollback(self.epoch, self.fingerprint, reason)

    # -- recovery ----------------------------------------------------------

    def recover(self) -> int:
        """Replay the journal, re-deriving every committed epoch.

        Returns the number of epochs replayed.  Each epoch record is
        re-applied through the normal :meth:`propose`/:meth:`commit`
        path, and the resulting fingerprint is checked against the
        recorded child -- replay that does not reproduce the recorded
        lineage raises :class:`~repro.errors.PersistenceError` (the
        journal and the base models no longer agree, and serving either
        story would be a lie).  A torn final record -- a SIGKILL mid
        commit -- is dropped and truncated away: that refit never
        committed, so the parent epoch is the consistent state.
        """
        if self.wal is None:
            return 0
        ops, valid_bytes, dropped = self.wal.replay()
        replayed = 0
        self._replaying = True
        try:
            for record in ops:
                if record["op"] == "rollback":
                    self.rollbacks += 1
                    continue
                epoch = int(record["epoch"])
                if epoch != self.epoch + 1:
                    raise PersistenceError(
                        f"{self.wal.path}: lineage gap: epoch {epoch} "
                        f"follows epoch {self.epoch}"
                    )
                if str(record["parent"]) != self.fingerprint:
                    raise PersistenceError(
                        f"{self.wal.path}: epoch {epoch} parent "
                        f"{str(record['parent'])[:12]}... does not match "
                        f"replayed fingerprint {self.fingerprint[:12]}..."
                    )
                points = _decode_points(record["points"], len(self.models))
                candidate = self.propose(points)
                if candidate.fingerprint != str(record["child"]):
                    raise PersistenceError(
                        f"{self.wal.path}: epoch {epoch} replayed to "
                        f"{candidate.fingerprint[:12]}..., journal recorded "
                        f"{str(record['child'])[:12]}..."
                    )
                self.commit(candidate)
                replayed += 1
        finally:
            self._replaying = False
        if dropped:
            self.wal.truncate(valid_bytes)
        self.wal.records = len(ops)
        return replayed

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> Tuple[List[Any], str, int]:
        """A consistent ``(models, fingerprint, epoch)`` triple."""
        with self._lock:
            return self.models, self.fingerprint, self.epoch

    def verified_fingerprints(self) -> Set[str]:
        """Every model-set fingerprint this lineage can vouch for.

        The root fingerprint plus the child of every committed epoch.  A
        recovering worker checks its plan cache against this set: a plan
        stamped with a fingerprint outside it was computed against an
        epoch the (possibly torn) lineage journal cannot reproduce, so
        serving it would claim a provenance nobody can verify.  Note the
        root is always present -- a lineage that lost its tail recovers
        to a consistent *older* epoch, and plans from surviving epochs
        stay servable.
        """
        with self._lock:
            verified = {record.child_fp for record in self.history}
            if self.history:
                verified.add(self.history[0].parent_fp)
            else:
                verified.add(self.fingerprint)
            return verified

    def stats(self) -> Dict[str, Any]:
        """Lineage state for ``/stats`` and ``/metrics``."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "fingerprint": self.fingerprint,
                "parent_fp": self.parent_fp,
                "commits": len(self.history),
                "rollbacks": self.rollbacks,
            }

    def close(self) -> None:
        """Release the journal handle (the file stays on disk)."""
        if self.wal is not None:
            self.wal.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ModelLineage(epoch={self.epoch}, "
            f"fp={self.fingerprint[:12]}..., ranks={len(self.models)})"
        )
