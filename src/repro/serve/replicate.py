"""Replica placement with hinted handoff for the sharded plan fleet.

Until this module, the fleet kept exactly one copy of each plan: the
home shard the router consistent-hashes its key to.  A SIGKILL (or a
netsplit hiding the home) silently turned every plan that shard owned
into a cold solve.  This module gives each committed plan a **replica
set** -- the home plus its successors clockwise on the hash ring
(:meth:`~repro.serve.hashring.HashRing.replica_set`) -- kept in sync by
three mechanisms, in escalating order of patience:

* **asynchronous replication**: the home's engine fires
  :meth:`PlanReplicator.plan_committed` after every freshly solved plan
  is cached; a background thread pushes the entry to each replica via
  ``POST /replicate``.  Replication is off the request path and
  best-effort -- serving never waits on it.
* **hinted handoff**: a push that fails (replica down, link cut) is
  journalled to a durable :class:`HintLog` -- same fsync / torn-tail
  contract as the plan WAL -- and retried in the background until the
  peer answers again.  A hint survives the *home's* crash too: replay
  nets acked hints out and resumes the unacked ones.
* **anti-entropy**: :meth:`PlanReplicator.digest` serves a sorted
  ``(key, fingerprint)`` digest of this shard's cache (``GET /digest``)
  so the fleet supervisor can diff replica sets after a heal and repair
  divergent entries (``repair`` pushes through the same ``/replicate``
  endpoint).

Plans are replicated as their exact serialized form, so a replica
serving a failed-over read is bit-identical to the home serving it --
the netsplit chaos suite asserts this.  Each push also carries the
home's lineage epoch, so peers (and ``/digest`` readers) can see how
current the source's models were.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import FuPerModError, PersistenceError
from repro.serve.cache import PlanCache
from repro.serve.fingerprint import FINGERPRINT_VERSION, affinity_key, digest
from repro.serve.hashring import HashRing
from repro.serve.journal import AppendJournal, Opener
from repro.serve.plan import PlanRequest, PlanResult
from repro.serve.shard import ShardClient

PathLike = Union[str, Path]

_HINT_MAGIC = "fupermod-hint-log"
_HINT_VERSION = 1

#: Default replica set size: the home shard plus one successor.
DEFAULT_REPLICA_SET = 2


def entry_fingerprint(key: str, result: PlanResult) -> str:
    """Content fingerprint of one cached entry, for digest comparison.

    Two shards hold the same entry iff this matches: it covers the key
    and the full serialized result (sizes, times, cert, provenance), so
    a replica that diverged in any served byte shows up in a digest diff.
    """
    return digest("plan-entry", key, result.to_dict())


class HintLog(AppendJournal):
    """Durable journal of undelivered replica pushes (hinted handoff).

    Same discipline as :class:`~repro.serve.wal.PlanWAL` -- both ride
    the shared :class:`~repro.serve.journal.AppendJournal` base
    (append-only fsynced JSON lines, a torn final record dropped and
    truncated away, interior corruption raising
    :class:`~repro.errors.PersistenceError`, an injectable ``opener``
    fault seam).  Two record types:

    * ``hint`` -- one undelivered push: the target shard and the full
      entry payload, under a monotonically increasing sequence number;
    * ``ack`` -- the hint with that sequence number was delivered (or
      deliberately abandoned); replay nets it out.

    Once every journalled hint is acked the log resets to empty, so a
    healthy fleet's hint logs stay at zero bytes.
    """

    magic = _HINT_MAGIC
    version = _HINT_VERSION
    record_name = "hint-log"
    log_name = "hint-log"
    op_name = "hint"
    ops = ("hint", "ack")

    # -- appending ---------------------------------------------------------

    def append_hint(
        self, seq: int, target: str, entry: Dict[str, Any]
    ) -> None:
        """Durably record one undelivered push."""
        self._write_line({
            "magic": _HINT_MAGIC,
            "v": _HINT_VERSION,
            "fp": FINGERPRINT_VERSION,
            "op": "hint",
            "seq": int(seq),
            "target": str(target),
            "entry": entry,
        })

    def append_ack(self, seq: int) -> None:
        """Durably record that hint ``seq`` was delivered (or abandoned)."""
        self._write_line({
            "magic": _HINT_MAGIC,
            "v": _HINT_VERSION,
            "fp": FINGERPRINT_VERSION,
            "op": "ack",
            "seq": int(seq),
        })

    # -- replay ------------------------------------------------------------

    def replay(self) -> Tuple[List[Dict[str, Any]], int, bool]:
        """Read the pending (unacked) hints back, tolerating a torn tail.

        Returns ``(pending, valid_bytes, dropped_tail)`` where
        ``pending`` is the acked-netted hint records in append order.
        Hints written under a different fingerprint version are dropped
        (their keys cannot match current requests); interior corruption
        raises :class:`~repro.errors.PersistenceError`.
        """
        entries, valid_bytes, dropped = self.replay_lines()
        hints: Dict[int, Dict[str, Any]] = {}
        # Every well-formed line counts as a record (foreign-fingerprint
        # hints included -- they occupy journal space until a reset),
        # but only current-fingerprint hints are eligible for delivery.
        self.records = len(entries)
        for record in entries:
            if record is None:
                continue
            seq = int(record["seq"])
            if record["op"] == "hint":
                hints[seq] = record
            else:
                hints.pop(seq, None)
        return [hints[seq] for seq in sorted(hints)], valid_bytes, dropped

    def _validate(self, record: Dict[str, Any], lineno: int) -> Optional[Dict[str, Any]]:
        op = self._check_op(record, lineno)
        try:
            int(record["seq"])
            if op == "hint":
                str(record["target"])
                entry = record["entry"]
                PlanResult.from_dict(entry["result"])
                str(entry["key"]), str(entry["models_fp"])
        except Exception as exc:
            raise PersistenceError(
                f"{self.path}:{lineno}: malformed {op} record: {exc}"
            ) from None
        if record.get("fp") != FINGERPRINT_VERSION:
            return None
        return record


class PlanReplicator:
    """Push committed plans to their ring successors, hinting on failure.

    Args:
        shard_id: this shard's fleet identity (excluded from push
            targets -- the home already holds the entry).
        cache: the local plan cache; ``apply_replicate`` inserts into it
            directly (bypassing the engine, so an applied replica never
            re-replicates -- no replication storms).
        replicas: replica set size including the home.  ``1`` disables
            pushing entirely (the pre-replication fleet).
        hint_path: optional durable hint journal; ``None`` keeps hints
            in memory only (lost on crash, repaired by anti-entropy).
        timeout: per-push socket timeout, seconds.
        retry_interval: seconds between background hint-drain attempts
            while hints are pending.
        max_hints: in-memory hint cap; beyond it the oldest hint is
            abandoned (acked away, counted in ``hints_dropped``) --
            anti-entropy repairs whatever abandoned hints would have
            delivered.  A partition must bound memory, not grow it.
        client_factory: ``(url, shard_id, timeout) -> ShardClient``
            seam; the worker passes a chaos-wrapping factory so the
            transport-fault layer covers replication traffic too.
        epoch_source: optional zero-argument callable returning this
            shard's current ``(epoch, models_fingerprint)``; stamped on
            every push and digest so peers can see source currency.
    """

    def __init__(
        self,
        shard_id: str,
        cache: PlanCache,
        replicas: int = DEFAULT_REPLICA_SET,
        hint_path: Optional[PathLike] = None,
        timeout: float = 5.0,
        retry_interval: float = 2.0,
        max_hints: int = 512,
        client_factory: Optional[
            Callable[[str, str, float], ShardClient]
        ] = None,
        epoch_source: Optional[Callable[[], Tuple[int, str]]] = None,
        opener: Optional[Opener] = None,
    ) -> None:
        if replicas <= 0:
            raise FuPerModError(
                f"replica set size must be positive, got {replicas}"
            )
        self.shard_id = shard_id
        self.cache = cache
        self.replicas = replicas
        self.timeout = timeout
        self.retry_interval = retry_interval
        self.max_hints = max_hints
        self.epoch_source = epoch_source
        self._client_factory = client_factory or (
            lambda url, sid, tmo: ShardClient(url, sid, timeout=tmo)
        )
        self.hint_log: Optional[HintLog] = (
            HintLog(hint_path, opener=opener)
            if hint_path is not None else None
        )
        self._clients: Dict[str, ShardClient] = {}
        self._ring = HashRing()
        self._queue: Deque[Dict[str, Any]] = deque()
        self._hints: List[Dict[str, Any]] = []
        self._next_seq = 1
        self._busy = False
        self._closed = False
        self._cv = threading.Condition()
        self.counters: Dict[str, int] = {
            "replicas_written": 0,
            "replicate_failures": 0,
            "replicas_received": 0,
            "repairs_applied": 0,
            "hints_queued": 0,
            "hints_drained": 0,
            "hints_dropped": 0,
            "digests_served": 0,
        }
        self._thread = threading.Thread(
            target=self._run, name=f"fupermod-replicate-{shard_id}",
            daemon=True,
        )
        self._thread.start()

    # -- recovery ----------------------------------------------------------

    def recover(self) -> int:
        """Reload pending hints from the journal (home-crash recovery).

        Returns the number of pending hints resumed.  A torn tail is
        truncated away; a fully drained log replays to zero hints.
        """
        if self.hint_log is None:
            return 0
        pending, valid_bytes, dropped = self.hint_log.replay()
        if dropped:
            self.hint_log.truncate(valid_bytes)
        with self._cv:
            self._hints = list(pending)
            if pending:
                self._next_seq = max(int(h["seq"]) for h in pending) + 1
            self._cv.notify_all()
        return len(pending)

    # -- membership --------------------------------------------------------

    def set_peers(self, peers: Sequence[Dict[str, str]]) -> int:
        """Install the roster; a roster change wakes the hint drainer.

        The supervisor re-broadcasts the roster whenever membership
        changes -- including when a dead peer rejoins -- so this doubles
        as the peer-recovery signal that triggers hint handoff.
        """
        clients: Dict[str, ShardClient] = {}
        ring = HashRing()
        for peer in peers:
            sid, url = str(peer["shard_id"]), str(peer["url"])
            ring.add(sid)
            if sid != self.shard_id:
                clients[sid] = self._client_factory(url, sid, self.timeout)
        with self._cv:
            old = self._clients
            self._clients = clients
            self._ring = ring
            self._cv.notify_all()
        for client in old.values():
            try:
                client.close()
            except Exception:
                pass
        return len(clients)

    # -- the write path (engine hook) --------------------------------------

    def plan_committed(self, request: PlanRequest, result: PlanResult) -> None:
        """Queue one freshly committed plan for replication (non-blocking)."""
        if self.replicas <= 1:
            return
        spec: List[Any] = [request.total, request.partitioner,
                           request.option_dict()]
        if request.kind != "time":
            # Kinded plans carry their kind (and objective) in the spec,
            # so the receiving cache's cross-kind aliasing guard sees the
            # same identity the home stored the entry under.
            spec.extend([request.kind, request.objective_dict()])
        entry = {
            "key": request.key,
            "models_fp": request.models_fp,
            "result": result.to_dict(),
            "spec": spec,
            "source": self.shard_id,
        }
        if self.epoch_source is not None:
            try:
                epoch, models_fp = self.epoch_source()
                entry["epoch"] = int(epoch)
                entry["epoch_fp"] = str(models_fp)
            except Exception:
                pass
        with self._cv:
            if self._closed:
                return
            self._queue.append(entry)
            self._cv.notify_all()

    # -- background thread -------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while (
                    not self._closed
                    and not self._queue
                    and not self._hints
                ):
                    self._cv.wait()
                if self._closed and not self._queue:
                    return
                item = self._queue.popleft() if self._queue else None
                self._busy = True
            try:
                if item is not None:
                    self._replicate_one(item)
                    continue  # drain the queue before retrying hints
                self._drain_hints()
            finally:
                with self._cv:
                    self._busy = False
                    self._cv.notify_all()
            # Hints (and only hints) pending: pace the retries.
            with self._cv:
                if self._closed:
                    return
                if self._hints and not self._queue:
                    self._cv.wait(self.retry_interval)

    def _targets(self, entry: Dict[str, Any]) -> List[str]:
        """The replica set for this entry's affinity key, minus self."""
        spec = entry.get("spec")
        if not spec:
            return []
        try:
            key = affinity_key(int(spec[0]), str(spec[1]), spec[2] or {})
        except Exception:
            return []
        with self._cv:
            ring = self._ring
        if len(ring) == 0:
            return []
        return [
            sid for sid in ring.replica_set(key, self.replicas)
            if sid != self.shard_id
        ]

    def _push(self, target: str, entry: Dict[str, Any]) -> bool:
        with self._cv:
            client = self._clients.get(target)
        if client is None:
            return False
        try:
            return client.replicate(entry)
        except Exception:
            return False

    def _replicate_one(self, entry: Dict[str, Any]) -> None:
        for target in self._targets(entry):
            if self._push(target, entry):
                with self._cv:
                    self.counters["replicas_written"] += 1
            else:
                self._queue_hint(target, entry)

    def _queue_hint(self, target: str, entry: Dict[str, Any]) -> None:
        with self._cv:
            seq = self._next_seq
            self._next_seq += 1
            self.counters["replicate_failures"] += 1
            self.counters["hints_queued"] += 1
            hint = {"op": "hint", "seq": seq, "target": target,
                    "entry": entry}
            self._hints.append(hint)
            dropped = None
            if len(self._hints) > self.max_hints:
                dropped = self._hints.pop(0)
                self.counters["hints_dropped"] += 1
        if self.hint_log is not None:
            try:
                self.hint_log.append_hint(seq, target, entry)
                if dropped is not None:
                    # Abandoned, not delivered: ack it away so replay
                    # nets to the same bounded set.
                    self.hint_log.append_ack(int(dropped["seq"]))
            except PersistenceError:
                pass  # a full disk must not take the serve path down

    def _drain_hints(self) -> None:
        with self._cv:
            pending = list(self._hints)
        for hint in pending:
            if self._push(str(hint["target"]), hint["entry"]):
                with self._cv:
                    try:
                        self._hints.remove(hint)
                    except ValueError:
                        continue  # a concurrent roster change raced us
                    self.counters["hints_drained"] += 1
                if self.hint_log is not None:
                    try:
                        self.hint_log.append_ack(int(hint["seq"]))
                    except PersistenceError:
                        pass
        with self._cv:
            empty = not self._hints
        if empty and self.hint_log is not None and self.hint_log.records:
            try:
                self.hint_log.reset()
            except PersistenceError:
                pass

    # -- the receive path (worker endpoint) --------------------------------

    def apply_replicate(
        self, payload: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        """Apply one pushed entry; the ``POST /replicate`` handler.

        Validation is the poisoning guard: the result must decode, carry
        the advertised key, and its shares must sum to its total --
        exactly the sibling-fill checks.  A valid entry is inserted
        straight into the cache (never through the engine, so an applied
        replica cannot trigger re-replication).  Returns
        ``(status, response)``.
        """
        if not isinstance(payload, dict):
            return 400, {"error": "replicate payload must be a JSON object"}
        try:
            key = str(payload["key"])
            models_fp = str(payload["models_fp"])
            result = PlanResult.from_dict(payload["result"])
        except Exception as exc:
            return 400, {"error": f"malformed replicate payload: {exc}"}
        if (
            result.key != key
            or sum(result.sizes) != result.total
            or len(result.sizes) != len(result.times)
        ):
            return 400, {
                "error": "replicated plan does not answer its own key"
            }
        spec = payload.get("spec")
        try:
            self.cache.put(
                key, result, models_fp,
                spec=tuple(spec) if spec is not None else None,
            )
        except FuPerModError as exc:
            # The cache's cross-kind aliasing guard: a push whose spec
            # and result disagree on the plan kind is poisoned, refused
            # like any other malformed entry.
            return 400, {"error": f"rejected replicated plan: {exc}"}
        with self._cv:
            self.counters["replicas_received"] += 1
            if payload.get("repair"):
                self.counters["repairs_applied"] += 1
        return 200, {"ok": True, "key": key}

    # -- anti-entropy ------------------------------------------------------

    def digest(self) -> Dict[str, Any]:
        """Sorted ``(key, entry fingerprint, affinity key)`` digest.

        The supervisor diffs these across shards after a heal: a key a
        replica-set member lacks (or holds under a different
        fingerprint) is divergent and gets repaired.  Entries stored
        without a request spec have a ``null`` affinity -- they cannot
        be placed on the ring, so anti-entropy skips them.
        """
        entries = []
        for item in self.cache.to_payload():
            key = str(item["key"])
            result = PlanResult.from_dict(item["result"])
            spec = item.get("spec")
            affinity: Optional[str] = None
            if spec:
                try:
                    affinity = affinity_key(
                        int(spec[0]), str(spec[1]), spec[2] or {}
                    )
                except Exception:
                    affinity = None
            entries.append([key, entry_fingerprint(key, result), affinity])
        entries.sort(key=lambda e: e[0])
        with self._cv:
            self.counters["digests_served"] += 1
            pending_hints = len(self._hints)
        out: Dict[str, Any] = {
            "shard_id": self.shard_id,
            "entries": entries,
            "pending_hints": pending_hints,
            "fingerprint_version": FINGERPRINT_VERSION,
        }
        if self.epoch_source is not None:
            try:
                epoch, models_fp = self.epoch_source()
                out["epoch"] = int(epoch)
                out["models_fp"] = str(models_fp)
            except Exception:
                pass
        return out

    # -- introspection and lifecycle ---------------------------------------

    def pending(self) -> Tuple[int, int]:
        """``(queued pushes, pending hints)`` gauges."""
        with self._cv:
            return len(self._queue), len(self._hints)

    def quiesce(self, timeout: float = 10.0) -> bool:
        """Wait until the push queue is empty and the worker is idle.

        Pending *hints* do not block quiescence -- a partition can hold
        hints indefinitely, and quiesce is the tests' and benchmarks'
        "replication has caught up as far as it can" barrier.
        """
        deadline = time.monotonic() + timeout
        with self._cv:
            while self._queue or self._busy:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cv.wait(remaining)
            return True

    def stats(self) -> Dict[str, Any]:
        """Replication counters and gauges (for ``/stats`` and ``/metrics``)."""
        with self._cv:
            out: Dict[str, Any] = dict(self.counters)
            out["replicas"] = self.replicas
            out["peers"] = len(self._clients)
            out["pending_pushes"] = len(self._queue)
            out["pending_hints"] = len(self._hints)
            out["durable_hints"] = self.hint_log is not None
        return out

    def close(self, timeout: float = 5.0) -> None:
        """Stop the background thread and release the hint journal."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        self._thread.join(timeout)
        if self.hint_log is not None:
            self.hint_log.close()
        with self._cv:
            clients = list(self._clients.values())
        for client in clients:
            try:
                client.close()
            except Exception:
                pass
