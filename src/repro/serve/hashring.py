"""Consistent-hash ring for the sharded plan fleet.

The fleet routes plan requests to worker shards by *content affinity*:
an identical request must keep landing on the same shard so its plan
cache actually accumulates hits.  A modulo hash would remap nearly every
key whenever a shard joins or leaves; a consistent-hash ring remaps only
the keys whose arc the change touches -- on average ``K / N`` of ``K``
keys across ``N`` shards (tested by ``tests/test_serve_hashring.py``).

Placement is deterministic across processes and restarts: positions are
SHA-256 digests of ``"shard-id/replica-index"`` (never Python's seeded
``hash``), so a restarted router rebuilds the identical ring and a
recovered shard finds its old keys waiting on its own arc.

Each shard is planted at ``replicas`` virtual points to smooth the
arc-length distribution; :meth:`HashRing.preference` walks the ring from
a key's position and yields each distinct shard once, which gives the
router its deterministic fail-over order and the sibling-fill path its
"most likely owner first" query order.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import FuPerModError

#: Virtual points per shard; 64 keeps arc lengths within a few percent
#: of even for single-digit fleets while staying cheap to rebuild.
DEFAULT_REPLICAS = 64


def _position(text: str) -> int:
    """Deterministic 64-bit ring position for ``text``."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over named shards.

    Args:
        shards: initial shard identifiers (order-insensitive; the ring's
            layout depends only on the identifier strings).
        replicas: virtual points per shard (must be positive).
    """

    def __init__(
        self, shards: Iterable[str] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas <= 0:
            raise FuPerModError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._keys: List[int] = []
        self._shards: Dict[str, List[int]] = {}
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------

    @property
    def shards(self) -> Tuple[str, ...]:
        """The member shard identifiers, sorted."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        """Number of member shards."""
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        """Whether ``shard`` is a member."""
        return shard in self._shards

    def add(self, shard: str) -> None:
        """Plant ``shard`` at its virtual points (idempotent is an error).

        Raises:
            FuPerModError: when the shard is already a member -- a silent
                double-add would double its arc share.
        """
        if shard in self._shards:
            raise FuPerModError(f"shard {shard!r} is already on the ring")
        positions = []
        for index in range(self.replicas):
            pos = _position(f"{shard}/{index}")
            at = bisect.bisect_left(self._keys, pos)
            self._keys.insert(at, pos)
            self._points.insert(at, (pos, shard))
            positions.append(pos)
        self._shards[shard] = positions

    def remove(self, shard: str) -> None:
        """Remove ``shard`` and all its virtual points.

        Raises:
            FuPerModError: when the shard is not a member.
        """
        if shard not in self._shards:
            raise FuPerModError(f"shard {shard!r} is not on the ring")
        del self._shards[shard]
        self._points = [(pos, s) for pos, s in self._points if s != shard]
        self._keys = [pos for pos, _ in self._points]

    # -- lookup ------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The shard owning ``key`` (first point clockwise of its hash).

        Raises:
            FuPerModError: when the ring is empty.
        """
        if not self._points:
            raise FuPerModError("hash ring has no shards")
        at = bisect.bisect_right(self._keys, _position(key))
        if at == len(self._points):
            at = 0
        return self._points[at][1]

    def preference(
        self, key: str, limit: Optional[int] = None
    ) -> List[str]:
        """Distinct shards in clockwise order from ``key``'s position.

        The first entry is :meth:`lookup`'s answer (the key's home); the
        rest are the deterministic fail-over order the router walks when
        shards are down, and the query order sibling fills use.  With
        ``limit`` the walk stops after that many distinct shards.
        """
        if not self._points:
            return []
        cap = len(self._shards) if limit is None else max(0, limit)
        start = bisect.bisect_right(self._keys, _position(key))
        seen: List[str] = []
        for offset in range(len(self._points)):
            shard = self._points[(start + offset) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) >= cap:
                    break
        return seen

    def replica_set(self, key: str, n: int) -> List[str]:
        """The ``n`` distinct shards responsible for ``key``.

        The first entry is the key's home (:meth:`lookup`); the rest are
        its successors clockwise -- the shards the home asynchronously
        replicates committed plans to, and the shards the router fails
        reads over to when the home is down.  Fewer than ``n`` shards on
        the ring returns them all: a one-shard fleet has a replica set
        of one, not an error.
        """
        if n <= 0:
            raise FuPerModError(f"replica set size must be positive, got {n}")
        return self.preference(key, limit=n)

    def __iter__(self) -> Iterator[str]:
        """Iterate the member shard identifiers, sorted."""
        return iter(self.shards)
