"""Write-ahead journal for the plan cache (crash-safe serving).

Whole-file snapshots (:mod:`repro.io.plans`) only persist the cache at
shutdown; a killed ``fupermod serve`` process loses every plan computed
since the last save.  This module closes that gap with the same
journalling discipline as :class:`repro.io.checkpoint.SweepCheckpoint`:

* :class:`PlanWAL` is an append-only journal of cache *operations*
  (``put`` / ``invalidate`` / ``clear``), one fsynced JSON line each, so
  the on-disk log is always a durable prefix of the mutations applied;
* :class:`DurablePlanCache` is a :class:`~repro.serve.cache.PlanCache`
  that journals every mutation **before** applying it (write-ahead), and
  recovers bit-for-bit from ``snapshot + WAL replay`` -- replaying the
  operation log through the same ``put`` path reproduces the same LRU
  order and the same evictions, so a SIGKILL loses at most the one torn
  tail record of an interrupted commit;
* :meth:`DurablePlanCache.compact` atomically rewrites the snapshot
  (temp file + ``os.replace``, reusing the idiom of
  ``SweepCheckpoint.compact``) and truncates the journal; compaction
  runs automatically every ``compact_every`` journaled operations and on
  graceful shutdown (:meth:`DurablePlanCache.close`).

Journal records carry the fingerprint version: a log written under a
different :data:`~repro.serve.fingerprint.FINGERPRINT_VERSION` replays
as empty (mirroring the snapshot contract), because its keys can never
match -- and could falsely match -- requests under the current encoding.

**Durability degradation.**  A dead disk must not take the serving path
down with it: with a ``durability_budget`` configured, journal-append
failures are absorbed instead of raised.  Every failed append still
lands the mutation in memory (the request succeeds, acknowledged
``durable: false``), and once ``durability_budget`` *consecutive*
appends have failed the cache trips to **memory-only mode** -- appends
stop entirely, a background probe re-tests the disk every
``probe_interval`` seconds, and on the first successful probe the cache
re-syncs: fresh snapshot, ``os.replace``, journal reset on a brand-new
handle.  The fsyncgate rule is load-bearing here -- a handle that saw a
failed write or fsync is never trusted again (the base journal discards
it at failure time), so healing always starts from a reopened file and
a full re-sync rather than an append to a wounded log.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import PersistenceError
from repro.serve.cache import PlanCache, check_spec_kind
from repro.serve.fingerprint import FINGERPRINT_VERSION
from repro.serve.journal import AppendJournal, Opener
from repro.serve.plan import PlanResult

PathLike = Union[str, Path]

_MAGIC = "fupermod-plan-wal"
_VERSION = 1

#: Operations a journal record may carry.
_OPS = ("put", "invalidate", "clear")


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of reading a journal back.

    Attributes:
        ops: the validated operation records, in commit order.  Records
            written under a different fingerprint version are omitted
            (their keys are meaningless under the current encoding).
        valid_bytes: length of the well-formed prefix of the file; a
            recovering cache truncates the journal here so the torn tail
            of an interrupted commit cannot corrupt later appends.
        dropped_tail: True when a torn final record was dropped (the
            signature of dying mid-write).
    """

    ops: List[Dict[str, Any]]
    valid_bytes: int
    dropped_tail: bool


class PlanWAL(AppendJournal):
    """Append-only, fsynced journal of plan-cache operations.

    One :class:`~repro.serve.journal.AppendJournal` specialised to the
    cache-operation vocabulary (``put`` / ``invalidate`` / ``clear``);
    the append path, torn-tail replay loop and lifecycle live in the
    base, along with the injectable ``opener`` fault seam.

    The journal keeps its file handle open across appends; call
    :meth:`close` (or use :class:`DurablePlanCache` as a context
    manager) when done.  Appends are not internally locked --
    :class:`DurablePlanCache` serialises them under the cache lock so
    journal order always matches apply order.
    """

    magic = _MAGIC
    version = _VERSION
    record_name = "plan-WAL"
    log_name = "WAL"
    op_name = "WAL"
    ops = _OPS

    # -- appending ---------------------------------------------------------

    def _record(self, op: str, **fields: Any) -> Dict[str, Any]:
        return self._stamp(fp=FINGERPRINT_VERSION, op=op, **fields)

    def append_put(
        self,
        key: str,
        models_fp: str,
        result: PlanResult,
        spec: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Durably journal one insert before it is applied.

        ``spec`` is the optional ``(total, partitioner, options[, kind,
        objective])`` the cache stores for refit re-solving; journalled
        so it survives a crash along with the entry it annotates.
        """
        fields: Dict[str, Any] = {
            "key": key, "models_fp": models_fp, "result": result.to_dict()
        }
        if spec is not None:
            fields["spec"] = list(spec)
        self._write_line(self._record("put", **fields))

    def append_invalidate(self, key: str) -> None:
        """Durably journal one invalidation."""
        self._write_line(self._record("invalidate", key=key))

    def append_clear(self) -> None:
        """Durably journal a full clear."""
        self._write_line(self._record("clear"))

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Read the committed operations back, tolerating a torn tail.

        A missing journal is empty.  A torn *final* line (interrupted
        mid-write) is dropped; corruption anywhere else raises
        :class:`~repro.errors.PersistenceError` -- a journal with a
        damaged interior cannot be trusted at all.
        """
        entries, valid_bytes, dropped = self.replay_lines()
        ops = [entry for entry in entries if entry is not None]
        return ReplayResult(ops, valid_bytes, dropped)

    def _validate(self, record: Dict[str, Any], lineno: int) -> Optional[Dict[str, Any]]:
        """Validate one journal record; None when fingerprint-mismatched."""
        op = self._check_op(record, lineno)
        if op == "put":
            try:
                # Validate eagerly: a malformed result is corruption, and
                # only a *torn tail* corruption is forgivable.
                PlanResult.from_dict(record["result"])
                str(record["key"]), str(record["models_fp"])
            except Exception as exc:
                raise PersistenceError(
                    f"{self.path}:{lineno}: malformed put record: {exc}"
                ) from None
        elif op == "invalidate" and "key" not in record:
            raise PersistenceError(
                f"{self.path}:{lineno}: invalidate record without a key"
            )
        if record.get("fp") != FINGERPRINT_VERSION:
            return None
        return record


class DurablePlanCache(PlanCache):
    """A plan cache whose every mutation survives a SIGKILL.

    Args:
        snapshot_path: the snapshot file (``repro.io.plans`` format).
        wal_path: the journal file (default: ``<snapshot_path>.wal``).
        compact_every: journaled operations between automatic
            compactions (snapshot rewrite + journal truncation).
        fsync: fsync every journal append (see :class:`PlanWAL`).
        durability_budget: consecutive journal-append failures tolerated
            before the cache trips to memory-only mode.  ``None``
            (default) disables degradation: an append failure raises
            :class:`~repro.errors.PersistenceError` out of the mutation,
            the historical behaviour.
        probe_interval: seconds between background disk re-tests while
            in memory-only mode.
        opener: ``open``-compatible callable for every journal file
            access (the storage fault seam; see
            :mod:`repro.faults.disk`).
        on_transition: called as ``on_transition(mode, reason)`` exactly
            once per durability-mode change (``"memory-only"`` on trip,
            ``"durable"`` on heal) -- the serving layer's
            one-log-line-per-transition hook.  Called under the cache
            lock; keep it cheap and never touch the cache from it.
        **cache_kwargs: forwarded to :class:`~repro.serve.cache.PlanCache`
            (``capacity``, ``ttl``, ``max_bytes``, ``clock``).

    Write-ahead contract: once ``put`` returns, the plan is durable.  A
    crash *between* the journal append and the in-memory apply recovers
    the plan anyway (committed means journaled).  Replay drives the
    journal back through the normal ``put``/``invalidate``/``clear``
    path, so recovery reproduces LRU order and capacity evictions
    bit-for-bit; entries get a fresh TTL lease, exactly as snapshot
    loading does (monotonic clocks do not survive restarts).

    With a ``durability_budget``, the contract weakens *visibly* rather
    than failing: mutations that could not be journaled are applied in
    memory anyway and :meth:`ack_durable` flips False until the next
    successful heal re-sync, so callers always know which promise the
    return of ``put`` carries.
    """

    def __init__(
        self,
        snapshot_path: PathLike,
        wal_path: Optional[PathLike] = None,
        compact_every: int = 256,
        fsync: bool = True,
        durability_budget: Optional[int] = None,
        probe_interval: float = 1.0,
        opener: Optional[Opener] = None,
        on_transition: Optional[Callable[[str, str], None]] = None,
        **cache_kwargs: Any,
    ) -> None:
        super().__init__(**cache_kwargs)
        if compact_every <= 0:
            raise ValueError(
                f"compact_every must be positive, got {compact_every}"
            )
        if durability_budget is not None and durability_budget <= 0:
            raise ValueError(
                f"durability_budget must be positive or None, "
                f"got {durability_budget}"
            )
        if probe_interval <= 0:
            raise ValueError(
                f"probe_interval must be positive, got {probe_interval}"
            )
        self.snapshot_path = Path(snapshot_path)
        self.wal = PlanWAL(
            wal_path if wal_path is not None
            else self.snapshot_path.with_name(self.snapshot_path.name + ".wal"),
            fsync=fsync,
            opener=opener,
        )
        self.compact_every = compact_every
        self.compactions = 0
        self._replaying = False
        # -- durability guard state --
        self.durability_budget = durability_budget
        self.probe_interval = probe_interval
        self.on_transition = on_transition
        self._mode = "durable"
        self._append_failures = 0  # consecutive
        self.trips = 0
        self.heals = 0
        self.last_disk_error = ""
        self._probe_stop = threading.Event()
        self._probe_thread: Optional[threading.Thread] = None

    # -- recovery ----------------------------------------------------------

    def recover(self) -> Tuple[int, int]:
        """Rebuild the cache from ``snapshot + WAL replay``.

        Returns ``(snapshot_entries, wal_ops)``.  A torn journal tail is
        truncated away so subsequent appends start on a clean record
        boundary.  Raises :class:`~repro.errors.PersistenceError` on
        interior corruption of either file.
        """
        from repro.io.plans import load_plan_cache

        with self._lock:
            snapshot_entries = 0
            self._replaying = True
            try:
                if self.snapshot_path.exists():
                    snapshot_entries = load_plan_cache(self.snapshot_path, self)
                replayed = self.wal.replay()
                for op in replayed.ops:
                    if op["op"] == "put":
                        spec = op.get("spec")
                        super().put(
                            str(op["key"]),
                            PlanResult.from_dict(op["result"]),
                            str(op["models_fp"]),
                            spec=tuple(spec) if spec is not None else None,
                        )
                    elif op["op"] == "invalidate":
                        super().invalidate(str(op["key"]))
                    else:
                        super().clear()
            finally:
                self._replaying = False
            if replayed.dropped_tail:
                self.wal.truncate(replayed.valid_bytes)
            self.wal.records = len(replayed.ops)
            return snapshot_entries, len(replayed.ops)

    # -- the durability guard ----------------------------------------------

    @property
    def durability_mode(self) -> str:
        """``"durable"`` or ``"memory-only"``."""
        return self._mode

    def ack_durable(self) -> bool:
        """Whether an acknowledgement issued *now* may claim durability.

        False while in memory-only mode **and** while the most recent
        journal append failed (the pre-trip window): a plan whose append
        was absorbed is in memory only, even though the cache has not
        given up on the disk yet.
        """
        return self._mode == "durable" and self._append_failures == 0

    def _journal(self, append: Callable[[], None]) -> bool:
        """Run one WAL append under the guard; True when journaled.

        Caller holds the lock.  With no ``durability_budget`` a failure
        propagates (historical behaviour).  With one, the failure is
        absorbed -- counted, and once the budget is exhausted the cache
        trips to memory-only mode.  In memory-only mode appends are not
        attempted at all (the disk is known dead; the probe owns it).
        """
        if self._mode != "durable":
            return False
        try:
            append()
        except PersistenceError as exc:
            self.last_disk_error = str(exc)
            if self.durability_budget is None:
                raise
            self._append_failures += 1
            if self._append_failures >= self.durability_budget:
                self._trip(str(exc))
            return False
        else:
            self._append_failures = 0
            return True

    def _trip(self, reason: str) -> None:
        """Enter memory-only mode and start probing for a heal."""
        self._mode = "memory-only"
        self.trips += 1
        self._probe_stop.clear()
        thread = threading.Thread(
            target=self._probe_loop, name="durability-probe", daemon=True
        )
        self._probe_thread = thread
        thread.start()
        if self.on_transition is not None:
            self.on_transition("memory-only", reason)

    def _probe_loop(self) -> None:
        while not self._probe_stop.wait(self.probe_interval):
            if self.probe_now():
                return

    def _probe_disk(self) -> bool:
        """One write+fsync round-trip against the journal's disk."""
        probe_path = self.wal.path.with_name(self.wal.path.name + ".probe")
        try:
            handle = self.wal.opener(probe_path, "w", encoding="utf-8")
            try:
                handle.write("durability-probe\n")
                handle.flush()
                if self.wal.fsync:
                    self.wal._sync(handle)
            finally:
                handle.close()
        except OSError:
            return False
        finally:
            try:
                probe_path.unlink()
            except OSError:
                pass
        return True

    def probe_now(self) -> bool:
        """Re-test the disk once; heal and re-sync if it answers.

        The background probe calls this on its interval; tests (and
        impatient operators) may call it directly.  Returns True when
        the cache is durable again.
        """
        if self._mode == "durable":
            return True
        if not self._probe_disk():
            return False
        with self._lock:
            if self._mode == "durable":
                return True
            try:
                # fsyncgate: the old handle was discarded at failure
                # time; re-sync from scratch -- fresh snapshot,
                # os.replace, journal reset on a brand-new handle.
                written = self.compact()
            except PersistenceError as exc:
                self.last_disk_error = str(exc)
                return False
            self._mode = "durable"
            self._append_failures = 0
            self.heals += 1
            self._probe_stop.set()
            if self.on_transition is not None:
                self.on_transition(
                    "durable", f"disk healed; re-synced {written} entries"
                )
            return True

    # -- journaled mutations ----------------------------------------------

    def put(
        self,
        key: str,
        result: PlanResult,
        models_fp: str,
        spec: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Journal, then insert; durable once this returns.

        The cross-kind aliasing guard runs *before* the journal append:
        a spec/result pair disagreeing on the plan kind must reach
        neither memory nor the WAL (a journaled poisoned record would
        fail every future recovery).
        """
        check_spec_kind(result, spec)
        with self._lock:
            if not self._replaying:
                if spec is None:
                    # Positional call keeps pre-lineage PlanWAL
                    # subclasses (three-argument signature) working.
                    self._journal(
                        lambda: self.wal.append_put(key, models_fp, result)
                    )
                else:
                    self._journal(lambda: self.wal.append_put(
                        key, models_fp, result, spec=spec
                    ))
            super().put(key, result, models_fp, spec=spec)
            if not self._replaying:
                self._maybe_compact()

    def invalidate(self, key: str) -> bool:
        """Journal, then drop one entry; True if it existed."""
        with self._lock:
            if not self._replaying and key in self._entries:
                self._journal(lambda: self.wal.append_invalidate(key))
            return super().invalidate(key)

    def clear(self) -> None:
        """Journal, then drop every entry."""
        with self._lock:
            if not self._replaying:
                self._journal(self.wal.append_clear)
            super().clear()
            if not self._replaying:
                self._maybe_compact()

    # -- compaction --------------------------------------------------------

    def _maybe_compact(self) -> None:
        # Never compact while degraded: the snapshot rewrite would fail
        # on the same dead disk, and the heal re-sync owns that work.
        if self._mode == "durable" and self.wal.records >= self.compact_every:
            self.compact()

    def compact(self) -> int:
        """Snapshot the live entries atomically and truncate the journal.

        Returns the number of entries written.  Safe against a crash at
        any point: the snapshot lands via temp-file + ``os.replace``,
        and a journal that survives the snapshot merely replays
        idempotent operations already captured by it.
        """
        from repro.io.plans import save_plan_cache

        with self._lock:
            written = save_plan_cache(self.snapshot_path, self)
            self.wal.reset()
            self.compactions += 1
            return written

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: compact, then release the journal handle.

        In memory-only mode there is nothing durable to say goodbye to:
        the probe is stopped and the handle released, but no compaction
        is attempted against the dead disk.
        """
        self._probe_stop.set()
        thread = self._probe_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        with self._lock:
            if self._mode == "durable":
                try:
                    self.compact()
                except PersistenceError as exc:
                    # A disk dying *during* shutdown must not crash the
                    # shutdown path when degradation is on; the journal
                    # already holds everything that could be saved.
                    if self.durability_budget is None:
                        raise
                    self.last_disk_error = str(exc)
            self.wal.close()

    def durability_stats(self) -> Dict[str, Any]:
        """Snapshot of the durability-side counters (for ``/stats``)."""
        with self._lock:
            return {
                "wal_records": self.wal.records,
                "compactions": self.compactions,
                "compact_every": self.compact_every,
                "snapshot": str(self.snapshot_path),
                "mode": self._mode,
                "budget": self.durability_budget,
                "append_errors": self.wal.append_errors,
                "consecutive_failures": self._append_failures,
                "trips": self.trips,
                "heals": self.heals,
                "last_disk_error": self.last_disk_error,
            }

    def __enter__(self) -> "DurablePlanCache":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
