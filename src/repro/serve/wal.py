"""Write-ahead journal for the plan cache (crash-safe serving).

Whole-file snapshots (:mod:`repro.io.plans`) only persist the cache at
shutdown; a killed ``fupermod serve`` process loses every plan computed
since the last save.  This module closes that gap with the same
journalling discipline as :class:`repro.io.checkpoint.SweepCheckpoint`:

* :class:`PlanWAL` is an append-only journal of cache *operations*
  (``put`` / ``invalidate`` / ``clear``), one fsynced JSON line each, so
  the on-disk log is always a durable prefix of the mutations applied;
* :class:`DurablePlanCache` is a :class:`~repro.serve.cache.PlanCache`
  that journals every mutation **before** applying it (write-ahead), and
  recovers bit-for-bit from ``snapshot + WAL replay`` -- replaying the
  operation log through the same ``put`` path reproduces the same LRU
  order and the same evictions, so a SIGKILL loses at most the one torn
  tail record of an interrupted commit;
* :meth:`DurablePlanCache.compact` atomically rewrites the snapshot
  (temp file + ``os.replace``, reusing the idiom of
  ``SweepCheckpoint.compact``) and truncates the journal; compaction
  runs automatically every ``compact_every`` journaled operations and on
  graceful shutdown (:meth:`DurablePlanCache.close`).

Journal records carry the fingerprint version: a log written under a
different :data:`~repro.serve.fingerprint.FINGERPRINT_VERSION` replays
as empty (mirroring the snapshot contract), because its keys can never
match -- and could falsely match -- requests under the current encoding.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import PersistenceError
from repro.serve.cache import PlanCache, check_spec_kind
from repro.serve.fingerprint import FINGERPRINT_VERSION
from repro.serve.plan import PlanResult

PathLike = Union[str, Path]

_MAGIC = "fupermod-plan-wal"
_VERSION = 1

#: Operations a journal record may carry.
_OPS = ("put", "invalidate", "clear")


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of reading a journal back.

    Attributes:
        ops: the validated operation records, in commit order.  Records
            written under a different fingerprint version are omitted
            (their keys are meaningless under the current encoding).
        valid_bytes: length of the well-formed prefix of the file; a
            recovering cache truncates the journal here so the torn tail
            of an interrupted commit cannot corrupt later appends.
        dropped_tail: True when a torn final record was dropped (the
            signature of dying mid-write).
    """

    ops: List[Dict[str, Any]]
    valid_bytes: int
    dropped_tail: bool


class PlanWAL:
    """Append-only, fsynced journal of plan-cache operations.

    Args:
        path: the journal file; created (with its parent directory) on
            the first append.
        fsync: fsync every appended record (the durability guarantee;
            disable only in benchmarks that measure the no-sync floor).

    The journal keeps its file handle open across appends; call
    :meth:`close` (or use :class:`DurablePlanCache` as a context
    manager) when done.  Appends are not internally locked --
    :class:`DurablePlanCache` serialises them under the cache lock so
    journal order always matches apply order.
    """

    def __init__(self, path: PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None
        #: Records appended (or replayed) since the last reset; the
        #: compaction threshold counts against this.
        self.records = 0

    @property
    def exists(self) -> bool:
        """Whether a journal file is present on disk."""
        return self.path.exists()

    # -- appending ---------------------------------------------------------

    def _write_line(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True)
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise PersistenceError(
                f"cannot journal to {self.path}: {exc}"
            ) from exc
        self.records += 1

    def _record(self, op: str, **fields: Any) -> Dict[str, Any]:
        return {
            "magic": _MAGIC,
            "v": _VERSION,
            "fp": FINGERPRINT_VERSION,
            "op": op,
            **fields,
        }

    def append_put(
        self,
        key: str,
        models_fp: str,
        result: PlanResult,
        spec: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Durably journal one insert before it is applied.

        ``spec`` is the optional ``(total, partitioner, options[, kind,
        objective])`` the cache stores for refit re-solving; journalled
        so it survives a crash along with the entry it annotates.
        """
        fields: Dict[str, Any] = {
            "key": key, "models_fp": models_fp, "result": result.to_dict()
        }
        if spec is not None:
            fields["spec"] = list(spec)
        self._write_line(self._record("put", **fields))

    def append_invalidate(self, key: str) -> None:
        """Durably journal one invalidation."""
        self._write_line(self._record("invalidate", key=key))

    def append_clear(self) -> None:
        """Durably journal a full clear."""
        self._write_line(self._record("clear"))

    # -- replay ------------------------------------------------------------

    def replay(self) -> ReplayResult:
        """Read the committed operations back, tolerating a torn tail.

        A missing journal is empty.  A torn *final* line (interrupted
        mid-write) is dropped; corruption anywhere else raises
        :class:`~repro.errors.PersistenceError` -- a journal with a
        damaged interior cannot be trusted at all.
        """
        if not self.path.exists():
            return ReplayResult([], 0, False)
        try:
            text = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise PersistenceError(f"cannot read {self.path}: {exc}") from exc
        ops: List[Dict[str, Any]] = []
        valid_bytes = 0
        dropped = False
        lines = text.split("\n")
        # A well-formed journal ends with a newline, so the final split
        # element is empty; anything else is a torn tail.
        body, tail = lines[:-1], lines[-1]
        if tail:
            dropped = True
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                valid_bytes += len(line.encode("utf-8")) + 1
                continue
            try:
                ops_entry = self._parse(line, lineno)
            except PersistenceError:
                if lineno == len(body) and not tail:
                    # Torn final line: the crash interrupted this commit;
                    # everything before it is intact.
                    dropped = True
                    break
                raise
            if ops_entry is not None:
                ops.append(ops_entry)
            valid_bytes += len(line.encode("utf-8")) + 1
        return ReplayResult(ops, valid_bytes, dropped)

    def _parse(self, line: str, lineno: int) -> Optional[Dict[str, Any]]:
        """Validate one journal line; None when fingerprint-mismatched."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise PersistenceError(f"{self.path}:{lineno}: {exc}") from None
        if not isinstance(record, dict) or record.get("magic") != _MAGIC:
            raise PersistenceError(
                f"{self.path}:{lineno}: not a plan-WAL record"
            )
        if record.get("v") != _VERSION:
            raise PersistenceError(
                f"{self.path}:{lineno}: unsupported WAL version "
                f"{record.get('v')!r}"
            )
        op = record.get("op")
        if op not in _OPS:
            raise PersistenceError(
                f"{self.path}:{lineno}: unknown WAL operation {op!r}"
            )
        if op == "put":
            try:
                # Validate eagerly: a malformed result is corruption, and
                # only a *torn tail* corruption is forgivable.
                PlanResult.from_dict(record["result"])
                str(record["key"]), str(record["models_fp"])
            except Exception as exc:
                raise PersistenceError(
                    f"{self.path}:{lineno}: malformed put record: {exc}"
                ) from None
        elif op == "invalidate" and "key" not in record:
            raise PersistenceError(
                f"{self.path}:{lineno}: invalidate record without a key"
            )
        if record.get("fp") != FINGERPRINT_VERSION:
            return None
        return record

    # -- lifecycle ---------------------------------------------------------

    def truncate(self, valid_bytes: int) -> None:
        """Cut the journal back to its well-formed prefix."""
        if not self.path.exists():
            return
        self._close_handle()
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise PersistenceError(
                f"cannot truncate {self.path}: {exc}"
            ) from exc

    def reset(self) -> None:
        """Empty the journal (after its contents reached a snapshot)."""
        self._close_handle()
        try:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise PersistenceError(f"cannot reset {self.path}: {exc}") from exc
        self.records = 0

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Close the append handle (the journal file stays on disk)."""
        self._close_handle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanWAL({str(self.path)!r}, records={self.records})"


class DurablePlanCache(PlanCache):
    """A plan cache whose every mutation survives a SIGKILL.

    Args:
        snapshot_path: the snapshot file (``repro.io.plans`` format).
        wal_path: the journal file (default: ``<snapshot_path>.wal``).
        compact_every: journaled operations between automatic
            compactions (snapshot rewrite + journal truncation).
        fsync: fsync every journal append (see :class:`PlanWAL`).
        **cache_kwargs: forwarded to :class:`~repro.serve.cache.PlanCache`
            (``capacity``, ``ttl``, ``max_bytes``, ``clock``).

    Write-ahead contract: once ``put`` returns, the plan is durable.  A
    crash *between* the journal append and the in-memory apply recovers
    the plan anyway (committed means journaled).  Replay drives the
    journal back through the normal ``put``/``invalidate``/``clear``
    path, so recovery reproduces LRU order and capacity evictions
    bit-for-bit; entries get a fresh TTL lease, exactly as snapshot
    loading does (monotonic clocks do not survive restarts).
    """

    def __init__(
        self,
        snapshot_path: PathLike,
        wal_path: Optional[PathLike] = None,
        compact_every: int = 256,
        fsync: bool = True,
        **cache_kwargs: Any,
    ) -> None:
        super().__init__(**cache_kwargs)
        if compact_every <= 0:
            raise ValueError(
                f"compact_every must be positive, got {compact_every}"
            )
        self.snapshot_path = Path(snapshot_path)
        self.wal = PlanWAL(
            wal_path if wal_path is not None
            else self.snapshot_path.with_name(self.snapshot_path.name + ".wal"),
            fsync=fsync,
        )
        self.compact_every = compact_every
        self.compactions = 0
        self._replaying = False

    # -- recovery ----------------------------------------------------------

    def recover(self) -> Tuple[int, int]:
        """Rebuild the cache from ``snapshot + WAL replay``.

        Returns ``(snapshot_entries, wal_ops)``.  A torn journal tail is
        truncated away so subsequent appends start on a clean record
        boundary.  Raises :class:`~repro.errors.PersistenceError` on
        interior corruption of either file.
        """
        from repro.io.plans import load_plan_cache

        with self._lock:
            snapshot_entries = 0
            self._replaying = True
            try:
                if self.snapshot_path.exists():
                    snapshot_entries = load_plan_cache(self.snapshot_path, self)
                replayed = self.wal.replay()
                for op in replayed.ops:
                    if op["op"] == "put":
                        spec = op.get("spec")
                        super().put(
                            str(op["key"]),
                            PlanResult.from_dict(op["result"]),
                            str(op["models_fp"]),
                            spec=tuple(spec) if spec is not None else None,
                        )
                    elif op["op"] == "invalidate":
                        super().invalidate(str(op["key"]))
                    else:
                        super().clear()
            finally:
                self._replaying = False
            if replayed.dropped_tail:
                self.wal.truncate(replayed.valid_bytes)
            self.wal.records = len(replayed.ops)
            return snapshot_entries, len(replayed.ops)

    # -- journaled mutations ----------------------------------------------

    def put(
        self,
        key: str,
        result: PlanResult,
        models_fp: str,
        spec: Optional[Tuple[Any, ...]] = None,
    ) -> None:
        """Journal, then insert; durable once this returns.

        The cross-kind aliasing guard runs *before* the journal append:
        a spec/result pair disagreeing on the plan kind must reach
        neither memory nor the WAL (a journaled poisoned record would
        fail every future recovery).
        """
        check_spec_kind(result, spec)
        with self._lock:
            if not self._replaying:
                if spec is None:
                    # Positional call keeps pre-lineage PlanWAL
                    # subclasses (three-argument signature) working.
                    self.wal.append_put(key, models_fp, result)
                else:
                    self.wal.append_put(key, models_fp, result, spec=spec)
            super().put(key, result, models_fp, spec=spec)
            if not self._replaying:
                self._maybe_compact()

    def invalidate(self, key: str) -> bool:
        """Journal, then drop one entry; True if it existed."""
        with self._lock:
            if not self._replaying and key in self._entries:
                self.wal.append_invalidate(key)
            return super().invalidate(key)

    def clear(self) -> None:
        """Journal, then drop every entry."""
        with self._lock:
            if not self._replaying:
                self.wal.append_clear()
            super().clear()
            if not self._replaying:
                self._maybe_compact()

    # -- compaction --------------------------------------------------------

    def _maybe_compact(self) -> None:
        if self.wal.records >= self.compact_every:
            self.compact()

    def compact(self) -> int:
        """Snapshot the live entries atomically and truncate the journal.

        Returns the number of entries written.  Safe against a crash at
        any point: the snapshot lands via temp-file + ``os.replace``,
        and a journal that survives the snapshot merely replays
        idempotent operations already captured by it.
        """
        from repro.io.plans import save_plan_cache

        with self._lock:
            written = save_plan_cache(self.snapshot_path, self)
            self.wal.reset()
            self.compactions += 1
            return written

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Graceful shutdown: compact, then release the journal handle."""
        with self._lock:
            self.compact()
            self.wal.close()

    def durability_stats(self) -> Dict[str, Any]:
        """Snapshot of the durability-side counters (for ``/stats``)."""
        with self._lock:
            return {
                "wal_records": self.wal.records,
                "compactions": self.compactions,
                "compact_every": self.compact_every,
                "snapshot": str(self.snapshot_path),
            }

    def __enter__(self) -> "DurablePlanCache":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
