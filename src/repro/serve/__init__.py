"""repro.serve -- the partition-plan service.

Production use of FuPerMod is repetitive: the same fitted models are
queried for plans at a stream of nearby totals, often from several
threads at once.  This package turns the one-shot partitioners into a
serving layer built on three ideas:

* **content fingerprints** (:mod:`~repro.serve.fingerprint`) -- plans are
  keyed by the fitted parameters of the model set plus the request, so
  identity survives refits, restarts and processes;
* **a plan cache with warm starts** (:mod:`~repro.serve.cache`,
  :class:`~repro.serve.engine.PlanEngine`) -- exact repeats are served
  without computing; near repeats seed the iterative partitioners with a
  :class:`~repro.core.partition.warm.WarmStart`, cutting iterations while
  staying bit-identical to a cold solve;
* **single-flight coalescing** (:class:`~repro.serve.server.PlanServer`)
  -- N concurrent identical requests run exactly one computation.

The hardening layer makes the service safe to depend on:

* **durability** (:mod:`~repro.serve.wal`) -- a write-ahead journal plus
  periodic snapshot compaction make the cache of a killed server
  recoverable bit-for-bit, minus at most one torn tail record;
* **overload protection** -- bounded admission with load shedding and
  per-request deadlines (:class:`~repro.serve.server.PlanServer`),
  per-model-fingerprint circuit breakers
  (:mod:`~repro.serve.breaker`) that short-circuit failing model sets
  to the degradation ladder, and a jittered-backoff
  :class:`~repro.serve.client.PlanClient`.

Front ends (:mod:`~repro.serve.frontend`, ``fupermod serve``) expose the
server over JSON-lines stdio, threaded stdlib HTTP, and a keep-alive
:mod:`asyncio` front end (:mod:`~repro.serve.aio`) with an inline
cache-hit fast lane, all speaking one protocol with a typed error
taxonomy (400/413/500/503/504) and a versioned ``/metrics`` endpoint.

The fleet layer scales out to many processes:

* **sharding** -- :class:`~repro.serve.fleet.PlanFleet` runs N worker
  processes (:mod:`~repro.serve.worker`), each with its own engine and
  per-shard write-ahead journal;
* **routing** -- :class:`~repro.serve.router.PlanRouter`
  consistent-hashes requests to a home shard
  (:class:`~repro.serve.hashring.HashRing`) and relays responses as raw
  bytes (bit parity through the fleet); non-affinitised traffic is
  apportioned by the repo's *own partitioners* over functional
  performance models fitted to each worker's measured service rate --
  FuPerMod dogfooding its methodology on its serving fleet;
* **peer cache fill** -- a shard missing a plan probes its siblings
  (ring preference order) before solving cold;
* **partition tolerance** (:mod:`~repro.serve.replicate`) -- each
  committed plan is pushed asynchronously to its ring successors
  (:class:`~repro.serve.replicate.PlanReplicator`), failed pushes
  become durable hints (:class:`~repro.serve.replicate.HintLog`,
  hinted handoff) drained on peer recovery, and shard digests feed
  anti-entropy repair (:meth:`~repro.serve.fleet.PlanFleet.anti_entropy`)
  after a partition heals; the router propagates per-request deadlines
  hop to hop and caps failover retries with a token-bucket
  :class:`~repro.serve.router.RetryBudget`.

The closed-loop layer lets served models track the platform:

* **feedback with a trust boundary** (:mod:`~repro.serve.feedback`) --
  apps report actual per-rank timings (``POST /feedback``); a per-source
  :class:`~repro.serve.feedback.FeedbackQuarantine` scores every report
  against the current models (non-finite, negative, outlier, impossible
  sizes, rate limits) and quarantines offenders, naming every rejection
  in a :class:`~repro.serve.feedback.QuarantineReport`;
* **versioned model lineage** (:mod:`~repro.serve.lineage`) -- accepted
  points refit *copies* of the models behind a parent-to-child
  fingerprint chain with monotonically increasing epochs, journalled to
  a :class:`~repro.serve.lineage.LineageWAL` before the atomic swap, so
  old plans stay servable during a refit and a SIGKILL mid-refit
  recovers a consistent epoch;
* **a regression gate** -- each refit must predict a held-back window of
  accepted feedback at least as well as its parent, or the lineage
  rolls back (counted in ``/metrics``); stale cache entries are
  invalidated and warm-re-solved off the request path.

Cache persistence lives in :mod:`repro.io.plans`; serve-level chaos
hooks (including the seeded :class:`~repro.faults.FeedbackStorm`) in
:mod:`repro.faults.serve`.
"""

from repro.serve.aio import AioFrontend, AsyncHTTPBase
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.cache import CacheStats, PlanCache
from repro.serve.client import KeepAliveTransport, PlanClient, http_transport
from repro.serve.engine import PlanEngine
from repro.serve.feedback import (
    FeedbackController,
    FeedbackCounters,
    FeedbackQuarantine,
    FeedbackReport,
    QuarantineReport,
)
from repro.serve.fingerprint import (
    FINGERPRINT_VERSION,
    affinity_key,
    fingerprint_model,
    fingerprint_models,
    fingerprint_objective_request,
    fingerprint_request,
)
from repro.serve.fleet import PlanFleet
from repro.serve.frontend import (
    handle_request,
    make_http_server,
    serve_stdio,
    validate_objective,
)
from repro.serve.hashring import HashRing
from repro.serve.lineage import LineageRecord, LineageWAL, ModelLineage
from repro.serve.plan import (
    PLAN_KINDS,
    PLAN_KIND_VERSION,
    PlanRequest,
    PlanResult,
    ServeCounters,
)
from repro.serve.replicate import (
    DEFAULT_REPLICA_SET,
    HintLog,
    PlanReplicator,
    entry_fingerprint,
)
from repro.serve.router import (
    FpmBalancer,
    PlanRouter,
    RetryBudget,
    RoundRobinBalancer,
)
from repro.serve.server import PlanServer
from repro.serve.shard import DEADLINE_HEADER, ShardClient
from repro.serve.wal import DurablePlanCache, PlanWAL, ReplayResult

__all__ = [
    "AioFrontend",
    "AsyncHTTPBase",
    "BreakerBoard",
    "CacheStats",
    "CircuitBreaker",
    "DEADLINE_HEADER",
    "DEFAULT_REPLICA_SET",
    "DurablePlanCache",
    "FINGERPRINT_VERSION",
    "FeedbackController",
    "FeedbackCounters",
    "FeedbackQuarantine",
    "FeedbackReport",
    "FpmBalancer",
    "HashRing",
    "HintLog",
    "KeepAliveTransport",
    "LineageRecord",
    "LineageWAL",
    "ModelLineage",
    "PLAN_KINDS",
    "PLAN_KIND_VERSION",
    "PlanCache",
    "PlanClient",
    "PlanEngine",
    "PlanFleet",
    "PlanReplicator",
    "PlanRequest",
    "PlanResult",
    "PlanRouter",
    "PlanServer",
    "PlanWAL",
    "QuarantineReport",
    "ReplayResult",
    "RetryBudget",
    "RoundRobinBalancer",
    "ServeCounters",
    "ShardClient",
    "affinity_key",
    "entry_fingerprint",
    "fingerprint_model",
    "fingerprint_models",
    "fingerprint_objective_request",
    "fingerprint_request",
    "handle_request",
    "http_transport",
    "make_http_server",
    "serve_stdio",
    "validate_objective",
]
