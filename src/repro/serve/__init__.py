"""repro.serve -- the partition-plan service.

Production use of FuPerMod is repetitive: the same fitted models are
queried for plans at a stream of nearby totals, often from several
threads at once.  This package turns the one-shot partitioners into a
serving layer built on three ideas:

* **content fingerprints** (:mod:`~repro.serve.fingerprint`) -- plans are
  keyed by the fitted parameters of the model set plus the request, so
  identity survives refits, restarts and processes;
* **a plan cache with warm starts** (:mod:`~repro.serve.cache`,
  :class:`~repro.serve.engine.PlanEngine`) -- exact repeats are served
  without computing; near repeats seed the iterative partitioners with a
  :class:`~repro.core.partition.warm.WarmStart`, cutting iterations while
  staying bit-identical to a cold solve;
* **single-flight coalescing** (:class:`~repro.serve.server.PlanServer`)
  -- N concurrent identical requests run exactly one computation.

The hardening layer makes the service safe to depend on:

* **durability** (:mod:`~repro.serve.wal`) -- a write-ahead journal plus
  periodic snapshot compaction make the cache of a killed server
  recoverable bit-for-bit, minus at most one torn tail record;
* **overload protection** -- bounded admission with load shedding and
  per-request deadlines (:class:`~repro.serve.server.PlanServer`),
  per-model-fingerprint circuit breakers
  (:mod:`~repro.serve.breaker`) that short-circuit failing model sets
  to the degradation ladder, and a jittered-backoff
  :class:`~repro.serve.client.PlanClient`.

Front ends (:mod:`~repro.serve.frontend`, ``fupermod serve``) expose the
server over JSON-lines stdio and stdlib HTTP, with a typed error
taxonomy (400/413/500/503/504).  Cache persistence lives in
:mod:`repro.io.plans`; serve-level chaos hooks in
:mod:`repro.faults.serve`.
"""

from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.cache import CacheStats, PlanCache
from repro.serve.client import PlanClient, http_transport
from repro.serve.engine import PlanEngine
from repro.serve.fingerprint import (
    FINGERPRINT_VERSION,
    fingerprint_model,
    fingerprint_models,
    fingerprint_request,
)
from repro.serve.frontend import handle_request, make_http_server, serve_stdio
from repro.serve.plan import PlanRequest, PlanResult, ServeCounters
from repro.serve.server import PlanServer
from repro.serve.wal import DurablePlanCache, PlanWAL, ReplayResult

__all__ = [
    "BreakerBoard",
    "CacheStats",
    "CircuitBreaker",
    "DurablePlanCache",
    "FINGERPRINT_VERSION",
    "PlanCache",
    "PlanClient",
    "PlanEngine",
    "PlanRequest",
    "PlanResult",
    "PlanServer",
    "PlanWAL",
    "ReplayResult",
    "ServeCounters",
    "fingerprint_model",
    "fingerprint_models",
    "fingerprint_request",
    "handle_request",
    "http_transport",
    "make_http_server",
    "serve_stdio",
]
