"""Terminal plots for the experiment harness.

The benches reproduce *figures*; this module lets them draw those figures
in the terminal -- an ASCII scatter/line canvas with multiple labelled
series -- so ``pytest benchmarks/ --benchmark-only -s`` shows the shapes,
not just the tables.  No plotting dependencies required.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import FuPerModError

#: Marker characters assigned to series in insertion order.
_MARKERS = "*+ox#@%&"

Point = Tuple[float, float]


def ascii_plot(
    series: Dict[str, Sequence[Point]],
    width: int = 70,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render labelled (x, y) series on an ASCII canvas.

    Args:
        series: mapping from series name to its points; drawn in insertion
            order with markers ``* + o x ...``.
        width/height: canvas size in characters (excluding axes).
        title: optional heading line.
        x_label/y_label: optional axis annotations.

    Returns:
        The plot as a multi-line string.
    """
    if not series:
        raise FuPerModError("ascii_plot needs at least one series")
    if width < 16 or height < 4:
        raise FuPerModError(f"canvas too small: {width}x{height}")
    if len(series) > len(_MARKERS):
        raise FuPerModError(f"at most {len(_MARKERS)} series supported")

    points_all: List[Point] = [p for pts in series.values() for p in pts]
    if not points_all:
        raise FuPerModError("ascii_plot needs at least one point")
    x_min = min(p[0] for p in points_all)
    x_max = max(p[0] for p in points_all)
    y_min = min(p[1] for p in points_all)
    y_max = max(p[1] for p in points_all)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            col = int((x - x_min) / x_span * (width - 1))
            row = (height - 1) - int((y - y_min) / y_span * (height - 1))
            canvas[row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(legend)
    y_top = f"{y_max:.4g}"
    y_bottom = f"{y_min:.4g}"
    label_width = max(len(y_top), len(y_bottom), len(y_label))
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = y_top.rjust(label_width)
        elif i == height - 1:
            prefix = y_bottom.rjust(label_width)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_left = f"{x_min:.4g}"
    x_right = f"{x_max:.4g}"
    gap = width - len(x_left) - len(x_right)
    axis = x_left + " " * max(gap, 1) + x_right
    if x_label:
        centre = max((width - len(x_label)) // 2 - len(x_left), 1)
        axis = x_left + " " * centre + x_label
        axis += " " * max(width - len(axis) + label_width - len(x_right), 1) + x_right
    lines.append(" " * label_width + "  " + axis)
    return "\n".join(lines)
