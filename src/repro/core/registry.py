"""Registries for models and partitioning algorithms.

The paper stresses that the framework is *extensible*: new computation
performance models and data partitioning algorithms can be plugged in.
These registries are the plug points -- the CLI and the experiment harness
look algorithms up by name, so a user package can register its own and use
it everywhere the built-ins work.

Registration and lookup are protected by a module lock: the plan server
resolves partitioners from worker threads while user code may still be
registering extensions, and an unlocked check-then-set would let two
racing registrations both succeed or corrupt the dicts.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List

from repro.core.models import (
    AkimaModel,
    ConstantEnergyModel,
    ConstantModel,
    LinearEnergyModel,
    LinearModel,
    PchipModel,
    PerformanceModel,
    PiecewiseEnergyModel,
    SegmentedLinearModel,
    PiecewiseModel,
)
from repro.core.partition.basic import partition_constant
from repro.core.partition.dynamic import PartitionFunction
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.numerical import partition_numerical
from repro.errors import FuPerModError

ModelFactory = Callable[[], PerformanceModel]

_MODEL_REGISTRY: Dict[str, ModelFactory] = {}
_PARTITIONER_REGISTRY: Dict[str, PartitionFunction] = {}
# One lock for both registries: registrations are rare, lookups are cheap,
# and a single lock keeps cross-registry iteration (the CLI's --list output)
# consistent.  RLock so a factory registered under the lock may itself
# consult the registry.
_REGISTRY_LOCK = threading.RLock()


def register_model(name: str, factory: ModelFactory, overwrite: bool = False) -> None:
    """Register a performance-model factory under ``name`` (thread-safe)."""
    with _REGISTRY_LOCK:
        if name in _MODEL_REGISTRY and not overwrite:
            raise FuPerModError(f"model {name!r} is already registered")
        _MODEL_REGISTRY[name] = factory


def register_partitioner(
    name: str, fn: PartitionFunction, overwrite: bool = False
) -> None:
    """Register a partitioning algorithm under ``name`` (thread-safe)."""
    with _REGISTRY_LOCK:
        if name in _PARTITIONER_REGISTRY and not overwrite:
            raise FuPerModError(f"partitioner {name!r} is already registered")
        _PARTITIONER_REGISTRY[name] = fn


def model_factory(name: str) -> ModelFactory:
    """Look up a model factory by name."""
    with _REGISTRY_LOCK:
        try:
            return _MODEL_REGISTRY[name]
        except KeyError:
            raise FuPerModError(
                f"unknown model {name!r}; available: {sorted(_MODEL_REGISTRY)}"
            ) from None


def partitioner(name: str) -> PartitionFunction:
    """Look up a partitioning algorithm by name."""
    with _REGISTRY_LOCK:
        try:
            return _PARTITIONER_REGISTRY[name]
        except KeyError:
            raise FuPerModError(
                f"unknown partitioner {name!r}; "
                f"available: {sorted(_PARTITIONER_REGISTRY)}"
            ) from None


def available_models() -> List[str]:
    """Names of all registered models."""
    with _REGISTRY_LOCK:
        return sorted(_MODEL_REGISTRY)


def available_partitioners() -> List[str]:
    """Names of all registered partitioning algorithms."""
    with _REGISTRY_LOCK:
        return sorted(_PARTITIONER_REGISTRY)


# Built-ins, matching the paper's naming.
register_model("constant", ConstantModel)
register_model("piecewise", PiecewiseModel)
register_model("akima", AkimaModel)
register_model("linear", LinearModel)
register_model("pchip", PchipModel)
register_model("segmented", SegmentedLinearModel)
# Energy (joule-valued) families for the bi-objective partitioner.
register_model("energy-constant", ConstantEnergyModel)
register_model("energy-linear", LinearEnergyModel)
register_model("energy-piecewise", PiecewiseEnergyModel)
register_partitioner("basic", partition_constant)
register_partitioner("geometric", partition_geometric)
register_partitioner("numerical", partition_numerical)
