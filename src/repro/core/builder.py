"""Adaptive model construction to a given accuracy.

The paper's framework is "designed to construct computation performance
models for any data-parallel application *to a given accuracy and
cost-effectiveness*".  A uniform size sweep wastes measurements where the
speed function is flat and under-samples it where it bends (cache cliffs,
GPU ramps).  The adaptive builder spends the measurement budget where the
model is actually wrong:

1. measure a small geometric skeleton of sizes;
2. repeatedly take the pending interval, measure its midpoint, and compare
   the model's *prediction* at that midpoint against the measurement
   (before the point is added) -- that disagreement is the empirical
   interpolation error;
3. if the disagreement exceeds the accuracy target, keep bisecting the two
   halves; otherwise retire the interval;
4. stop when all intervals are within the target or the point budget runs
   out.

The result records the cost actually spent and the worst observed
disagreement, so callers can trade accuracy against cost explicitly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, List

from repro.core.models.base import PerformanceModel
from repro.core.point import MeasurementPoint
from repro.errors import BenchmarkError

#: A measurement oracle: problem size in, measurement point out.
MeasureFunction = Callable[[int], MeasurementPoint]


@dataclass(frozen=True)
class AdaptiveBuildResult:
    """Outcome of :func:`build_adaptive_model`.

    Attributes:
        model: the constructed performance model.
        points_used: number of measurements taken.
        total_cost: kernel-seconds spent measuring.
        max_observed_error: largest relative prediction error observed at a
            probe *before* that probe was added to the model (the empirical
            interpolation error the refinement was driven by).
        converged: True when every interval met the accuracy target before
            the point budget ran out.
    """

    model: PerformanceModel
    points_used: int
    total_cost: float
    max_observed_error: float
    converged: bool


def build_adaptive_model(
    measure: MeasureFunction,
    model_factory: Callable[[], PerformanceModel],
    size_range: "tuple[int, int]",
    accuracy: float = 0.05,
    max_points: int = 32,
    initial_points: int = 4,
) -> AdaptiveBuildResult:
    """Build a performance model adaptively to a target accuracy.

    Args:
        measure: measurement oracle (e.g. ``lambda d: Benchmark(...).run(d)``
            or a closure over :meth:`PlatformBenchmark.measure`).
        model_factory: produces the empty model to fill (piecewise/Akima).
        size_range: inclusive ``(min_size, max_size)`` of problem sizes the
            model must cover.
        accuracy: target relative time-prediction error per interval.
        max_points: hard budget on measurements.
        initial_points: size of the geometric skeleton measured up front.

    Returns:
        An :class:`AdaptiveBuildResult`.
    """
    lo, hi = size_range
    if lo < 1 or hi <= lo:
        raise BenchmarkError(f"invalid size range {size_range}")
    if accuracy <= 0.0:
        raise BenchmarkError(f"accuracy must be positive, got {accuracy}")
    if initial_points < 2:
        raise BenchmarkError(f"initial_points must be >= 2, got {initial_points}")
    if max_points < initial_points:
        raise BenchmarkError(
            f"max_points ({max_points}) must cover initial_points ({initial_points})"
        )

    # Evenly spaced skeleton, deduplicated after integer rounding.
    step = (hi - lo) / (initial_points - 1)
    skeleton = sorted({int(round(lo + step * k)) for k in range(initial_points)})
    skeleton[0], skeleton[-1] = lo, hi

    model = model_factory()
    skeleton_points = [measure(d) for d in skeleton]
    total_cost = sum(p.benchmark_cost for p in skeleton_points)
    # Bulk ingest: the skeleton triggers a single (lazy) model fit.
    model.update_many(skeleton_points)

    # Max-heap of intervals, prioritised by the prediction error observed
    # when their parent interval was probed -- refinement chases the places
    # where the model was actually wrong.  Skeleton gaps carry infinite
    # priority so each is probed at least once.  Ties (same priority) break
    # towards wider intervals.
    pending: List["tuple[float, int, int, int]"] = []
    for a, b in zip(skeleton, skeleton[1:]):
        if b - a > 1:
            heapq.heappush(pending, (-math.inf, -(b - a), a, b))

    max_error = 0.0
    points_used = len(skeleton)
    while pending and points_used < max_points:
        _prio, _width, a, b = heapq.heappop(pending)
        mid = (a + b) // 2
        if mid <= a or mid >= b:
            continue
        predicted = model.time(mid)
        point = measure(mid)
        points_used += 1
        total_cost += point.benchmark_cost
        error = abs(predicted - point.t) / point.t if point.t > 0 else math.inf
        max_error = max(max_error, error)
        model.update(point)
        if error > accuracy:
            if mid - a > 1:
                heapq.heappush(pending, (-error, -(mid - a), a, mid))
            if b - mid > 1:
                heapq.heappush(pending, (-error, -(b - mid), mid, b))

    return AdaptiveBuildResult(
        model=model,
        points_used=points_used,
        total_cost=total_cost,
        max_observed_error=max_error,
        converged=not pending,
    )
