"""Adaptive model construction to a given accuracy.

The paper's framework is "designed to construct computation performance
models for any data-parallel application *to a given accuracy and
cost-effectiveness*".  A uniform size sweep wastes measurements where the
speed function is flat and under-samples it where it bends (cache cliffs,
GPU ramps).  The adaptive builder spends the measurement budget where the
model is actually wrong:

1. measure a small geometric skeleton of sizes;
2. repeatedly take the pending interval, measure its midpoint, and compare
   the model's *prediction* at that midpoint against the measurement
   (before the point is added) -- that disagreement is the empirical
   interpolation error;
3. if the disagreement exceeds the accuracy target, keep bisecting the two
   halves; otherwise retire the interval;
4. stop when all intervals are within the target or the point budget runs
   out.

The result records the cost actually spent and the worst observed
disagreement, so callers can trade accuracy against cost explicitly.

:func:`build_resilient_models` is the fault-tolerant counterpart of
:func:`repro.core.benchmark.build_full_models`: it sweeps through a
:class:`~repro.core.benchmark.ResilientPlatformBenchmark` (retry,
quarantine), journals every committed point into an optional
:class:`~repro.io.SweepCheckpoint` so an interrupted sweep resumes from
the last committed point, and returns the surviving models together with
the :class:`~repro.faults.ResilienceReport`.

:func:`build_degraded_models` goes one step further: the same resilient
sweep, but every rank's model is fitted through a
:class:`~repro.degrade.DegradationPolicy` ladder, so unfittable or
shape-violating data degrades to a simpler model (with a
:class:`~repro.degrade.DegradationReport` entry) instead of failing the
whole build.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.benchmark import ResilientPlatformBenchmark
from repro.core.models.base import PerformanceModel
from repro.core.point import MeasurementPoint
from repro.degrade.policy import DegradationPolicy
from repro.degrade.report import DegradationReport
from repro.errors import BenchmarkError
from repro.faults.report import ResilienceReport
from repro.io.checkpoint import SweepCheckpoint

#: A measurement oracle: problem size in, measurement point out.
MeasureFunction = Callable[[int], MeasurementPoint]


@dataclass(frozen=True)
class AdaptiveBuildResult:
    """Outcome of :func:`build_adaptive_model`.

    Attributes:
        model: the constructed performance model.
        points_used: number of measurements taken.
        total_cost: kernel-seconds spent measuring.
        max_observed_error: largest relative prediction error observed at a
            probe *before* that probe was added to the model (the empirical
            interpolation error the refinement was driven by).
        converged: True when every interval met the accuracy target before
            the point budget ran out.
    """

    model: PerformanceModel
    points_used: int
    total_cost: float
    max_observed_error: float
    converged: bool


def build_adaptive_model(
    measure: MeasureFunction,
    model_factory: Callable[[], PerformanceModel],
    size_range: "tuple[int, int]",
    accuracy: float = 0.05,
    max_points: int = 32,
    initial_points: int = 4,
) -> AdaptiveBuildResult:
    """Build a performance model adaptively to a target accuracy.

    Args:
        measure: measurement oracle (e.g. ``lambda d: Benchmark(...).run(d)``
            or a closure over :meth:`PlatformBenchmark.measure`).
        model_factory: produces the empty model to fill (piecewise/Akima).
        size_range: inclusive ``(min_size, max_size)`` of problem sizes the
            model must cover.
        accuracy: target relative time-prediction error per interval.
        max_points: hard budget on measurements.
        initial_points: size of the geometric skeleton measured up front.

    Returns:
        An :class:`AdaptiveBuildResult`.
    """
    lo, hi = size_range
    if lo < 1 or hi <= lo:
        raise BenchmarkError(f"invalid size range {size_range}")
    if accuracy <= 0.0:
        raise BenchmarkError(f"accuracy must be positive, got {accuracy}")
    if initial_points < 2:
        raise BenchmarkError(f"initial_points must be >= 2, got {initial_points}")
    if max_points < initial_points:
        raise BenchmarkError(
            f"max_points ({max_points}) must cover initial_points ({initial_points})"
        )

    # Evenly spaced skeleton, deduplicated after integer rounding.
    step = (hi - lo) / (initial_points - 1)
    skeleton = sorted({int(round(lo + step * k)) for k in range(initial_points)})
    skeleton[0], skeleton[-1] = lo, hi

    model = model_factory()
    skeleton_points = [measure(d) for d in skeleton]
    total_cost = sum(p.benchmark_cost for p in skeleton_points)
    # Bulk ingest: the skeleton triggers a single (lazy) model fit.
    model.update_many(skeleton_points)

    # Max-heap of intervals, prioritised by the prediction error observed
    # when their parent interval was probed -- refinement chases the places
    # where the model was actually wrong.  Skeleton gaps carry infinite
    # priority so each is probed at least once.  Ties (same priority) break
    # towards wider intervals.
    pending: List["tuple[float, int, int, int]"] = []
    for a, b in zip(skeleton, skeleton[1:]):
        if b - a > 1:
            heapq.heappush(pending, (-math.inf, -(b - a), a, b))

    max_error = 0.0
    points_used = len(skeleton)
    while pending and points_used < max_points:
        _prio, _width, a, b = heapq.heappop(pending)
        mid = (a + b) // 2
        if mid <= a or mid >= b:
            continue
        predicted = model.time(mid)
        point = measure(mid)
        points_used += 1
        total_cost += point.benchmark_cost
        error = abs(predicted - point.t) / point.t if point.t > 0 else math.inf
        max_error = max(max_error, error)
        model.update(point)
        if error > accuracy:
            if mid - a > 1:
                heapq.heappush(pending, (-error, -(mid - a), a, mid))
            if b - mid > 1:
                heapq.heappush(pending, (-error, -(b - mid), mid, b))

    return AdaptiveBuildResult(
        model=model,
        points_used=points_used,
        total_cost=total_cost,
        max_observed_error=max_error,
        converged=not pending,
    )


@dataclass(frozen=True)
class ResilientBuildResult:
    """Outcome of :func:`build_resilient_models`.

    Attributes:
        models: one model per rank (quarantined ranks keep whatever points
            they contributed before being excluded; they may not be ready).
        total_cost: kernel-seconds spent on *successful* measurements this
            run (checkpointed points resumed from disk cost nothing; the
            cost of failed attempts is in ``report.wasted_cost``).
        report: the resilience record -- events, retries, quarantined
            devices and the surviving rank set.
    """

    models: List[PerformanceModel]
    total_cost: float
    report: ResilienceReport

    @property
    def survivors(self) -> List[int]:
        """Ranks whose devices survived the sweep, sorted."""
        return sorted(self.report.survivors)

    def surviving_models(self) -> List[PerformanceModel]:
        """The models of the surviving ranks, in rank order."""
        return [self.models[r] for r in self.survivors]


def build_resilient_models(
    bench: ResilientPlatformBenchmark,
    model_factory: Callable[[], PerformanceModel],
    sizes: "Sequence[int]",
    checkpoint: Optional[SweepCheckpoint] = None,
) -> ResilientBuildResult:
    """Build full models under faults, with checkpoint/resume.

    Sweeps ``sizes`` through the resilient benchmark: transient failures
    are retried, crashed or persistently failing ranks are quarantined
    mid-sweep and the remaining ranks complete the sweep.  When a
    ``checkpoint`` is given, every successful measurement is journaled
    before the sweep moves on, and committed ``(rank, size)`` pairs found
    in the journal are reused instead of re-measured -- resuming an
    interrupted sweep yields the same models as an uninterrupted run
    (measurement noise streams are indexed per rank and measurement, not
    by global draw order).

    Args:
        bench: the resilient platform benchmark.
        model_factory: produces one empty model per rank.
        sizes: problem sizes to sweep, in order.
        checkpoint: optional journal for checkpoint/resume.

    Returns:
        A :class:`ResilientBuildResult`.
    """
    if not sizes:
        raise BenchmarkError("sizes must be non-empty")
    committed = checkpoint.load() if checkpoint is not None else {}
    report = bench.report
    models = [model_factory() for _ in range(bench.size)]
    per_rank: List[List[MeasurementPoint]] = [[] for _ in range(bench.size)]
    total_cost = 0.0
    for d in sizes:
        request: List[Optional[int]] = [None] * bench.size
        # The contention group of the uninterrupted run: every rank that
        # is active at this size, measured now or resumed from disk.
        group = [r for r in range(bench.size) if not bench.is_quarantined(r)]
        for r in group:
            point = committed.get(r, {}).get(d)
            if point is not None:
                per_rank[r].append(point)
                bench.skip_measurement(r)
                report.record("resume", r, f"d={d} from checkpoint")
            else:
                request[r] = d
        if all(v is None for v in request):
            continue
        points = bench.measure_group(request, contention_ranks=group)
        for r, point in enumerate(points):
            if point is None:
                continue
            per_rank[r].append(point)
            total_cost += point.benchmark_cost
            if checkpoint is not None:
                checkpoint.commit(r, point)
    for model, collected in zip(models, per_rank):
        model.update_many(collected)
    return ResilientBuildResult(
        models=models, total_cost=total_cost, report=report
    )


@dataclass(frozen=True)
class DegradedBuildResult:
    """Outcome of :func:`build_degraded_models`.

    Attributes:
        models: one fitted model per rank; None for ranks with no usable
            measurements (quarantined before contributing any point).
        families: the model name actually used per rank (``"akima"``,
            ``"constant"``, ...; None where the model is None) -- the
            quickest view of how far each rank degraded.
        total_cost: kernel-seconds spent on successful measurements.
        degradation: every fallback the policy took, with triggers.
        resilience: the sweep's crash/retry/quarantine record.
    """

    models: List[Optional[PerformanceModel]]
    families: List[Optional[str]]
    total_cost: float
    degradation: "DegradationReport"
    resilience: ResilienceReport

    @property
    def survivors(self) -> List[int]:
        """Ranks with a usable model, sorted."""
        return [r for r, m in enumerate(self.models) if m is not None]

    def surviving_models(self) -> List[PerformanceModel]:
        """The usable models, in rank order."""
        return [m for m in self.models if m is not None]


def build_degraded_models(
    bench: ResilientPlatformBenchmark,
    sizes: "Sequence[int]",
    policy: "DegradationPolicy",
    primary: Optional[str] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> DegradedBuildResult:
    """Build per-rank models under faults *and* fit failures.

    Runs the resilient sweep of :func:`build_resilient_models` to collect
    measurement points (crashes/hangs quarantine, transient faults
    retry), then fits each surviving rank's points through the policy's
    model ladder: the preferred model first, simpler models when it is
    unfittable or violates the FPM shape restriction.  In the policy's
    strict mode fit failures propagate as typed errors instead.

    Args:
        bench: the resilient platform benchmark.
        sizes: problem sizes to sweep, in order.
        policy: the degradation policy (ladders, strictness, budgets,
            report).
        primary: preferred model name (defaults to the first rung of the
            policy's model ladder).
        checkpoint: optional journal for checkpoint/resume.

    Returns:
        A :class:`DegradedBuildResult`.
    """
    from repro.core.models import ConstantModel

    # The sweep models are only point collectors (fits are lazy and never
    # forced here); the real fit happens on the ladder below.
    base = build_resilient_models(
        bench, ConstantModel, sizes, checkpoint=checkpoint
    )
    models: List[Optional[PerformanceModel]] = []
    families: List[Optional[str]] = []
    for rank, collector in enumerate(base.models):
        points = list(collector.points)
        if not points:
            models.append(None)
            families.append(None)
            continue
        fitted = policy.fit_model(points, rank=rank, primary=primary)
        models.append(fitted)
        families.append(_family_name(fitted))
    return DegradedBuildResult(
        models=models,
        families=families,
        total_cost=base.total_cost,
        degradation=policy.report,
        resilience=base.report,
    )


def _family_name(model: PerformanceModel) -> str:
    """Registry name of a model instance (class name as fallback)."""
    from repro.core import registry

    for name in registry.available_models():
        factory = registry.model_factory(name)
        if isinstance(factory, type) and type(model) is factory:
            return name
    return type(model).__name__
