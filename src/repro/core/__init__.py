"""FuPerMod core: measurement, performance models, data partitioning.

This package is the Python mirror of the paper's C API:

=======================  ==========================================
paper (C)                this library (Python)
=======================  ==========================================
``fupermod_kernel``      :class:`repro.core.kernel.ComputationKernel`
``fupermod_benchmark``   :class:`repro.core.benchmark.Benchmark`
``fupermod_point``       :class:`repro.core.point.MeasurementPoint`
``fupermod_model``       :class:`repro.core.models.PerformanceModel`
``fupermod_partition``   callables in :mod:`repro.core.partition`
``fupermod_dist``        :class:`repro.core.partition.Distribution`
``fupermod_dynamic``     :class:`repro.core.partition.DynamicPartitioner`
                         / :class:`repro.core.partition.LoadBalancer`
=======================  ==========================================
"""

from repro.core.benchmark import (
    Benchmark,
    PlatformBenchmark,
    ResilientBenchmark,
    ResilientPlatformBenchmark,
    RetryPolicy,
    build_full_models,
)
from repro.core.builder import (
    AdaptiveBuildResult,
    DegradedBuildResult,
    ResilientBuildResult,
    build_adaptive_model,
    build_degraded_models,
    build_resilient_models,
)
from repro.core.kernel import (
    CallableKernel,
    ComputationKernel,
    KernelContext,
    SimulatedKernel,
)
from repro.core.models import (
    AkimaModel,
    ConstantModel,
    PerformanceModel,
    PiecewiseModel,
)
from repro.core.partition import (
    ConvergenceCert,
    Distribution,
    DynamicPartitioner,
    LoadBalancer,
    Part,
    partition_constant,
    partition_geometric,
    partition_numerical,
    partition_survivors,
    redistribute_to_survivors,
)
from repro.core.point import MeasurementPoint
from repro.core.selection import SelectionResult, leave_one_out_error, select_model
from repro.core.precision import Precision

__all__ = [
    "AdaptiveBuildResult",
    "AkimaModel",
    "Benchmark",
    "CallableKernel",
    "ComputationKernel",
    "ConstantModel",
    "ConvergenceCert",
    "DegradedBuildResult",
    "Distribution",
    "DynamicPartitioner",
    "KernelContext",
    "LoadBalancer",
    "MeasurementPoint",
    "Part",
    "PerformanceModel",
    "PiecewiseModel",
    "PlatformBenchmark",
    "Precision",
    "ResilientBenchmark",
    "ResilientBuildResult",
    "ResilientPlatformBenchmark",
    "RetryPolicy",
    "SelectionResult",
    "SimulatedKernel",
    "build_adaptive_model",
    "build_degraded_models",
    "build_full_models",
    "build_resilient_models",
    "partition_constant",
    "partition_geometric",
    "partition_numerical",
    "partition_survivors",
    "redistribute_to_survivors",
    "leave_one_out_error",
    "select_model",
]
