"""Automatic model-family selection by cross-validation.

The paper offers a menu of computation performance models and says the
choice "is determined by the user's applications".  This module makes the
choice empirical: leave-one-out cross-validation over the measured points
estimates each candidate family's *prediction* error (not its fit error --
an interpolating model has zero fit error by construction), and
:func:`select_model` picks the family that generalises best.

Folds where a family cannot be built (too few points, degenerate fits such
as a non-increasing linear regression) count as failures; a family that
fails on any fold is disqualified rather than silently scored on the easy
folds only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.models.base import PerformanceModel
from repro.core.point import MeasurementPoint
from repro.errors import FuPerModError, ModelError

ModelFactory = Callable[[], PerformanceModel]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of :func:`select_model`.

    Attributes:
        best: name of the winning model family.
        errors: mean relative leave-one-out error per candidate; families
            that failed any fold map to ``inf``.
    """

    best: str
    errors: Dict[str, float]


def leave_one_out_error(
    model_factory: ModelFactory,
    points: Sequence[MeasurementPoint],
) -> float:
    """Mean relative LOO prediction error of a model family.

    For each point, a fresh model is fitted on all *other* points and asked
    to predict the held-out time; the relative errors are averaged.

    Raises:
        ModelError: when the family cannot be built on some fold (callers
            that want a score rather than an exception use
            :func:`select_model`).
    """
    if len(points) < 3:
        raise ModelError(
            f"leave-one-out needs at least 3 points, got {len(points)}"
        )
    errors: List[float] = []
    for i, held_out in enumerate(points):
        model = model_factory()
        model.update_many([p for j, p in enumerate(points) if j != i])
        predicted = model.time(held_out.d)
        if held_out.t <= 0:
            raise ModelError(f"held-out point at d={held_out.d} has no time")
        errors.append(abs(predicted - held_out.t) / held_out.t)
    return sum(errors) / len(errors)


def _default_candidates() -> Dict[str, ModelFactory]:
    from repro.core.registry import available_models, model_factory

    return {name: model_factory(name) for name in available_models()}


def select_model(
    points: Sequence[MeasurementPoint],
    candidates: Optional[Dict[str, ModelFactory]] = None,
) -> SelectionResult:
    """Pick the model family with the lowest LOO prediction error.

    Args:
        points: the measured points of one process.
        candidates: name -> factory mapping; defaults to every registered
            model family.

    Returns:
        A :class:`SelectionResult`; ties break towards the name earlier in
        sorted order (deterministic).

    Raises:
        FuPerModError: when no candidate can be evaluated at all.
    """
    menu = candidates if candidates is not None else _default_candidates()
    if not menu:
        raise FuPerModError("select_model needs at least one candidate")
    errors: Dict[str, float] = {}
    for name in sorted(menu):
        try:
            errors[name] = leave_one_out_error(menu[name], points)
        except (ModelError, FuPerModError):
            errors[name] = float("inf")
    best = min(sorted(errors), key=lambda n: errors[n])
    if errors[best] == float("inf"):
        raise FuPerModError(
            f"no candidate model family could be evaluated on {len(points)} points"
        )
    return SelectionResult(best=best, errors=errors)
