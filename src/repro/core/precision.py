"""Statistical precision of benchmark measurements (``fupermod_precision``).

The benchmark repeats a kernel until the Student-t confidence interval of
the mean time is tight enough, within repetition and time budgets.  The
defaults mirror typical FuPerMod usage: at least 3 repetitions, at most 25,
95% confidence, 2.5% target relative error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class Precision:
    """Repetition policy for one benchmark measurement.

    Attributes:
        reps_min: minimum repetitions (always performed).
        reps_max: hard cap on repetitions.
        confidence_level: Student-t confidence level for the interval.
        relative_error: stop once ``ci / mean`` falls below this.
        time_limit: stop once the accumulated measured kernel time exceeds
            this many seconds (``inf`` = no limit).  For simulated kernels
            this is virtual time, which makes it a *cost budget* -- exactly
            the knob dynamic partitioning uses to keep measurements cheap.
        outlier_threshold: when set, samples are filtered by robust
            (median/MAD) z-score with this cutoff before the reported mean
            and confidence interval are computed -- timing spikes from
            unrelated system activity do not pollute the model.  3.5 is
            the customary value; None disables filtering.
    """

    reps_min: int = 3
    reps_max: int = 25
    confidence_level: float = 0.95
    relative_error: float = 0.025
    time_limit: float = math.inf
    outlier_threshold: "float | None" = None

    def __post_init__(self) -> None:
        if self.reps_min < 1:
            raise BenchmarkError(f"reps_min must be >= 1, got {self.reps_min}")
        if self.reps_max < self.reps_min:
            raise BenchmarkError(
                f"reps_max ({self.reps_max}) must be >= reps_min ({self.reps_min})"
            )
        if not 0.0 < self.confidence_level < 1.0:
            raise BenchmarkError(
                f"confidence_level must be in (0, 1), got {self.confidence_level}"
            )
        if self.relative_error <= 0.0:
            raise BenchmarkError(
                f"relative_error must be positive, got {self.relative_error}"
            )
        if self.time_limit <= 0.0:
            raise BenchmarkError(f"time_limit must be positive, got {self.time_limit}")
        if self.outlier_threshold is not None and self.outlier_threshold <= 0.0:
            raise BenchmarkError(
                f"outlier_threshold must be positive, got {self.outlier_threshold}"
            )

    @staticmethod
    def single_shot() -> "Precision":
        """One repetition, no statistics -- the cheapest possible point.

        Used by dynamic load balancing, which times real application
        iterations and cannot repeat them.
        """
        return Precision(reps_min=1, reps_max=1, relative_error=math.inf)

    @staticmethod
    def thorough() -> "Precision":
        """Tight intervals for building full models in advance."""
        return Precision(reps_min=5, reps_max=100, relative_error=0.01)
