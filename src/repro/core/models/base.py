"""Base class for computation performance models.

A model accumulates :class:`~repro.core.point.MeasurementPoint` objects (via
:meth:`update`, the paper's ``fupermod_model.update``) and approximates the
*time function* ``t(x)`` of its process (the paper's ``fupermod_model.t``).
The *speed* in computation units per second is derived as ``x / t(x)``, and
in FLOP/s as ``complexity(x) / t(x)``.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Sequence

from repro.core.point import MeasurementPoint
from repro.errors import ModelError


class PerformanceModel(abc.ABC):
    """Approximation of a process's execution time as a function of size."""

    def __init__(self) -> None:
        self._points: List[MeasurementPoint] = []

    @property
    def points(self) -> Sequence[MeasurementPoint]:
        """Experimental points the model was built from, in insertion order."""
        return tuple(self._points)

    @property
    def count(self) -> int:
        """Number of experimental points."""
        return len(self._points)

    @property
    def is_ready(self) -> bool:
        """Whether the model has enough points to make predictions."""
        return self.count >= self.min_points

    #: Minimum number of points before :meth:`time` may be called.
    min_points: int = 1

    def update(self, point: MeasurementPoint) -> None:
        """Add an experimental point and refresh the approximation."""
        if point.d <= 0:
            raise ModelError(f"model points need positive size, got {point.d}")
        if point.t <= 0.0:
            raise ModelError(f"model points need positive time, got {point.t}")
        self._points.append(point)
        self._rebuild()

    def update_many(self, points: Sequence[MeasurementPoint]) -> None:
        """Add several points (rebuilding once at the end)."""
        for point in points:
            if point.d <= 0:
                raise ModelError(f"model points need positive size, got {point.d}")
            if point.t <= 0.0:
                raise ModelError(f"model points need positive time, got {point.t}")
            self._points.append(point)
        self._rebuild()

    @abc.abstractmethod
    def _rebuild(self) -> None:
        """Recompute the internal approximation from :attr:`points`."""

    @abc.abstractmethod
    def time(self, x: float) -> float:
        """Predicted execution time (seconds) at problem size ``x`` units."""

    def speed(self, x: float) -> float:
        """Predicted speed in computation units per second at size ``x``."""
        if x <= 0.0:
            # The speed at zero is defined by continuity; use a tiny size.
            x = 1e-9
        t = self.time(x)
        if t <= 0.0:
            raise ModelError(f"model predicted non-positive time {t} at size {x}")
        return x / t

    def speed_flops(self, x: float, complexity: Callable[[float], float]) -> float:
        """Predicted speed in FLOP/s, given the kernel complexity function."""
        t = self.time(x)
        if t <= 0.0:
            raise ModelError(f"model predicted non-positive time {t} at size {x}")
        return complexity(x) / t

    @property
    def benchmark_cost(self) -> float:
        """Total kernel-seconds spent obtaining this model's points."""
        return sum(p.benchmark_cost for p in self._points)

    @property
    def size_range(self) -> "tuple[float, float]":
        """Smallest and largest measured problem sizes."""
        if not self._points:
            raise ModelError("model has no points yet")
        ds = [p.d for p in self._points]
        return (min(ds), max(ds))

    def _require_ready(self) -> None:
        if not self.is_ready:
            raise ModelError(
                f"{type(self).__name__} needs at least {self.min_points} point(s), "
                f"has {self.count}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.count} points)"
