"""Base class for computation performance models.

A model accumulates :class:`~repro.core.point.MeasurementPoint` objects (via
:meth:`update`, the paper's ``fupermod_model.update``) and approximates the
*time function* ``t(x)`` of its process (the paper's ``fupermod_model.t``).
The *speed* in computation units per second is derived as ``x / t(x)``, and
in FLOP/s as ``complexity(x) / t(x)``.

Two mechanisms keep the hot paths fast:

* **Lazy rebuilds.**  :meth:`update` and :meth:`update_many` only record
  points and mark the model dirty; the (possibly expensive) fit runs once,
  on the first evaluation after the last ingest (:meth:`time`,
  :meth:`time_batch`, :attr:`is_ready`, or any fitted property).  Bulk
  ingestion of ``n`` points therefore costs one rebuild instead of ``n``.
  A corollary: data that cannot be fitted (e.g. a non-increasing linear
  regression) raises :class:`~repro.errors.ModelError` at the first
  evaluation, not inside ``update``.
* **Batch evaluation.**  :meth:`time_batch` predicts a whole array of
  sizes in one call; subclasses override :meth:`_time_batch_impl` with
  true vectorized kernels (``searchsorted`` + Horner instead of a Python
  ``bisect`` per point).  :meth:`allocation_batch` inverts the time
  function for a batch of time levels -- the inner operation of the
  geometrical partitioning algorithm -- with a vectorized bisection that
  subclasses may replace with closed forms.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.point import MeasurementPoint
from repro.errors import ModelError


class PerformanceModel(abc.ABC):
    """Approximation of a process's execution time as a function of size."""

    def __init__(self) -> None:
        self._points: List[MeasurementPoint] = []
        self._dirty = False

    @property
    def points(self) -> Sequence[MeasurementPoint]:
        """Experimental points the model was built from, in insertion order."""
        return tuple(self._points)

    @property
    def count(self) -> int:
        """Number of experimental points."""
        return len(self._points)

    @property
    def is_ready(self) -> bool:
        """Whether the model has enough points to make predictions.

        Resolves a pending lazy rebuild, so a ``True`` answer means
        :meth:`time` will not fail for lack of a fit (it may still raise if
        the accumulated data cannot be fitted at all).
        """
        if self.count < self.min_points:
            return False
        self._ensure_built()
        return True

    #: Minimum number of points before :meth:`time` may be called.
    min_points: int = 1

    @staticmethod
    def _validate_point(point: MeasurementPoint) -> None:
        """Reject a point no fit could use, with a typed error, at ingest.

        :class:`MeasurementPoint` construction already refuses non-finite
        and negative times, but ``update``/``update_many`` accept any
        object with ``d``/``t`` attributes (the closed-loop feedback path
        and tests duck-type them), and ``point.t <= 0.0`` is *False* for
        NaN -- which would otherwise sail through and fail cryptically
        inside the lazy rebuild.  Every model family shares this gate, so
        rejection is uniform: :class:`~repro.errors.ModelError`, here,
        not an interpolator traceback later.
        """
        if not math.isfinite(point.d):
            raise ModelError(f"model points need a finite size, got {point.d}")
        if point.d <= 0:
            raise ModelError(f"model points need positive size, got {point.d}")
        if not math.isfinite(point.t):
            raise ModelError(f"model points need a finite time, got {point.t}")
        if point.t <= 0.0:
            raise ModelError(f"model points need positive time, got {point.t}")

    def update(self, point: MeasurementPoint) -> None:
        """Add an experimental point; the fit is refreshed lazily."""
        self._validate_point(point)
        self._points.append(point)
        self._dirty = True

    def update_many(self, points: Sequence[MeasurementPoint]) -> None:
        """Add several points in one go (single deferred rebuild)."""
        for point in points:
            self._validate_point(point)
        self._points.extend(points)
        self._dirty = True

    def _ensure_built(self) -> None:
        """Run the deferred :meth:`_rebuild` if new points arrived."""
        if self._dirty:
            self._rebuild()
            self._dirty = False

    @abc.abstractmethod
    def _rebuild(self) -> None:
        """Recompute the internal approximation from :attr:`points`."""

    @abc.abstractmethod
    def time(self, x: float) -> float:
        """Predicted execution time (seconds) at problem size ``x`` units."""

    def time_batch(self, sizes) -> np.ndarray:
        """Predicted times for a whole array of problem sizes at once.

        Semantically identical to ``[self.time(x) for x in sizes]`` but
        vectorized: one call amortises the fit lookup over the batch, and
        subclasses evaluate with numpy kernels.  Negative sizes raise
        :class:`~repro.errors.ModelError`, zero sizes predict ``0.0``.
        """
        self._require_ready()
        xs = np.atleast_1d(np.asarray(sizes, dtype=float))
        if xs.size and float(xs.min()) < 0.0:
            raise ModelError(f"size must be non-negative, got {float(xs.min())}")
        return self._time_batch_impl(xs)

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized prediction kernel; input is validated and 1-D.

        The fallback loops over scalar :meth:`time`; subclasses override
        with true array code.
        """
        return np.fromiter(
            (self.time(float(x)) for x in xs), dtype=float, count=xs.size
        )

    def allocation_batch(
        self,
        levels,
        cap: float,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """Sizes at which the time function reaches each of ``levels``.

        The partitioner batching contract: for every time level ``T`` in
        ``levels``, find ``x`` with ``time(x) = T``, clamped to
        ``[0, cap]`` (no process can receive more than the whole problem).
        Non-positive levels map to 0; levels at or above ``time(cap)`` map
        to ``cap``.  ``lo``/``hi`` optionally narrow the search bracket per
        level (partitioners cache the brackets across bisection steps).

        The generic implementation is a vectorized bisection driven by
        :meth:`time_batch`; subclasses with invertible forms (constant,
        linear, piecewise) override it with closed-form inversions.
        """
        self._require_ready()
        levels = np.atleast_1d(np.asarray(levels, dtype=float))
        cap = float(cap)
        out = np.zeros(levels.shape)
        if cap <= 0.0:
            return out
        t_cap = self.time(cap)
        at_cap = levels >= t_cap
        out[at_cap] = cap
        open_mask = (levels > 0.0) & ~at_cap
        if not np.any(open_mask):
            return out
        tgt = levels[open_mask]
        blo = np.zeros(tgt.shape) if lo is None else np.clip(
            np.broadcast_to(np.asarray(lo, dtype=float), levels.shape)[open_mask],
            0.0,
            cap,
        ).copy()
        bhi = np.full(tgt.shape, cap) if hi is None else np.clip(
            np.broadcast_to(np.asarray(hi, dtype=float), levels.shape)[open_mask],
            0.0,
            cap,
        ).copy()
        bad = blo > bhi
        if np.any(bad):
            blo[bad] = 0.0
            bhi[bad] = cap
        # Guard cached brackets that drifted off the root.
        t_lo = self._time_batch_impl(blo)
        t_hi = self._time_batch_impl(bhi)
        blo[t_lo > tgt] = 0.0
        bhi[t_hi < tgt] = cap
        width_tol = tol * max(1.0, cap)
        for _ in range(200):
            if float(np.max(bhi - blo)) <= width_tol:
                break
            mid = 0.5 * (blo + bhi)
            below = self._time_batch_impl(mid) < tgt
            blo = np.where(below, mid, blo)
            bhi = np.where(below, bhi, mid)
        out[open_mask] = 0.5 * (blo + bhi)
        return out

    def fingerprint_state(self) -> tuple:
        """Canonical fitted state for content fingerprinting.

        Returns a nested tuple of plain Python values (strings, ints,
        floats) that identifies the *fitted* model semantically: two
        model objects whose fitted parameters coincide must return equal
        state, regardless of object identity or insertion history.  The
        serving layer (:mod:`repro.serve.fingerprint`) hashes this state
        to key plan caches.

        Resolves the lazy fit first, so the state always reflects the
        parameters predictions would actually use.  Subclasses override
        with their fitted parameters (knots, coefficients, segments);
        this fallback identifies the model by family and raw points,
        which is stable but weaker (it distinguishes point sets that fit
        to the same curve).
        """
        self._require_ready()
        return (
            type(self).__name__,
            "points",
            tuple((p.d, p.t, p.reps, p.ci) for p in self._points),
        )

    def speed(self, x: float) -> float:
        """Predicted speed in computation units per second at size ``x``."""
        if x <= 0.0:
            # The speed at zero is defined by continuity; use a tiny size.
            x = 1e-9
        t = self.time(x)
        if t <= 0.0:
            raise ModelError(f"model predicted non-positive time {t} at size {x}")
        return x / t

    def speed_flops(self, x: float, complexity: Callable[[float], float]) -> float:
        """Predicted speed in FLOP/s, given the kernel complexity function."""
        t = self.time(x)
        if t <= 0.0:
            raise ModelError(f"model predicted non-positive time {t} at size {x}")
        return complexity(x) / t

    @property
    def benchmark_cost(self) -> float:
        """Total kernel-seconds spent obtaining this model's points."""
        return sum(p.benchmark_cost for p in self._points)

    @property
    def size_range(self) -> "tuple[float, float]":
        """Smallest and largest measured problem sizes."""
        if not self._points:
            raise ModelError("model has no points yet")
        ds = [p.d for p in self._points]
        return (min(ds), max(ds))

    def _require_ready(self) -> None:
        if not self.is_ready:
            raise ModelError(
                f"{type(self).__name__} needs at least {self.min_points} point(s), "
                f"has {self.count}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.count} points)"
