"""The Akima-spline functional performance model.

This FPM interpolates the *time* function directly with an Akima spline
(ref. [15] of the paper).  It imposes no shape restrictions on the speed
function and provides a continuous first derivative, which the numerical
partitioning algorithm needs for its Jacobian.

Construction details:

* the origin ``(0, 0)`` is always included as an anchor -- zero work takes
  zero time -- so a single measured point already yields a (linear) model;
* right of the last measured point the time function continues linearly,
  with a slope no smaller than the average time-per-unit at the boundary,
  so predictions stay increasing for sizes the partitioner may probe beyond
  the measured range.
"""

from __future__ import annotations

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError
from repro.interp.akima import AkimaSpline


class AkimaModel(PerformanceModel):
    """FPM with Akima-spline interpolation of the time function."""

    min_points = 1

    def __init__(self, include_origin: bool = True) -> None:
        super().__init__()
        self.include_origin = include_origin
        self._spline: AkimaSpline | None = None
        self._x_max: float = 0.0
        self._t_max: float = 0.0
        self._right_slope: float = 0.0

    def _rebuild(self) -> None:
        pts = [(float(p.d), p.t) for p in self._points]
        if self.include_origin:
            pts.append((0.0, 0.0))
        if len({x for x, _t in pts}) < 2:
            raise ModelError(
                "AkimaModel needs at least two distinct sizes "
                "(including the origin anchor)"
            )
        self._spline = AkimaSpline(pts, min_y=1e-15)
        self._x_max = max(x for x, _t in pts)
        self._t_max = self._spline(self._x_max)
        slope_at_end = self._spline.derivative(self._x_max)
        avg_slope = self._t_max / self._x_max if self._x_max > 0 else 0.0
        self._right_slope = max(slope_at_end, avg_slope, 1e-15)

    def fingerprint_state(self) -> tuple:
        """Fitted state is the spline knots plus the right extension slope."""
        self._require_ready()
        assert self._spline is not None
        return (
            "AkimaModel",
            "knots",
            tuple(self._spline.xs),
            tuple(self._spline.ys),
            self._right_slope,
        )

    def time(self, x: float) -> float:
        self._require_ready()
        assert self._spline is not None
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x == 0.0:
            return 0.0
        if x > self._x_max:
            return self._t_max + self._right_slope * (x - self._x_max)
        return max(self._spline(x), 1e-15)

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        assert self._spline is not None
        beyond = xs > self._x_max
        out = np.maximum(self._spline.evaluate_batch(np.where(beyond, self._x_max, xs)), 1e-15)
        out = np.where(beyond, self._t_max + self._right_slope * (xs - self._x_max), out)
        return np.where(xs == 0.0, 0.0, out)

    def time_derivative(self, x: float) -> float:
        """Derivative ``dt/dx`` -- continuous, used by the Newton solver."""
        self._require_ready()
        assert self._spline is not None
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x > self._x_max:
            return self._right_slope
        return self._spline.derivative(x)
