"""The PCHIP functional performance model.

Interpolates the time function with the monotonicity-preserving cubic of
Fritsch--Carlson (see :mod:`repro.interp.pchip`).  With the origin anchored
at ``(0, 0)`` and measured times that grow with problem size -- the normal
case on real hardware -- the interpolated time function is non-decreasing
*everywhere*, so it is directly usable by the geometrical partitioning
algorithm without the accuracy loss of coarsening, and by the numerical
algorithm through its continuous derivative.

When the measured data itself is non-monotone (timing noise at nearby
sizes), the model first projects the times onto the closest non-decreasing
sequence by weighted isotonic regression (:mod:`repro.interp.isotonic`,
weights = repetition counts), so the interpolated time function is
non-decreasing regardless of the noise.
"""

from __future__ import annotations

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError
from repro.interp.isotonic import isotonic_increasing
from repro.interp.pchip import PchipSpline


class PchipModel(PerformanceModel):
    """FPM with monotone (PCHIP) interpolation of the time function."""

    min_points = 1

    def __init__(self, include_origin: bool = True) -> None:
        super().__init__()
        self.include_origin = include_origin
        self._spline: PchipSpline | None = None
        self._x_max: float = 0.0
        self._t_max: float = 0.0
        self._right_slope: float = 0.0

    def _rebuild(self) -> None:
        # Merge duplicate sizes by (rep-weighted) average, sort by size.
        by_size: dict = {}
        for p in self._points:
            t_sum, w_sum = by_size.get(float(p.d), (0.0, 0.0))
            by_size[float(p.d)] = (t_sum + p.t * p.reps, w_sum + p.reps)
        xs = sorted(by_size)
        ts = [by_size[x][0] / by_size[x][1] for x in xs]
        ws = [by_size[x][1] for x in xs]
        # Project onto a non-decreasing time sequence (noise removal).
        ts = isotonic_increasing(ts, ws)
        pts = list(zip(xs, ts))
        if self.include_origin:
            pts.append((0.0, 0.0))
            # The anchor must not exceed the first fitted time.
            pts = [(x, max(t, 0.0)) for x, t in pts]
        if len({x for x, _t in pts}) < 2:
            raise ModelError(
                "PchipModel needs at least two distinct sizes "
                "(including the origin anchor)"
            )
        self._spline = PchipSpline(pts, min_y=1e-15)
        self._x_max = max(x for x, _t in pts)
        self._t_max = self._spline(self._x_max)
        slope_at_end = self._spline.derivative(self._x_max)
        avg_slope = self._t_max / self._x_max if self._x_max > 0 else 0.0
        self._right_slope = max(slope_at_end, avg_slope, 1e-15)

    def fingerprint_state(self) -> tuple:
        """Fitted state is the (isotonic) spline knots plus the right slope."""
        self._require_ready()
        assert self._spline is not None
        return (
            "PchipModel",
            "knots",
            tuple(self._spline.xs),
            tuple(self._spline.ys),
            self._right_slope,
        )

    def time(self, x: float) -> float:
        self._require_ready()
        assert self._spline is not None
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x == 0.0:
            return 0.0
        if x > self._x_max:
            return self._t_max + self._right_slope * (x - self._x_max)
        return max(self._spline(x), 1e-15)

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        assert self._spline is not None
        beyond = xs > self._x_max
        out = np.maximum(self._spline.evaluate_batch(np.where(beyond, self._x_max, xs)), 1e-15)
        out = np.where(beyond, self._t_max + self._right_slope * (xs - self._x_max), out)
        return np.where(xs == 0.0, 0.0, out)

    def time_derivative(self, x: float) -> float:
        """Derivative ``dt/dx`` -- continuous, used by the Newton solver."""
        self._require_ready()
        assert self._spline is not None
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x > self._x_max:
            return self._right_slope
        return self._spline.derivative(x)
