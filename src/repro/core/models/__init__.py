"""Computation performance models -- the paper's ``fupermod_model``.

Three models, as shipped by FuPerMod:

* :class:`ConstantModel` -- the constant performance model (CPM): speed does
  not depend on problem size; one experimental point suffices;
* :class:`PiecewiseModel` -- functional performance model (FPM) based on
  piecewise-linear interpolation of the speed, with the measured data
  *coarsened* to satisfy the Lastovetsky--Reddy shape restrictions required
  by the geometrical partitioning algorithm;
* :class:`AkimaModel` -- FPM based on Akima-spline interpolation of the time
  function: no shape restrictions, continuous first derivative, as required
  by the numerical partitioning algorithm.

Plus one analytical model from the surveyed related work, for quantitative
comparison:

* :class:`LinearModel` -- the Qilin-style linear time model (ref. [12]);
* :class:`SegmentedLinearModel` -- the piecewise analytical model of
  ref. [14], with breakpoints fitted by segmented least squares;
* :class:`PchipModel` -- FPM with Fritsch--Carlson monotone cubic
  interpolation: monotone time functions without coarsening.
"""

from repro.core.models.akima import AkimaModel
from repro.core.models.base import PerformanceModel
from repro.core.models.constant import ConstantModel
from repro.core.models.energy import (
    ConstantEnergyModel,
    EnergyModelMixin,
    LinearEnergyModel,
    PiecewiseEnergyModel,
    energy_model_for,
    is_energy_model,
)
from repro.core.models.linear import LinearModel
from repro.core.models.pchip import PchipModel
from repro.core.models.segmented import SegmentedLinearModel
from repro.core.models.piecewise import PiecewiseModel

__all__ = [
    "AkimaModel",
    "ConstantEnergyModel",
    "ConstantModel",
    "EnergyModelMixin",
    "LinearEnergyModel",
    "LinearModel",
    "PchipModel",
    "PerformanceModel",
    "PiecewiseEnergyModel",
    "PiecewiseModel",
    "SegmentedLinearModel",
    "energy_model_for",
    "is_energy_model",
]
