"""The piecewise analytical performance model (Ogata et al., ref. [14]).

Section 3 of the paper: when linear models fail (resource contention,
memory-hierarchy transitions), ref. [14] replaces them with an *analytical
piecewise* model -- several linear regimes with breakpoints.  The paper
notes "this model can achieve high accuracy but there is no generic way to
build it for an arbitrary application"; this implementation supplies the
generic construction: optimal segmented least squares (Bellman's dynamic
programming), with the number of segments chosen automatically.

Construction:

1. points are sorted and duplicate sizes merged (rep-weighted);
2. for every candidate segment count ``k`` up to ``max_segments``, dynamic
   programming finds the partition of the points into ``k`` contiguous
   runs minimising the total squared regression error (each run gets its
   own least-squares line);
3. every segment must contain at least two points (a one-point "regime"
   is statistically meaningless), and the smallest ``k`` whose error is
   within 5% (relative) of the best achievable is selected -- extra
   regimes must pay for themselves;
4. prediction uses the segment whose data range contains ``x``
   (boundaries halfway between neighbouring runs), clamped positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError


@dataclass(frozen=True)
class Segment:
    """One linear regime ``t(x) = a + b x`` valid on ``[x_lo, x_hi)``."""

    x_lo: float
    x_hi: float
    a: float
    b: float

    def time(self, x: float) -> float:
        """Predicted time of the regime's line at size ``x``."""
        return self.a + self.b * x


def _fit_line(xs: np.ndarray, ts: np.ndarray) -> Tuple[float, float, float]:
    """Least-squares line through the points; returns (a, b, sse)."""
    n = xs.size
    if n == 1:
        return float(ts[0]), 0.0, 0.0
    x_mean = float(np.mean(xs))
    t_mean = float(np.mean(ts))
    sxx = float(np.sum((xs - x_mean) ** 2))
    if sxx == 0.0:
        return t_mean, 0.0, float(np.sum((ts - t_mean) ** 2))
    b = float(np.sum((xs - x_mean) * (ts - t_mean))) / sxx
    a = t_mean - b * x_mean
    residual = ts - (a + b * xs)
    return a, b, float(np.sum(residual * residual))


class SegmentedLinearModel(PerformanceModel):
    """Piecewise-linear analytical time model with fitted breakpoints."""

    min_points = 1

    def __init__(self, max_segments: int = 4, tolerance: float = 0.05) -> None:
        if max_segments < 1:
            raise ModelError(f"max_segments must be >= 1, got {max_segments}")
        if tolerance < 0.0:
            raise ModelError(f"tolerance must be non-negative, got {tolerance}")
        super().__init__()
        self.max_segments = max_segments
        self.tolerance = tolerance
        self._segments: List[Segment] = []

    def _rebuild(self) -> None:
        by_size: dict = {}
        for p in self._points:
            t_sum, w_sum = by_size.get(float(p.d), (0.0, 0.0))
            by_size[float(p.d)] = (t_sum + p.t * p.reps, w_sum + p.reps)
        xs = np.asarray(sorted(by_size))
        ts = np.asarray([by_size[x][0] / by_size[x][1] for x in xs])
        n = xs.size
        if n == 1:
            # Pure bandwidth line through the origin, like LinearModel.
            self._segments = [Segment(0.0, float("inf"), 0.0, ts[0] / xs[0])]
            self._refresh_segment_arrays()
            return

        # sse[i][j]: fit error of one line over points i..j (inclusive).
        sse = np.zeros((n, n))
        coeff: List[List[Tuple[float, float]]] = [[(0.0, 0.0)] * n for _ in range(n)]
        for i in range(n):
            for j in range(i, n):
                a, b, err = _fit_line(xs[i: j + 1], ts[i: j + 1])
                sse[i][j] = err
                coeff[i][j] = (a, b)

        # Each regime needs at least two supporting points.
        kmax = max(min(self.max_segments, n // 2), 1)
        min_run = 2 if n >= 2 else 1
        # dp[k][j]: best error covering points 0..j with k segments.
        inf = float("inf")
        dp = [[inf] * n for _ in range(kmax + 1)]
        back = [[-1] * n for _ in range(kmax + 1)]
        for j in range(n):
            if j + 1 >= min_run:
                dp[1][j] = sse[0][j]
                back[1][j] = 0
        for k in range(2, kmax + 1):
            for j in range(n):
                for i in range(1, j - min_run + 2):
                    if j - i + 1 < min_run:
                        continue
                    if dp[k - 1][i - 1] == inf:
                        continue
                    candidate = dp[k - 1][i - 1] + sse[i][j]
                    if candidate < dp[k][j]:
                        dp[k][j] = candidate
                        back[k][j] = i

        feasible = [k for k in range(1, kmax + 1) if dp[k][n - 1] < inf]
        best_possible = min(dp[k][n - 1] for k in feasible)
        # Absolute floor guards the exact-fit case (best SSE ~ 0 up to
        # float dust).
        floor = 1e-12 * (float(np.sum(ts * ts)) or 1.0)
        chosen = feasible[-1]
        for k in feasible:
            if dp[k][n - 1] <= best_possible * (1.0 + self.tolerance) + floor:
                chosen = k
                break

        # Recover the runs.
        runs: List[Tuple[int, int]] = []
        j = n - 1
        k = chosen
        while k >= 1:
            i = back[k][j]
            runs.append((i, j))
            j = i - 1
            k -= 1
        runs.reverse()

        segments: List[Segment] = []
        for idx, (i, j) in enumerate(runs):
            a, b = coeff[i][j]
            lo = 0.0 if idx == 0 else 0.5 * (xs[i - 1] + xs[i])
            hi = float("inf") if idx == len(runs) - 1 else 0.5 * (xs[j] + xs[j + 1])
            segments.append(Segment(lo, hi, a, b))
        self._segments = segments
        self._refresh_segment_arrays()

    def _refresh_segment_arrays(self) -> None:
        """Per-regime coefficient arrays for vectorized evaluation."""
        self._seg_lo = np.asarray([s.x_lo for s in self._segments])
        self._seg_a = np.asarray([s.a for s in self._segments])
        self._seg_b = np.asarray([s.b for s in self._segments])

    @property
    def segments(self) -> List[Segment]:
        """The fitted linear regimes, in increasing-x order."""
        self._require_ready()
        return list(self._segments)

    def _segment_at(self, x: float) -> Segment:
        for seg in self._segments:
            if seg.x_lo <= x < seg.x_hi:
                return seg
        return self._segments[-1]

    def time(self, x: float) -> float:
        self._require_ready()
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x == 0.0:
            return 0.0
        return max(self._segment_at(x).time(x), 1e-15)

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        # Regimes are contiguous, so the active one is a searchsorted away.
        i = np.clip(
            np.searchsorted(self._seg_lo, xs, side="right") - 1,
            0,
            len(self._segments) - 1,
        )
        t = np.maximum(self._seg_a[i] + self._seg_b[i] * xs, 1e-15)
        return np.where(xs == 0.0, 0.0, t)

    def time_derivative(self, x: float) -> float:
        """Slope of the active regime (piecewise constant)."""
        self._require_ready()
        return self._segment_at(max(x, 0.0)).b

    def fingerprint_state(self) -> tuple:
        """Fitted state is the regime table ``(x_lo, x_hi, a, b)`` per segment."""
        self._require_ready()
        return (
            "SegmentedLinearModel",
            "segments",
            tuple((s.x_lo, s.x_hi, s.a, s.b) for s in self._segments),
        )
