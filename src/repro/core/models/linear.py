"""Linear analytical performance model (Qilin-style, ref. [12]).

Section 3 of the paper surveys application-specific analytical models: in
Qilin (Luk, Hong, Kim -- ref. [12]) the execution time of each device is
approximated by a *linear* function of problem size, ``t(x) = a + b x``,
fitted empirically.  The paper then notes (via ref. [14]) that linear
models "might not fit the actual performance in the case of resource
contention" -- the motivation for the general functional models.

We implement the linear model as a first-class ``fupermod_model`` so the
comparison can be made quantitatively (ablation A8): least-squares fit over
the measurement points, with the intercept clamped at zero (a negative
startup time is unphysical and would break partitioning).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError


class LinearModel(PerformanceModel):
    """Analytical model ``t(x) = a + b x`` fitted by least squares.

    A single point yields the pure-bandwidth model ``t = (t0/d0) x``;
    two or more points fit both coefficients.  The slope must come out
    positive -- measurement sets for which it does not (time decreasing
    with size) are rejected, because no workload balancing is possible
    against a negative marginal cost.
    """

    min_points = 1

    def __init__(self) -> None:
        super().__init__()
        self._a: float = 0.0
        self._b: float = 0.0

    def _rebuild(self) -> None:
        if len(self._points) == 1:
            p = self._points[0]
            self._a = 0.0
            self._b = p.t / p.d
            return
        x = np.asarray([float(p.d) for p in self._points])
        t = np.asarray([p.t for p in self._points])
        design = np.column_stack([np.ones_like(x), x])
        (a, b), *_ = np.linalg.lstsq(design, t, rcond=None)
        if b <= 0.0:
            raise ModelError(
                f"linear fit has non-positive slope {b}; "
                "times do not grow with problem size"
            )
        self._a = max(float(a), 0.0)
        self._b = float(b)

    @property
    def coefficients(self) -> "tuple[float, float]":
        """The fitted ``(a, b)`` of ``t(x) = a + b x``."""
        self._require_ready()
        return (self._a, self._b)

    def time(self, x: float) -> float:
        self._require_ready()
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x == 0.0:
            return 0.0
        return self._a + self._b * x

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        return np.where(xs == 0.0, 0.0, self._a + self._b * xs)

    def allocation_batch(
        self,
        levels,
        cap: float,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
        tol: float = 1e-9,
    ) -> np.ndarray:
        # Closed form: t(x) = a + b x  =>  x = (T - a) / b, clamped.
        self._require_ready()
        levels = np.atleast_1d(np.asarray(levels, dtype=float))
        cap = float(cap)
        x = np.clip((levels - self._a) / self._b, 0.0, cap)
        # When b is vanishingly small the division cancels badly; pin the
        # contract's boundary cases explicitly.
        return np.where(levels >= self._a + self._b * cap, cap, x)

    def time_derivative(self, x: float) -> float:
        """Constant slope ``b`` (used by the numerical partitioner)."""
        self._require_ready()
        return self._b

    def fingerprint_state(self) -> tuple:
        """Fitted state is the regression coefficients ``(a, b)``."""
        self._require_ready()
        return ("LinearModel", "coefficients", self._a, self._b)
