"""The piecewise-linear functional performance model.

This FPM interpolates the *speed* function (units/second) piecewise-linearly
through the measured points, after :func:`~repro.interp.coarsen_to_fpm_shape`
has clipped the data to the canonical shape of Lastovetsky--Reddy (every ray
from the origin crosses the curve once).  Outside the measured range the
speed is extended as a constant (flat), which preserves the shape property:

* left of the first point: ``s(x) = s(x_min)`` -- the time function tends to
  zero at zero size, as it must;
* right of the last point: ``s(x) = s(x_max)`` -- a conservative prediction
  for sizes never benchmarked.

The derived time function ``t(x) = x / s(x)`` is then strictly increasing,
which is exactly what the geometrical partitioning algorithm requires to
converge.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError
from repro.interp.coarsening import coarsen_to_fpm_shape
from repro.interp.piecewise_linear import PiecewiseLinear


class PiecewiseModel(PerformanceModel):
    """FPM with coarsened piecewise-linear speed interpolation."""

    min_points = 1

    def __init__(self) -> None:
        super().__init__()
        self._speed_interp: PiecewiseLinear | None = None
        self._x_min: float = 0.0
        self._x_max: float = 0.0

    def _rebuild(self) -> None:
        speed_points: List[Tuple[float, float]] = [
            (float(p.d), p.d / p.t) for p in self._points
        ]
        coarsened = coarsen_to_fpm_shape(speed_points)
        self._speed_interp = PiecewiseLinear(coarsened, min_y=1e-12)
        self._x_min = coarsened[0][0]
        self._x_max = coarsened[-1][0]

    @property
    def coarsened_speed_points(self) -> "tuple[Tuple[float, float], ...]":
        """The (size, speed) knots after coarsening (for plots like Fig. 2a)."""
        self._require_ready()
        assert self._speed_interp is not None
        return tuple(zip(self._speed_interp.xs, self._speed_interp.ys))

    def speed(self, x: float) -> float:
        self._require_ready()
        assert self._speed_interp is not None
        # Flat extension outside the measured range keeps the FPM shape.
        x_eval = min(max(x, self._x_min), self._x_max)
        return max(self._speed_interp(x_eval), 1e-12)

    def time(self, x: float) -> float:
        self._require_ready()
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x == 0.0:
            return 0.0
        return x / self.speed(x)
