"""The piecewise-linear functional performance model.

This FPM interpolates the *speed* function (units/second) piecewise-linearly
through the measured points, after :func:`~repro.interp.coarsen_to_fpm_shape`
has clipped the data to the canonical shape of Lastovetsky--Reddy (every ray
from the origin crosses the curve once).  Outside the measured range the
speed is extended as a constant (flat), which preserves the shape property:

* left of the first point: ``s(x) = s(x_min)`` -- the time function tends to
  zero at zero size, as it must;
* right of the last point: ``s(x) = s(x_max)`` -- a conservative prediction
  for sizes never benchmarked.

The derived time function ``t(x) = x / s(x)`` is then strictly increasing,
which is exactly what the geometrical partitioning algorithm requires to
converge.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError
from repro.interp.coarsening import coarsen_to_fpm_shape
from repro.interp.piecewise_linear import PiecewiseLinear


class PiecewiseModel(PerformanceModel):
    """FPM with coarsened piecewise-linear speed interpolation."""

    min_points = 1

    def __init__(self) -> None:
        super().__init__()
        self._speed_interp: PiecewiseLinear | None = None
        self._x_min: float = 0.0
        self._x_max: float = 0.0
        self._knot_times: Optional[np.ndarray] = None

    def _rebuild(self) -> None:
        speed_points: List[Tuple[float, float]] = [
            (float(p.d), p.d / p.t) for p in self._points
        ]
        coarsened = coarsen_to_fpm_shape(speed_points)
        self._speed_interp = PiecewiseLinear(coarsened, min_y=1e-12)
        self._x_min = coarsened[0][0]
        self._x_max = coarsened[-1][0]
        self._knot_times = None  # inversion cache, filled on demand

    @property
    def coarsened_speed_points(self) -> "tuple[Tuple[float, float], ...]":
        """The (size, speed) knots after coarsening (for plots like Fig. 2a)."""
        self._require_ready()
        assert self._speed_interp is not None
        return tuple(zip(self._speed_interp.xs, self._speed_interp.ys))

    def fingerprint_state(self) -> tuple:
        """Fitted state is the coarsened (size, speed) knot sequence.

        Points that coarsen to the same knots (e.g. re-measurements of an
        already-converged dynamic loop on a noise-free device) fingerprint
        identically, which is what lets the plan cache serve them.
        """
        self._require_ready()
        assert self._speed_interp is not None
        return (
            "PiecewiseModel",
            "knots",
            tuple(self._speed_interp.xs),
            tuple(self._speed_interp.ys),
        )

    def speed(self, x: float) -> float:
        self._require_ready()
        assert self._speed_interp is not None
        # Flat extension outside the measured range keeps the FPM shape.
        x_eval = min(max(x, self._x_min), self._x_max)
        return max(self._speed_interp(x_eval), 1e-12)

    def time(self, x: float) -> float:
        self._require_ready()
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        if x == 0.0:
            return 0.0
        return x / self.speed(x)

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        assert self._speed_interp is not None
        x_eval = np.clip(xs, self._x_min, self._x_max)
        speeds = np.maximum(self._speed_interp.evaluate_batch(x_eval), 1e-12)
        return np.where(xs == 0.0, 0.0, xs / speeds)

    def _inversion_tables(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Cached ``(knot_xs, knot_speeds, knot_times)`` of the speed knots."""
        assert self._speed_interp is not None
        if self._knot_times is None:
            xk = np.asarray(self._speed_interp.xs, dtype=float)
            sk = np.maximum(np.asarray(self._speed_interp.ys, dtype=float), 1e-12)
            self._knot_xs = xk
            self._knot_speeds = sk
            self._knot_times = xk / sk
        return self._knot_xs, self._knot_speeds, self._knot_times

    def allocation_batch(
        self,
        levels,
        cap: float,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
        tol: float = 1e-9,
    ) -> np.ndarray:
        """Closed-form inversion of the coarsened piecewise time function.

        The speed is linear on each knot interval, so ``t(x) = T`` solves
        to ``x = T (s_k - m_k x_k) / (1 - T m_k)`` within the interval, and
        to ``x = T s`` in the constant-speed extensions.  The FPM shape
        restriction makes the knot times strictly increasing, so interval
        lookup is one ``searchsorted``.
        """
        self._require_ready()
        levels = np.atleast_1d(np.asarray(levels, dtype=float))
        cap = float(cap)
        xk, sk, tk = self._inversion_tables()
        n = xk.size
        if n == 1:
            return np.clip(levels * sk[0], 0.0, cap)
        # Interval index: -1 left of the first knot, n-1 right of the last.
        j = np.searchsorted(tk, levels, side="right") - 1
        left = j < 0
        right = j >= n - 1
        inner = ~(left | right)
        x = np.empty(levels.shape)
        # Constant-speed extensions on both sides.
        x[left] = levels[left] * sk[0]
        x[right] = levels[right] * sk[-1]
        if np.any(inner):
            ji = j[inner]
            t = levels[inner]
            mk = (sk[ji + 1] - sk[ji]) / (xk[ji + 1] - xk[ji])
            denom = 1.0 - t * mk
            # t strictly increasing on the interval => denominator > 0 at
            # the root; guard float dust by falling back to the right knot.
            xi = np.where(
                denom > 1e-300,
                t * (sk[ji] - mk * xk[ji]) / np.where(denom > 1e-300, denom, 1.0),
                xk[ji + 1],
            )
            x[inner] = np.clip(xi, xk[ji], xk[ji + 1])
        return np.clip(x, 0.0, cap)
