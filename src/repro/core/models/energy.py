"""Energy models -- the joule-valued siblings of the speed models.

An energy model approximates a process's *energy function* ``e(x)``: the
joules consumed computing ``x`` units, fitted from measurement points
whose ``t`` field holds joules instead of seconds (see
:func:`repro.platform.power.energy_points_from_power`).  The machinery is
deliberately the speed-model machinery: every family here subclasses an
existing :class:`~repro.core.models.base.PerformanceModel` family, so the
lazy-rebuild, ``update_many``, ``time_batch``/``allocation_batch``
batching and ``fingerprint_state()`` contracts -- everything the serving
layer (feedback refits, content-addressed plan fingerprints, warm-start
bracket carrying) depends on -- hold unchanged.  Only the unit of the
dependent variable differs, which the partitioners never inspect.

``energy(x)`` / ``energy_batch(sizes)`` are unit-honest aliases of
``time``/``time_batch``; the bi-objective partitioner
(:mod:`repro.core.partition.pareto`) accepts either vocabulary.

Because ``fingerprint_state()`` leads with the class name, an energy
model never fingerprints equal to the speed model it shadows, even when
fitted to numerically identical points -- the cache-key separation the
objective-keyed plan serving relies on.
"""

from __future__ import annotations

import numpy as np

from repro.core.models.constant import ConstantModel
from repro.core.models.linear import LinearModel
from repro.core.models.piecewise import PiecewiseModel


class EnergyModelMixin:
    """Marker + joule-vocabulary aliases shared by every energy family."""

    #: Distinguishes energy families from speed families at dispatch time.
    objective = "energy"

    def energy(self, x: float) -> float:
        """Predicted energy (joules) to compute ``x`` units."""
        return self.time(x)

    def energy_batch(self, sizes) -> np.ndarray:
        """Batched counterpart of :meth:`energy`."""
        return self.time_batch(sizes)

    def fingerprint_state(self) -> tuple:
        """The parent family's fitted state, tagged with *this* class name.

        The speed families hard-code their own name as the leading state
        element; re-tagging keeps the fitted-parameter semantics while
        guaranteeing an energy model never fingerprints equal to the
        speed model it subclasses, even on numerically identical fits.
        """
        state = super().fingerprint_state()
        return (type(self).__name__,) + tuple(state[1:])


def is_energy_model(model) -> bool:
    """Whether ``model`` predicts joules rather than seconds."""
    return getattr(model, "objective", "time") == "energy"


class ConstantEnergyModel(EnergyModelMixin, ConstantModel):
    """Constant joules-per-unit: ``e(x) = c * x`` (registry ``energy-constant``)."""


class LinearEnergyModel(EnergyModelMixin, LinearModel):
    """Affine energy ``e(x) = a + b x`` by least squares (registry ``energy-linear``)."""


class PiecewiseEnergyModel(EnergyModelMixin, PiecewiseModel):
    """Piecewise energy function with the FPM shape restrictions
    (registry ``energy-piecewise``) -- the default for served Pareto plans,
    for the same reason the speed default is piecewise: the coarsened
    function is strictly increasing, so the geometric solver's inversion
    is well defined."""


#: Energy family fitted alongside each speed family by default.
DEFAULT_ENERGY_FAMILY = {
    "constant": ConstantEnergyModel,
    "linear": LinearEnergyModel,
}


def energy_model_for(speed_model_name: str):
    """The energy family matching a speed-model registry name.

    ``constant`` and ``linear`` map to their energy twins; every other
    family (piecewise, akima, pchip, segmented) maps to
    :class:`PiecewiseEnergyModel`, whose shape restrictions keep the
    energy function invertible for the partitioners.
    """
    return DEFAULT_ENERGY_FAMILY.get(speed_model_name, PiecewiseEnergyModel)
