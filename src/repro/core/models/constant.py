"""The constant performance model (CPM).

Speed is assumed independent of problem size.  A single experimental point
defines the model; further points refine the constant adaptively (as in the
history-based CPM of ref. [17] of the paper) by pooling all observed work
and time: ``s = sum(d_i) / sum(t_i)``, which weights each point by the time
actually spent measuring it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.errors import ModelError


class ConstantModel(PerformanceModel):
    """CPM: ``t(x) = x / s`` with a constant speed ``s`` in units/second."""

    min_points = 1

    def __init__(self) -> None:
        super().__init__()
        self._speed: float = 0.0

    def _rebuild(self) -> None:
        total_work = sum(p.d for p in self._points)
        total_time = sum(p.t for p in self._points)
        if total_time <= 0.0:
            raise ModelError("cannot build a CPM from zero total time")
        self._speed = total_work / total_time

    @property
    def constant_speed(self) -> float:
        """The constant speed in computation units per second."""
        self._require_ready()
        return self._speed

    def time(self, x: float) -> float:
        self._require_ready()
        if x < 0.0:
            raise ModelError(f"size must be non-negative, got {x}")
        return x / self._speed

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        return xs / self._speed

    def allocation_batch(
        self,
        levels,
        cap: float,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
        tol: float = 1e-9,
    ) -> np.ndarray:
        # Closed form: t(x) = x / s  =>  x = T s, clamped to [0, cap].
        self._require_ready()
        levels = np.atleast_1d(np.asarray(levels, dtype=float))
        return np.clip(levels * self._speed, 0.0, float(cap))

    def speed(self, x: float) -> float:
        self._require_ready()
        return self._speed

    def fingerprint_state(self) -> tuple:
        """Fitted state is the single pooled speed constant."""
        self._require_ready()
        return ("ConstantModel", "speed", self._speed)
