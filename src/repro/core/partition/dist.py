"""Workload distributions -- the paper's ``fupermod_dist``.

A :class:`Distribution` assigns each process an integer number of
computation units (``Part.d``) together with the model-predicted computing
time of that workload (``Part.t``).  The application programmer distributes
the actual data according to these numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import PartitionError


@dataclass(frozen=True)
class Part:
    """One process's share: ``d`` computation units, predicted time ``t``."""

    d: int
    t: float = 0.0

    def __post_init__(self) -> None:
        if self.d < 0:
            raise PartitionError(f"part size must be non-negative, got {self.d}")
        if self.t < 0.0:
            raise PartitionError(f"predicted time must be non-negative, got {self.t}")


class Distribution:
    """An integer workload distribution over ``size`` processes."""

    def __init__(self, parts: Iterable[Part]) -> None:
        self.parts: List[Part] = list(parts)
        if not self.parts:
            raise PartitionError("distribution must have at least one part")

    @staticmethod
    def even(total: int, size: int) -> "Distribution":
        """The even distribution (initial guess of the dynamic algorithms)."""
        if size < 1:
            raise PartitionError(f"size must be >= 1, got {size}")
        if total < 0:
            raise PartitionError(f"total must be non-negative, got {total}")
        sizes = round_preserving_sum([total / size] * size, total)
        return Distribution(Part(d) for d in sizes)

    @staticmethod
    def from_sizes(sizes: Sequence[int], times: Sequence[float] = ()) -> "Distribution":
        """Build a distribution from explicit per-process sizes."""
        if times and len(times) != len(sizes):
            raise PartitionError(
                f"{len(times)} times for {len(sizes)} sizes"
            )
        if times:
            return Distribution(Part(d, t) for d, t in zip(sizes, times))
        return Distribution(Part(d) for d in sizes)

    @property
    def size(self) -> int:
        """Number of processes."""
        return len(self.parts)

    @property
    def total(self) -> int:
        """Total problem size ``D`` in computation units."""
        return sum(p.d for p in self.parts)

    @property
    def sizes(self) -> List[int]:
        """Per-process sizes in rank order."""
        return [p.d for p in self.parts]

    @property
    def times(self) -> List[float]:
        """Per-process predicted times in rank order."""
        return [p.t for p in self.parts]

    @property
    def predicted_makespan(self) -> float:
        """Largest predicted per-process time."""
        return max(p.t for p in self.parts)

    @property
    def predicted_imbalance(self) -> float:
        """Relative imbalance ``(t_max - t_min) / t_max`` of predicted times.

        Zero for a single process or when all predicted times are zero.
        """
        tmax = max(p.t for p in self.parts)
        tmin = min(p.t for p in self.parts)
        if tmax <= 0.0:
            return 0.0
        return (tmax - tmin) / tmax

    def max_relative_change(self, other: "Distribution") -> float:
        """Largest per-process relative size change versus ``other``.

        Used as the convergence criterion of dynamic partitioning: the
        change of each part is normalised by the even share, so the metric
        is scale-free in ``D``.
        """
        if other.size != self.size:
            raise PartitionError(
                f"cannot compare distributions of sizes {self.size} and {other.size}"
            )
        reference = max(self.total / self.size, 1.0)
        return max(
            abs(a.d - b.d) / reference for a, b in zip(self.parts, other.parts)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.sizes == other.sizes

    def __iter__(self):
        return iter(self.parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Distribution({self.sizes}, total={self.total})"


def round_preserving_sum(xs: Sequence[float], total: int) -> List[int]:
    """Round non-negative reals to integers that sum exactly to ``total``.

    Largest-remainder method: floor everything, then hand the remaining
    units to the entries with the largest fractional parts.  Continuous
    partitioner outputs go through this before becoming distributions.
    """
    if total < 0:
        raise PartitionError(f"total must be non-negative, got {total}")
    if any(x < 0 or math.isnan(x) or math.isinf(x) for x in xs):
        raise PartitionError(f"values must be finite and non-negative: {xs}")
    floors = [int(math.floor(x)) for x in xs]
    deficit = total - sum(floors)
    if deficit < 0:
        # Over-allocation (rounding artefacts): trim from the smallest
        # fractional parts, never below zero.
        order = sorted(range(len(xs)), key=lambda i: (xs[i] - floors[i], xs[i]))
        for i in order:
            while deficit < 0 and floors[i] > 0:
                floors[i] -= 1
                deficit += 1
        if deficit < 0:
            raise PartitionError(
                f"cannot round {xs} down to total {total}"
            )
        return floors
    remainders = sorted(
        range(len(xs)), key=lambda i: (xs[i] - floors[i], xs[i]), reverse=True
    )
    for k in range(deficit):
        floors[remainders[k % len(xs)]] += 1
    return floors
