"""Model-based data partitioning -- the heart of FuPerMod.

Static algorithms (full models as input):

* :func:`partition_constant` -- divide in proportion to constant speeds
  (fastest, least accurate);
* :func:`partition_geometric` -- iterative bisection of the speed functions
  by lines through the origin (piecewise FPMs, shape-restricted);
* :func:`partition_numerical` -- multidimensional root-finding on the
  equal-time system (Akima FPMs, smooth speed functions of any shape).

Dynamic algorithms (build *partial* models at runtime):

* :class:`DynamicPartitioner` -- the paper's ``fupermod_partition_iterate``:
  benchmark at the current distribution, refine the partial estimates,
  re-partition, repeat to a given accuracy;
* :class:`LoadBalancer` -- the paper's ``fupermod_balance_iterate``: use the
  observed times of real application iterations and repartition whenever
  the imbalance exceeds a threshold.

Robustness: every algorithm validates its inputs at the boundary
(:func:`validate_partition_inputs`) and certifies how it terminated with a
:class:`ConvergenceCert` -- attached to the returned distribution as
``.convergence`` -- so iteration-cap exhaustion raises
:class:`~repro.errors.ConvergenceError` (``strict=True``) or warns
(``strict=False``) instead of silently returning the last iterate.
"""

from repro.core.partition.basic import partition_constant
from repro.core.partition.cert import ConvergenceCert, certify
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.core.partition.distributed import (
    DistributedPartitionResult,
    distributed_partition,
)
from repro.core.partition.dynamic import (
    BalanceStep,
    DynamicPartitioner,
    DynamicResult,
    LoadBalancer,
)
from repro.core.partition.geometric import BisectionStep, partition_geometric
from repro.core.partition.hierarchical import (
    HierarchicalResult,
    aggregate_node_model,
    group_models_by_node,
    partition_hierarchical,
)
from repro.core.partition.limits import limits_from_platform, partition_with_limits
from repro.core.partition.numerical import partition_numerical
from repro.core.partition.pareto import (
    BlendedModel,
    DEFAULT_FRONT_POINTS,
    MAX_FRONT_POINTS,
    ParetoFront,
    ParetoPoint,
    partition_pareto,
)
from repro.core.partition.redistribution import (
    Transfer,
    apply_plan_cost,
    moved_units,
    redistribution_plan,
)
from repro.core.partition.resilient import (
    partition_survivors,
    redistribute_to_survivors,
)
from repro.core.partition.validate import validate_partition_inputs, validate_total
from repro.core.partition.warm import WarmStart, warm_start_from

__all__ = [
    "BalanceStep",
    "BisectionStep",
    "BlendedModel",
    "ConvergenceCert",
    "DEFAULT_FRONT_POINTS",
    "MAX_FRONT_POINTS",
    "ParetoFront",
    "ParetoPoint",
    "DistributedPartitionResult",
    "Distribution",
    "DynamicPartitioner",
    "DynamicResult",
    "HierarchicalResult",
    "LoadBalancer",
    "Part",
    "Transfer",
    "WarmStart",
    "aggregate_node_model",
    "apply_plan_cost",
    "certify",
    "distributed_partition",
    "group_models_by_node",
    "limits_from_platform",
    "moved_units",
    "partition_constant",
    "partition_geometric",
    "partition_hierarchical",
    "partition_numerical",
    "partition_pareto",
    "partition_survivors",
    "partition_with_limits",
    "redistribute_to_survivors",
    "redistribution_plan",
    "round_preserving_sum",
    "validate_partition_inputs",
    "validate_total",
    "warm_start_from",
]
