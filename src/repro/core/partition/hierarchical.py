"""Hierarchical (two-level) data partitioning.

The paper's target is "a hierarchical heterogeneous distributed-memory
system": devices live inside nodes, nodes form the platform.  Partitioning
can respect that hierarchy: first split the total across *nodes* using
node-level aggregate models, then split each node's share across its
devices.  Two-level partitioning is how the FuPerMod line of work scales to
clusters of hybrid nodes (refs. [18, 19]): node-level models are much
cheaper to communicate and reuse than every device model, and intra-node
splits can be recomputed locally.

The node-level aggregate model is built from the device models themselves:
the aggregate time for ``x`` units is the *makespan of the optimal
intra-node split* of ``x``, evaluated at a handful of sample sizes and
interpolated like any other FPM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.core.models.base import PerformanceModel
from repro.core.models.piecewise import PiecewiseModel
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import PartitionFunction
from repro.core.partition.geometric import partition_geometric
from repro.core.point import MeasurementPoint
from repro.errors import PartitionError


def aggregate_node_model(
    device_models: Sequence[PerformanceModel],
    sample_sizes: Sequence[int],
    algorithm: PartitionFunction = partition_geometric,
    model_factory: Callable[[], PerformanceModel] = PiecewiseModel,
) -> PerformanceModel:
    """Build a node-level model from the node's device models.

    For each sample size the node's optimal internal split is computed and
    its makespan becomes one experimental point of the aggregate model --
    "how fast is this node as a whole at x units, used optimally".

    Args:
        device_models: models of the node's devices (all ready).
        sample_sizes: problem sizes at which to evaluate the aggregate.
        algorithm: intra-node partitioning algorithm.
        model_factory: type of the aggregate model.

    Returns:
        A ready aggregate performance model for the node.
    """
    if not device_models:
        raise PartitionError("node must have at least one device model")
    if not sample_sizes:
        raise PartitionError("need at least one sample size")
    aggregate = model_factory()
    samples: List[MeasurementPoint] = []
    for x in sample_sizes:
        if x <= 0:
            raise PartitionError(f"sample sizes must be positive, got {x}")
        dist = algorithm(x, device_models)
        makespan = max(part.t for part in dist.parts)
        if makespan <= 0.0:
            raise PartitionError(
                f"intra-node split of {x} units yields non-positive makespan"
            )
        samples.append(MeasurementPoint(d=x, t=makespan, reps=1, ci=0.0))
    # One bulk ingest: the aggregate is fitted once, not per sample.
    aggregate.update_many(samples)
    return aggregate


@dataclass(frozen=True)
class HierarchicalResult:
    """Outcome of :func:`partition_hierarchical`.

    Attributes:
        flat: the device-level distribution, in platform rank order.
        node_distribution: the node-level split the devices refine.
        node_models: the aggregate models used at the top level.
    """

    flat: Distribution
    node_distribution: Distribution
    node_models: List[PerformanceModel]


def partition_hierarchical(
    total: int,
    node_groups: Sequence[Sequence[PerformanceModel]],
    sample_sizes: Sequence[int],
    algorithm: PartitionFunction = partition_geometric,
    model_factory: Callable[[], PerformanceModel] = PiecewiseModel,
) -> HierarchicalResult:
    """Two-level partitioning: across nodes, then across devices.

    Args:
        total: problem size in computation units.
        node_groups: device models grouped by node, in platform rank order
            (group i holds the models of node i's devices, contiguous
            ranks).
        sample_sizes: sizes at which node aggregates are sampled; should
            bracket the per-node shares expected at ``total``.
        algorithm: partitioning algorithm used at both levels.
        model_factory: model type for the node aggregates.

    Returns:
        A :class:`HierarchicalResult`; ``flat`` sums exactly to ``total``.
    """
    if total < 0:
        raise PartitionError(f"total must be non-negative, got {total}")
    if not node_groups:
        raise PartitionError("need at least one node group")

    node_models = [
        aggregate_node_model(group, sample_sizes, algorithm, model_factory)
        for group in node_groups
    ]
    node_dist = algorithm(total, node_models)

    flat_parts = []
    for group, node_part in zip(node_groups, node_dist.parts):
        if node_part.d == 0:
            sub = Distribution.even(0, len(group))
        else:
            sub = algorithm(node_part.d, group)
        flat_parts.extend(sub.parts)
    flat = Distribution(flat_parts)
    if flat.total != total:
        raise PartitionError(
            f"internal error: hierarchical distribution sums to {flat.total}, "
            f"expected {total}"
        )
    return HierarchicalResult(
        flat=flat, node_distribution=node_dist, node_models=node_models
    )


def group_models_by_node(platform, models: Sequence[PerformanceModel]):
    """Split a flat rank-ordered model list into per-node groups."""
    if len(models) != platform.size:
        raise PartitionError(
            f"{len(models)} models for a platform of {platform.size} ranks"
        )
    groups: List[List[PerformanceModel]] = []
    rank = 0
    for node in platform.nodes:
        groups.append(list(models[rank: rank + len(node.devices)]))
        rank += len(node.devices)
    return groups
