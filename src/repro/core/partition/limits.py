"""Memory-constrained data partitioning.

"Due to limited GPU memory, the execution time of GPU kernels can be
measured only within some range of problem sizes, unless out-of-core
implementations ... are available" (Section 4.1 of the paper).  When a
device has *no* out-of-core path, its allocation is hard-capped: the
balanced solution may want to give it more work than it can hold.

:func:`partition_with_limits` wraps any model-based partitioning algorithm
with per-process capacity caps using the classic water-filling reduction:

1. run the unconstrained algorithm;
2. clamp every over-cap allocation to its cap and freeze those processes;
3. re-run the algorithm on the remaining processes for the remaining
   units;
4. repeat until no allocation exceeds its cap (at most ``p`` rounds, since
   every round freezes at least one process).

The result is optimal for monotone time functions: a frozen process is
saturated, and the rest are balanced among themselves by the underlying
algorithm.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution, Part
from repro.core.partition.dynamic import PartitionFunction
from repro.errors import PartitionError


def partition_with_limits(
    algorithm: PartitionFunction,
    total: int,
    models: Sequence[PerformanceModel],
    limits: Sequence[Optional[int]],
) -> Distribution:
    """Partition ``total`` units under per-process capacity caps.

    Args:
        algorithm: any model-based partitioning algorithm
            (basic/geometric/numerical).
        total: the problem size in computation units.
        models: one performance model per process.
        limits: per-process caps in computation units; None = unlimited.
            A typical source is ``device.memory_limit_units``.

    Returns:
        A :class:`Distribution` summing to ``total`` with every part within
        its cap.

    Raises:
        PartitionError: when the caps cannot hold ``total`` units at all.
    """
    if len(limits) != len(models):
        raise PartitionError(
            f"{len(limits)} limits for {len(models)} models"
        )
    for lim in limits:
        if lim is not None and lim < 0:
            raise PartitionError(f"limits must be non-negative, got {lim}")
    capacity = sum(lim for lim in limits if lim is not None)
    unlimited = any(lim is None for lim in limits)
    if not unlimited and capacity < total:
        raise PartitionError(
            f"total capacity {capacity} cannot hold {total} units"
        )

    size = len(models)
    frozen: List[Optional[int]] = [None] * size
    remaining_total = total

    for _round in range(size + 1):
        free = [i for i in range(size) if frozen[i] is None]
        if not free:
            break
        sub = algorithm(remaining_total, [models[i] for i in free])
        shares = {i: part.d for i, part in zip(free, sub.parts)}
        overflow = [
            i for i in free
            if limits[i] is not None and shares[i] > limits[i]  # type: ignore[operator]
        ]
        if not overflow:
            for i in free:
                frozen[i] = shares[i]
            break
        for i in overflow:
            frozen[i] = int(limits[i])  # type: ignore[arg-type]
            remaining_total -= int(limits[i])  # type: ignore[arg-type]
    else:  # pragma: no cover - loop always breaks within size+1 rounds
        raise PartitionError("limit resolution did not converge")

    if any(v is None for v in frozen):
        # Every process hit its cap; distribute the leftovers (possible
        # only when an unlimited process exists, checked above).
        raise PartitionError(
            f"could not place all {total} units within the given limits"
        )
    parts = [
        Part(d, models[i].time(d) if d > 0 else 0.0)
        for i, d in enumerate(frozen)  # type: ignore[arg-type]
    ]
    dist = Distribution(parts)
    if dist.total != total:
        raise PartitionError(
            f"internal error: constrained distribution sums to {dist.total}, "
            f"expected {total}"
        )
    return dist


def limits_from_platform(platform) -> List[Optional[int]]:
    """Per-rank capacity caps read off a simulated platform's devices."""
    out: List[Optional[int]] = []
    for device in platform.devices:
        lim = device.memory_limit_units
        out.append(int(lim) if lim is not None else None)
    return out
