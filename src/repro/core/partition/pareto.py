"""Bi-objective (time, energy) partitioning -- the Pareto front sweep.

On a heterogeneous platform the energy-optimal workload distribution is
generally *not* the time-optimal one (Khaleghzadeh et al., arXiv:
1907.04080): shifting units from a fast, power-hungry GPU to efficient
CPU cores raises the makespan but lowers the joule bill.  The interesting
answer is therefore a *front* of trade-offs, not a single distribution.

:func:`partition_pareto` sweeps a weighted scalarization of the two
objectives over the existing equal-level machinery.  For weight
``alpha`` in ``[0, 1]`` each device gets the blended cost function ::

    f_i(x) = alpha * t_i(x) / t_scale  +  (1 - alpha) * e_i(x) / e_scale

(``t_scale``/``e_scale`` are the single-device minima at the full
problem size, making the blend dimensionless), and the solver balances
``f_1(x_1) = ... = f_p(x_p)`` subject to ``sum x_i = D`` -- exactly the
geometric algorithm's bisection on the common level, which is well
defined because non-negative blends of increasing functions are
increasing.

Two solve paths share that formulation:

* **endpoints are exact**: ``alpha = 1`` *is* ``partition_geometric``
  over the time models (bit-identical, same cert) and ``alpha = 0`` is
  ``partition_geometric`` over the energy models, so the front's
  time-endpoint always matches the time-only partitioner's output;
* **interior points are batched**: all interior alphas run through one
  shared bisection whose per-step inversion is vectorized across
  ``(alpha, probe level)`` on a piecewise-linear sampling of each
  blended function (exact model evaluations at the grid knots, linear
  in between).  One sweep therefore costs a small multiple of a single
  solve instead of ``npoints`` multiples -- the property the
  ``bench_energy_pareto`` gate pins.  ``method="exact"`` falls back to
  sequential :func:`partition_geometric` solves on exact blended
  models, warm-started point to point.

Every returned :class:`ParetoPoint` carries its *exact* objective values
(the integer distribution re-evaluated on the real models -- never the
surrogate) and a :class:`~repro.core.partition.cert.ConvergenceCert`.
The front is deduplicated, dominance-filtered and sorted by time;
:meth:`ParetoFront.select` picks a point by objective weight ``alpha``
or energy cap ``max_joules``.

Warm starts follow the serving layer's contract: hints only narrow the
initial bracket of a bisection after validating the bracketing
invariant, so warm-started front points are bit-identical to cold ones.
Interior points are seeded from the already-solved endpoints (and an
optional external :class:`~repro.core.partition.warm.WarmStart`).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace as dataclass_replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.core.partition.cert import ConvergenceCert
from repro.core.partition.dist import round_preserving_sum
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.validate import validate_partition_inputs
from repro.core.partition.warm import WarmStart
from repro.errors import ConvergenceError, ConvergenceWarning, PartitionError

#: Default number of front points (including both endpoints).
DEFAULT_FRONT_POINTS = 9

#: Hard ceiling on requested front points (protocol validation reuses it).
MAX_FRONT_POINTS = 64


@dataclass(frozen=True)
class ParetoPoint:
    """One trade-off on the (time, energy) front.

    Attributes:
        sizes: integer per-rank shares (sum to the front's total).
        times: model-predicted per-rank seconds for those shares.
        time: predicted makespan ``max_i t_i(d_i)`` in seconds.
        energy: predicted total energy ``sum_i e_i(d_i)`` in joules.
        alpha: the scalarization weight that produced the point
            (1.0 = pure time, 0.0 = pure energy).
        cert: convergence certificate of the solve behind the point.
    """

    sizes: Tuple[int, ...]
    times: Tuple[float, ...]
    time: float
    energy: float
    alpha: float
    cert: Optional[ConvergenceCert] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (floats via ``repr`` for fidelity)."""
        out: Dict[str, Any] = {
            "sizes": list(self.sizes),
            "times": [repr(t) for t in self.times],
            "time": repr(self.time),
            "energy": repr(self.energy),
            "alpha": repr(self.alpha),
        }
        if self.cert is not None:
            out["cert"] = self.cert.to_dict()
        return out

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ParetoPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        try:
            cert = None
            if "cert" in data:
                c = data["cert"]
                cert = ConvergenceCert(
                    algorithm=str(c["algorithm"]),
                    converged=bool(c["converged"]),
                    iterations=int(c["iterations"]),
                    max_iter=int(c["max_iter"]),
                    residual=float(c["residual"]),
                    tolerance=float(c["tolerance"]),
                    detail=str(c.get("detail", "")),
                )
            return ParetoPoint(
                sizes=tuple(int(d) for d in data["sizes"]),
                times=tuple(float(t) for t in data["times"]),
                time=float(data["time"]),
                energy=float(data["energy"]),
                alpha=float(data["alpha"]),
                cert=cert,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PartitionError(f"malformed pareto point: {exc}") from exc


@dataclass(frozen=True)
class ParetoFront:
    """A deduplicated, dominance-filtered front, sorted by time.

    ``points[0]`` is the time-endpoint (smallest makespan),
    ``points[-1]`` the energy-endpoint (smallest joule bill).
    """

    total: int
    points: Tuple[ParetoPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    @property
    def times(self) -> List[float]:
        """Makespans along the front (non-decreasing)."""
        return [p.time for p in self.points]

    @property
    def energies(self) -> List[float]:
        """Total joules along the front (non-increasing)."""
        return [p.energy for p in self.points]

    def select(
        self,
        alpha: Optional[float] = None,
        max_joules: Optional[float] = None,
    ) -> ParetoPoint:
        """Pick one point: by energy cap, by weight, or the time-endpoint.

        ``max_joules`` wins when both are given: the fastest point whose
        energy fits under the cap (:class:`~repro.errors.PartitionError`
        when even the thriftiest point exceeds it).  ``alpha`` selects
        the point solved at the nearest scalarization weight.  With
        neither, the time-endpoint is returned.
        """
        if not self.points:
            raise PartitionError("empty pareto front")
        if max_joules is not None:
            if not (math.isfinite(max_joules) and max_joules > 0.0):
                raise PartitionError(
                    f"max_joules must be positive and finite, got {max_joules!r}"
                )
            feasible = [p for p in self.points if p.energy <= max_joules]
            if not feasible:
                cheapest = min(p.energy for p in self.points)
                raise PartitionError(
                    f"energy cap {max_joules} J is infeasible: the "
                    f"thriftiest front point needs {cheapest} J"
                )
            return min(feasible, key=lambda p: (p.time, p.energy))
        if alpha is not None:
            if not (math.isfinite(alpha) and 0.0 <= alpha <= 1.0):
                raise PartitionError(
                    f"alpha must be within [0, 1], got {alpha!r}"
                )
            return min(self.points, key=lambda p: (abs(p.alpha - alpha), -p.alpha))
        return self.points[0]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "total": self.total,
            "points": [p.to_dict() for p in self.points],
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ParetoFront":
        """Rebuild a front from :meth:`to_dict` output."""
        try:
            return ParetoFront(
                total=int(data["total"]),
                points=tuple(
                    ParetoPoint.from_dict(p) for p in data["points"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise PartitionError(f"malformed pareto front: {exc}") from exc


class BlendedModel(PerformanceModel):
    """Exact weighted blend of a time model and an energy model.

    ``time(x) = wt * t(x) + we * e(x)`` -- a valid
    :class:`PerformanceModel` (non-negative blends of increasing
    functions are increasing), so the existing partitioners invert it
    unchanged.  Used by the ``method="exact"`` path and by tests as the
    ground truth for the batched surrogate.
    """

    min_points = 0

    def __init__(
        self,
        time_model: PerformanceModel,
        energy_model: PerformanceModel,
        wt: float,
        we: float,
    ) -> None:
        super().__init__()
        self._tm = time_model
        self._em = energy_model
        self._wt = float(wt)
        self._we = float(we)

    @property
    def is_ready(self) -> bool:
        return self._tm.is_ready and self._em.is_ready

    def _rebuild(self) -> None:  # components own their fits
        pass

    def time(self, x: float) -> float:
        if x <= 0:
            return 0.0
        return self._wt * self._tm.time(x) + self._we * self._em.time(x)

    def _time_batch_impl(self, xs: np.ndarray) -> np.ndarray:
        return self._wt * self._tm.time_batch(xs) + self._we * self._em.time_batch(xs)

    def fingerprint_state(self) -> tuple:
        return (
            "BlendedModel",
            repr(self._wt),
            repr(self._we),
            self._tm.fingerprint_state(),
            self._em.fingerprint_state(),
        )


def _objective_scales(
    total: int,
    models: Sequence[PerformanceModel],
    energy_models: Sequence[PerformanceModel],
) -> Tuple[float, float]:
    """Dimensionless-blend normalisers: single-device minima at ``total``."""
    t_scale = min(m.time(total) for m in models)
    e_scale = min(m.time(total) for m in energy_models)
    if not (t_scale > 0.0 and e_scale > 0.0):
        raise PartitionError(
            "models predict non-positive time/energy for the total size"
        )
    return t_scale, e_scale


def _evaluate_point(
    sizes: Sequence[int],
    models: Sequence[PerformanceModel],
    energy_models: Sequence[PerformanceModel],
) -> Tuple[Tuple[float, ...], float, float]:
    """Exact per-rank times, makespan and total joules of a distribution."""
    times = tuple(
        models[i].time(d) if d > 0 else 0.0 for i, d in enumerate(sizes)
    )
    energy = sum(
        energy_models[i].time(d) if d > 0 else 0.0 for i, d in enumerate(sizes)
    )
    return times, max(times), float(energy)


def _grid_for(
    model: PerformanceModel,
    energy_model: PerformanceModel,
    cap: float,
    grid: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared sampling grid and exact (time, energy) values on it.

    The grid is geometric from 1 unit to the cap, augmented with both
    models' measured sizes, so a piecewise-linear interpolation of the
    sampled values reproduces kinks the models were actually fitted
    with.  ``x = 0`` anchors both functions at zero.
    """
    xs = [np.geomspace(1.0, cap, num=grid)]
    for m in (model, energy_model):
        pts = np.asarray([p.d for p in getattr(m, "points", ())], dtype=float)
        if pts.size:
            xs.append(np.clip(pts, 1.0, cap))
    X = np.unique(np.concatenate(xs + [np.asarray([cap])]))
    tv = np.concatenate([[0.0], model.time_batch(X)])
    ev = np.concatenate([[0.0], energy_model.time_batch(X)])
    X = np.concatenate([[0.0], X])
    return X, tv, ev


def _invert_rows(
    X: np.ndarray,
    V: np.ndarray,
    levels: np.ndarray,
    cap: float,
) -> np.ndarray:
    """Allocation per (alpha row, level) on a piecewise-linear function.

    ``V`` holds the blended values at the knots ``X`` for every alpha
    row; inversion is a vectorized searchsorted + linear interpolation
    with the :meth:`~repro.core.models.base.PerformanceModel.
    allocation_batch` clamping contract (levels <= 0 -> 0, levels at or
    above the cap value -> cap).
    """
    K, M = V.shape
    idx = np.sum(V[:, None, :] <= levels[:, :, None], axis=2)
    idx = np.clip(idx, 1, M - 1)
    xlo = X[idx - 1]
    xhi = X[idx]
    vlo = np.take_along_axis(V, idx - 1, axis=1)
    vhi = np.take_along_axis(V, idx, axis=1)
    denom = np.maximum(vhi - vlo, 1e-300)
    out = xlo + (levels - vlo) * (xhi - xlo) / denom
    out = np.clip(out, 0.0, cap)
    out[levels >= V[:, -1:]] = cap
    out[levels <= 0.0] = 0.0
    return out


def _blended_level(
    sizes: Sequence[int],
    alphas: np.ndarray,
    tcol: np.ndarray,
    ecol: np.ndarray,
) -> np.ndarray:
    """Exact blended level of a known distribution, per alpha row.

    ``tcol``/``ecol`` are the normalised per-rank times/energies of the
    distribution; the balanced level of a nearby alpha is close to the
    max blended cost, which is what seeds the interior brackets.
    """
    blend = alphas[:, None] * tcol[None, :] + (1.0 - alphas)[:, None] * ecol[None, :]
    return blend.max(axis=1)


def partition_pareto(
    total: int,
    models: Sequence[PerformanceModel],
    energy_models: Sequence[PerformanceModel],
    npoints: int = DEFAULT_FRONT_POINTS,
    tol: float = 1e-10,
    max_iter: int = 200,
    probes: int = 8,
    grid: int = 96,
    method: str = "fast",
    warm: bool = True,
    strict: bool = False,
    certs: Optional[List[ConvergenceCert]] = None,
    warm_start: Optional[WarmStart] = None,
) -> ParetoFront:
    """Sweep the (time, energy) trade-off into a :class:`ParetoFront`.

    Args:
        total: problem size ``D`` in computation units.
        models: per-rank time models (seconds).
        energy_models: per-rank energy models (joules), same length.
        npoints: scalarization weights swept, endpoints included.
        tol, max_iter, probes: bisection parameters, as in
            :func:`~repro.core.partition.geometric.partition_geometric`.
        grid: knots of the piecewise-linear surrogate per device
            (``method="fast"`` only).
        method: ``"fast"`` batches all interior alphas through one
            vectorized bisection on sampled blends; ``"exact"`` runs one
            :func:`partition_geometric` per alpha on exact
            :class:`BlendedModel` functions.  Endpoints are exact either
            way.
        warm: seed interior brackets from the solved endpoints (and
            point-to-point in ``"exact"`` mode).  Disabling only costs
            iterations -- results are bit-identical.
        strict: raise :class:`~repro.errors.ConvergenceError` if any
            front point fails to converge (default: warn).
        certs: optional sink collecting every point's cert.
        warm_start: optional external seed (e.g. a cached front point at
            a nearby total) for the time-endpoint solve.

    Returns:
        A :class:`ParetoFront`; its time-endpoint is bit-identical to
        ``partition_geometric(total, models)``.
    """
    total = validate_partition_inputs(total, models)
    validate_partition_inputs(total, energy_models)
    if len(models) != len(energy_models):
        raise PartitionError(
            f"{len(models)} time models for {len(energy_models)} energy models"
        )
    if not 2 <= npoints <= MAX_FRONT_POINTS:
        raise PartitionError(
            f"npoints must be within [2, {MAX_FRONT_POINTS}], got {npoints}"
        )
    if method not in ("fast", "exact"):
        raise PartitionError(f"unknown pareto method {method!r}")
    size = len(models)

    if total == 0:
        cert = ConvergenceCert("pareto", True, 0, max_iter, 0.0, tol,
                               "trivial: total is 0")
        point = ParetoPoint(
            sizes=(0,) * size, times=(0.0,) * size,
            time=0.0, energy=0.0, alpha=1.0, cert=cert,
        )
        if certs is not None:
            certs.append(cert)
        return ParetoFront(total=0, points=(point,))

    # --- exact endpoints -------------------------------------------------
    point_certs: List[ConvergenceCert] = []
    time_dist = partition_geometric(
        total, models, tol=tol, max_iter=max_iter, probes=probes,
        strict=strict, certs=point_certs,
        warm_start=warm_start if warm else None,
    )
    energy_dist = partition_geometric(
        total, energy_models, tol=tol, max_iter=max_iter, probes=probes,
        strict=strict, certs=point_certs,
    )

    def endpoint(dist, alpha: float, cert: ConvergenceCert) -> ParetoPoint:
        times, t, e = _evaluate_point(dist.sizes, models, energy_models)
        return ParetoPoint(
            sizes=tuple(dist.sizes), times=times, time=t, energy=e,
            alpha=alpha,
            cert=dataclass_replace(cert, algorithm="pareto",
                                   detail=(cert.detail + "; " if cert.detail
                                           else "") + f"alpha={alpha:g}"),
        )

    points: List[ParetoPoint] = [
        endpoint(time_dist, 1.0, point_certs[0]),
        endpoint(energy_dist, 0.0, point_certs[1]),
    ]

    # --- interior alphas -------------------------------------------------
    alphas = np.linspace(0.0, 1.0, npoints)[1:-1]
    if alphas.size and size > 1:
        t_scale, e_scale = _objective_scales(total, models, energy_models)
        if method == "exact":
            points.extend(_interior_exact(
                total, models, energy_models, alphas[::-1], t_scale, e_scale,
                tol, max_iter, probes, warm, strict, points[0],
            ))
        else:
            points.extend(_interior_fast(
                total, models, energy_models, alphas, t_scale, e_scale,
                tol, max_iter, probes, grid, warm, strict,
                points[0], points[1],
            ))
    elif alphas.size:
        # Single process: every alpha yields the same trivial distribution.
        pass

    if certs is not None:
        certs.extend(p.cert for p in points if p.cert is not None)

    # Integer rounding at an interior alpha can land on a distribution
    # that beats an *exact* endpoint solve by one unit's worth of noise;
    # honouring it would evict the endpoint from the front and break the
    # contract that ``points[0]`` is bit-identical to the time-only
    # partitioner.  Interior points are therefore confined to the open
    # band between the two exact endpoints.
    t_end, e_end = points[0], points[1]
    points = [t_end, e_end] + [
        p for p in points[2:]
        if p.time > t_end.time and p.energy > e_end.energy
    ]

    # --- dedup, dominance filter, sort -----------------------------------
    seen: Dict[Tuple[int, ...], ParetoPoint] = {}
    for p in points:  # endpoints first, so they win duplicates
        seen.setdefault(p.sizes, p)
    unique = list(seen.values())
    front = [
        p for p in unique
        if not any(
            (q.time <= p.time and q.energy <= p.energy
             and (q.time < p.time or q.energy < p.energy))
            for q in unique
        )
    ]
    front.sort(key=lambda p: (p.time, p.energy, -p.alpha))
    # Symmetric devices can yield distinct distributions with identical
    # objective values (mirror-image shares); keep one per value pair so
    # the front is strictly ordered in both objectives.
    pruned: List[ParetoPoint] = []
    for p in front:
        if pruned and pruned[-1].time == p.time and pruned[-1].energy == p.energy:
            continue
        pruned.append(p)
    return ParetoFront(total=total, points=tuple(pruned))


def _interior_exact(
    total: int,
    models: Sequence[PerformanceModel],
    energy_models: Sequence[PerformanceModel],
    alphas: np.ndarray,
    t_scale: float,
    e_scale: float,
    tol: float,
    max_iter: int,
    probes: int,
    warm: bool,
    strict: bool,
    seed_point: ParetoPoint,
) -> List[ParetoPoint]:
    """Sequential exact solves, each warm-started from its neighbor."""
    out: List[ParetoPoint] = []
    prev = seed_point  # alphas arrive descending, nearest the time end
    for alpha in alphas:
        blended = [
            BlendedModel(models[i], energy_models[i],
                         wt=float(alpha) / t_scale,
                         we=(1.0 - float(alpha)) / e_scale)
            for i in range(len(models))
        ]
        ws = None
        if warm and prev is not None:
            level = max(
                b.time(d) for b, d in zip(blended, prev.sizes) if d > 0
            )
            if level > 0.0:
                ws = WarmStart(total=total, level=level, sizes=prev.sizes)
        dist = partition_geometric(
            total, blended, tol=tol, max_iter=max_iter, probes=probes,
            strict=strict, warm_start=ws,
        )
        times, t, e = _evaluate_point(dist.sizes, models, energy_models)
        cert = dataclass_replace(
            dist.convergence, algorithm="pareto",
            detail=f"alpha={float(alpha):g} exact blend",
        )
        point = ParetoPoint(
            sizes=tuple(dist.sizes), times=times, time=t, energy=e,
            alpha=float(alpha), cert=cert,
        )
        out.append(point)
        prev = point
    return out


def _interior_fast(
    total: int,
    models: Sequence[PerformanceModel],
    energy_models: Sequence[PerformanceModel],
    alphas: np.ndarray,
    t_scale: float,
    e_scale: float,
    tol: float,
    max_iter: int,
    probes: int,
    grid: int,
    warm: bool,
    strict: bool,
    time_point: ParetoPoint,
    energy_point: ParetoPoint,
) -> List[ParetoPoint]:
    """All interior alphas through one batched bisection.

    Per-step inversion runs on piecewise-linear samplings of the blended
    cost functions (exact values at the knots), vectorized across every
    (alpha, probe level) pair; the integer result of each alpha is then
    re-evaluated on the *real* models, so reported objectives carry no
    surrogate error.
    """
    cap = float(total)
    K = alphas.size
    p = len(models)

    grids = [
        _grid_for(models[i], energy_models[i], cap, grid) for i in range(p)
    ]
    # Blended knot values per model: (K, M_i), increasing along axis 1.
    blends = []
    wt = alphas / t_scale
    we = (1.0 - alphas) / e_scale
    for X, tv, ev in grids:
        V = wt[:, None] * tv[None, :] + we[:, None] * ev[None, :]
        blends.append(np.maximum.accumulate(V, axis=1))

    lo = np.zeros(K)
    hi = np.min(np.stack([V[:, -1] for V in blends]), axis=0)

    def residuals_at(levels: np.ndarray) -> np.ndarray:
        total_alloc = np.zeros(levels.shape)
        for (X, _, _), V in zip(grids, blends):
            total_alloc += _invert_rows(X, V, levels, cap)
        return total_alloc - cap

    if warm:
        # Seed brackets from the exact endpoint solutions: the balanced
        # level of alpha_k sits near the blended cost of its neighbors'
        # distributions.  Candidates violating the bracketing invariant
        # are discarded, exactly like WarmStart hints.
        def norm_cols(point: ParetoPoint) -> Tuple[np.ndarray, np.ndarray]:
            tcol = np.asarray(point.times) / t_scale
            ecol = np.asarray([
                energy_models[i].time(d) if d > 0 else 0.0
                for i, d in enumerate(point.sizes)
            ]) / e_scale
            return tcol, ecol
        lt = _blended_level(time_point.sizes, alphas, *norm_cols(time_point))
        le = _blended_level(energy_point.sizes, alphas, *norm_cols(energy_point))
        lo_hint = np.minimum(lt, le)
        hi_hint = np.maximum(lt, le)
        cand = np.stack([
            0.9 * lo_hint, 0.995 * lo_hint, 1.005 * hi_hint, 1.2 * hi_hint,
        ], axis=1)
        cand = np.clip(cand, 0.0, hi[:, None])
        res = residuals_at(cand)
        neg = (res < 0.0) & (cand > lo[:, None])
        pos = (res >= 0.0) & (cand < hi[:, None]) & (cand > 0.0)
        j = neg.shape[1] - 1 - np.argmax(neg[:, ::-1], axis=1)
        has_neg = neg.any(axis=1)
        lo = np.where(has_neg, np.take_along_axis(cand, j[:, None], 1)[:, 0], lo)
        j = np.argmax(pos, axis=1)
        has_pos = pos.any(axis=1)
        hi = np.where(has_pos, np.take_along_axis(cand, j[:, None], 1)[:, 0], hi)

    fractions = np.arange(1, probes + 1) / (probes + 1.0)
    iterations = 0
    tol_k = tol * np.maximum.reduce([np.ones(K), np.abs(lo), np.abs(hi)])
    for _ in range(max_iter):
        tol_k = tol * np.maximum.reduce([np.ones(K), np.abs(lo), np.abs(hi)])
        open_k = (hi - lo) > tol_k
        if not open_k.any():
            break
        iterations += 1
        levels = lo[:, None] + (hi - lo)[:, None] * fractions[None, :]
        res = residuals_at(levels)
        ge = res >= 0.0
        has = ge.any(axis=1)
        j = np.where(has, ge.argmax(axis=1), probes)
        jc = np.clip(j, 0, probes - 1)
        new_hi = np.take_along_axis(levels, jc[:, None], 1)[:, 0]
        hi = np.where(open_k & (j < probes), new_hi, hi)
        jl = np.clip(j - 1, 0, probes - 1)
        new_lo = np.take_along_axis(levels, jl[:, None], 1)[:, 0]
        lo = np.where(open_k & (j > 0), new_lo, lo)

    converged = (hi - lo) <= tol_k
    level = 0.5 * (lo + hi)
    shares = np.zeros((p, K))
    for i, ((X, _, _), V) in enumerate(zip(grids, blends)):
        shares[i] = _invert_rows(X, V, level[:, None], cap)[:, 0]

    out: List[ParetoPoint] = []
    sizes_mat = np.zeros((K, p), dtype=int)
    for k in range(K):
        sizes_mat[k] = round_preserving_sum(
            [float(s) for s in shares[:, k]], total
        )
    # Exact objective evaluation on the real models, batched per rank.
    times_mat = np.zeros((K, p))
    energy_mat = np.zeros((K, p))
    for i in range(p):
        col = sizes_mat[:, i].astype(float)
        times_mat[:, i] = models[i].time_batch(col)
        energy_mat[:, i] = energy_models[i].time_batch(col)
    for k in range(K):
        cert = ConvergenceCert(
            algorithm="pareto",
            converged=bool(converged[k]),
            iterations=iterations,
            max_iter=max_iter,
            residual=float(hi[k] - lo[k]),
            tolerance=float(tol_k[k]),
            detail=f"alpha={float(alphas[k]):g} batched sweep",
        )
        if not cert.converged:
            if strict:
                raise ConvergenceError(cert.summary(), cert=cert)
            warnings.warn(cert.summary(), ConvergenceWarning, stacklevel=3)
        out.append(ParetoPoint(
            sizes=tuple(int(d) for d in sizes_mat[k]),
            times=tuple(float(t) for t in times_mat[k]),
            time=float(times_mat[k].max()),
            energy=float(energy_mat[k].sum()),
            alpha=float(alphas[k]),
            cert=cert,
        ))
    return out
