"""Convergence certification for the iterative partitioners.

The partitioning algorithms are iterative: geometric bisection on the
equal-time level, Newton iteration on the equal-time system, the dynamic
benchmark-refine-repartition loop, and the distributed protocol.  Each of
them has an iteration cap, and before this module existed, exhausting the
cap silently returned the last iterate -- callers could not tell a
certified optimum from a best-effort guess.

A :class:`ConvergenceCert` is the typed answer: every iterative
partitioner now attaches one to the :class:`~repro.core.partition.dist.
Distribution` it returns (as the ``convergence`` attribute) and offers a
``cert`` sink argument for callers that want the whole history.  On cap
exhaustion the algorithms either raise
:class:`~repro.errors.ConvergenceError` (``strict=True``) or emit a
:class:`~repro.errors.ConvergenceWarning` and return the uncertified
iterate (``strict=False``, the default -- existing callers keep working,
but the failure is no longer silent).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConvergenceError, ConvergenceWarning


@dataclass(frozen=True)
class ConvergenceCert:
    """Evidence of how an iterative partitioning run ended.

    Attributes:
        algorithm: which algorithm produced the result (``"geometric"``,
            ``"numerical"``, ``"dynamic"``, ``"distributed"``,
            ``"basic"``).
        converged: whether the stopping criterion was met before the
            iteration cap.
        iterations: iterations actually performed.
        max_iter: the iteration cap in force.
        residual: the final error measure -- bracket width for the
            bisection, residual norm for Newton, largest relative share
            change for the dynamic loops (0.0 for non-iterative
            algorithms).
        tolerance: the stopping tolerance the residual is compared to.
        detail: human-readable specifics (solver fallbacks, exact hits).
    """

    algorithm: str
    converged: bool
    iterations: int
    max_iter: int
    residual: float
    tolerance: float
    detail: str = ""

    def to_dict(self) -> Dict:
        """JSON-friendly representation (floats via ``repr`` for fidelity)."""
        return {
            "algorithm": self.algorithm,
            "converged": self.converged,
            "iterations": self.iterations,
            "max_iter": self.max_iter,
            "residual": repr(self.residual),
            "tolerance": repr(self.tolerance),
            "detail": self.detail,
        }

    def summary(self) -> str:
        """One-line human summary."""
        state = "converged" if self.converged else "NOT converged"
        return (
            f"{self.algorithm}: {state} after {self.iterations}/{self.max_iter} "
            f"iterations (residual {self.residual:.3g}, tol {self.tolerance:.3g})"
            + (f" -- {self.detail}" if self.detail else "")
        )


def certify(
    dist,
    cert: ConvergenceCert,
    strict: bool,
    sink: Optional[List[ConvergenceCert]] = None,
):
    """Attach ``cert`` to ``dist`` and enforce the strictness contract.

    The shared tail of every iterative partitioner: the cert is attached
    to the distribution as ``dist.convergence`` and appended to the
    optional ``sink``; a non-converged cert raises
    :class:`~repro.errors.ConvergenceError` under ``strict`` and warns
    (:class:`~repro.errors.ConvergenceWarning`) otherwise.

    Returns ``dist`` for tail-call convenience.
    """
    dist.convergence = cert
    if sink is not None:
        sink.append(cert)
    if not cert.converged:
        if strict:
            raise ConvergenceError(cert.summary(), cert=cert, partial=dist)
        warnings.warn(cert.summary(), ConvergenceWarning, stacklevel=3)
    return dist
