"""Batched model evaluation helpers shared by the partitioners.

The partitioning algorithms repeatedly evaluate *p* per-process time
functions.  These helpers funnel those evaluations through
:meth:`~repro.core.models.base.PerformanceModel.time_batch` so each model
is entered once per step with an array, instead of once per point:

* :func:`model_times` -- ``times[i] = models[i].time(sizes[i])`` with
  evaluations grouped per distinct model instance (hierarchical setups
  share one aggregate model across several ranks, which then costs a
  single vectorized call);
* :func:`allocations_at_levels` -- the inner operation of the geometrical
  algorithm: every model's allocation at every probed time level, with
  optional per-model bracket caching.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.models.base import PerformanceModel


def model_times(
    models: Sequence[PerformanceModel], sizes: Sequence[float]
) -> np.ndarray:
    """Evaluate ``models[i].time(sizes[i])`` for all ``i`` in batches.

    Sizes are clamped at zero (solver iterates may step slightly
    negative).  Evaluations are grouped by model instance, so ranks that
    share a model contribute one ``time_batch`` call, not one ``time``
    call each.
    """
    if len(models) != len(sizes):
        raise ValueError(f"{len(models)} models for {len(sizes)} sizes")
    xs = np.maximum(np.asarray(sizes, dtype=float), 0.0)
    out = np.empty(xs.shape)
    groups: dict = {}
    for i, model in enumerate(models):
        groups.setdefault(id(model), (model, []))[1].append(i)
    for model, indices in groups.values():
        if len(indices) == 1:
            out[indices[0]] = model.time(float(xs[indices[0]]))
        else:
            idx = np.asarray(indices)
            out[idx] = model.time_batch(xs[idx])
    return out


def allocations_at_levels(
    models: Sequence[PerformanceModel],
    levels: np.ndarray,
    cap: float,
    lo: Optional[np.ndarray] = None,
    hi: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Allocation of every model at every time level, as a (p, m) array.

    ``allocations[i, j]`` is the size at which ``models[i]``'s time
    function reaches ``levels[j]``, clamped to ``[0, cap]``.  ``lo`` and
    ``hi`` (per-model scalars, shape ``(p,)``) optionally bound the search
    bracket; the geometrical partitioner feeds back the allocations found
    at the bracketing levels of the previous step, which bound every
    interior allocation by monotonicity.
    """
    levels = np.atleast_1d(np.asarray(levels, dtype=float))
    out = np.empty((len(models), levels.size))
    for i, model in enumerate(models):
        out[i] = model.allocation_batch(
            levels,
            cap,
            lo=None if lo is None else lo[i],
            hi=None if hi is None else hi[i],
        )
    return out


__all__ = ["model_times", "allocations_at_levels"]
