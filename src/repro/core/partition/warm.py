"""Warm starts for the iterative partitioners.

The serving layer (:mod:`repro.serve`) answers near-identical partition
requests over and over: the same fitted models, queried at a sequence of
nearby totals.  The solution of one request is an excellent *seed* for the
next -- the equal-time level ``T`` of the geometrical algorithm scales
almost proportionally with the total, and the per-process shares scale
with it.

A :class:`WarmStart` packages that seed: the source plan's total, its
equal-time level (the predicted makespan) and its integer shares.  The
iterative partitioners accept one through their ``warm_start`` parameter
and use it only to *narrow the initial search bracket* -- never to change
the stopping criterion or the rounding -- so a warm-started solve
converges to the same distribution a cold solve finds, in fewer (or at
worst equally many) iterations.  That invariant is what lets the plan
cache substitute warm results for cold ones bit-for-bit; the parity suite
(``tests/test_serve_warm_parity.py``) enforces it for every registered
partitioner and model family.

A hint that turns out to be wrong (e.g. from unrelated models) cannot
produce a wrong answer: bracket candidates are validated against the
bisection invariant before they replace the cold bracket ends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import PartitionError


@dataclass(frozen=True)
class WarmStart:
    """A previously solved plan, offered as a seed for a nearby request.

    Attributes:
        total: the source plan's problem size ``D`` in computation units.
        level: the source plan's equal-time level ``T`` in seconds
            (its predicted makespan).
        sizes: the source plan's integer per-process shares.
    """

    total: int
    level: float
    sizes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.total <= 0:
            raise PartitionError(
                f"warm start needs a positive source total, got {self.total}"
            )
        if not self.level > 0.0:
            raise PartitionError(
                f"warm start needs a positive level, got {self.level}"
            )
        if any(d < 0 for d in self.sizes):
            raise PartitionError(
                f"warm start sizes must be non-negative: {list(self.sizes)}"
            )

    def scaled_level(self, total: int) -> float:
        """The equal-time level hint for a problem of size ``total``.

        First-order scaling: the level grows proportionally with the
        total (exact for constant-speed models, a good bracket centre for
        any FPM shape).
        """
        return self.level * float(total) / float(self.total)

    def scaled_sizes(self, total: int) -> List[float]:
        """Continuous per-process shares rescaled to sum to ``total``."""
        src = float(sum(self.sizes))
        if src <= 0.0:
            n = max(len(self.sizes), 1)
            return [float(total) / n] * len(self.sizes)
        return [d * float(total) / src for d in self.sizes]


def warm_start_from(dist, total: int = 0) -> WarmStart:
    """Extract a :class:`WarmStart` from a solved distribution.

    Args:
        dist: a :class:`~repro.core.partition.dist.Distribution` with
            model-predicted part times (any partitioner output).
        total: override for the source total (defaults to ``dist.total``).

    Raises:
        PartitionError: if the distribution carries no positive predicted
            time (a warm start needs a level to scale).
    """
    src_total = total if total > 0 else dist.total
    level = max((p.t for p in dist.parts), default=0.0)
    if not level > 0.0:
        raise PartitionError(
            "cannot derive a warm start: distribution has no positive "
            "predicted time"
        )
    return WarmStart(
        total=src_total, level=level, sizes=tuple(p.d for p in dist.parts)
    )


def warm_bracket(
    warm: WarmStart,
    total: int,
    models: Sequence,
    cap: float,
    t_hi: float,
):
    """Shrink the geometric bisection's initial bracket using a warm hint.

    Probes a small batch of candidate levels around the scaled hint (one
    :func:`~repro.core.partition.batch.allocations_at_levels` call) and
    keeps the tightest pair that preserves the bisection invariant
    ``excess(lo) < 0 <= excess(hi)``.  Candidates that violate it are
    simply discarded, so a misleading hint degrades to the cold bracket
    rather than to a wrong answer.

    Returns:
        ``(lo, hi, alloc_lo, alloc_hi)`` -- the (possibly) narrowed
        bracket and the per-model allocations at its ends.
    """
    import numpy as np

    from repro.core.partition.batch import allocations_at_levels

    size = len(models)
    lo, hi = 0.0, t_hi
    alloc_lo = np.zeros(size)
    alloc_hi = np.full(size, cap)
    t_est = warm.scaled_level(total)
    if not (0.0 < t_est < t_hi):
        return lo, hi, alloc_lo, alloc_hi
    # A tight pair around the hint plus looser guards; sorted and unique.
    candidates = np.unique(np.clip(
        np.asarray([0.5 * t_est, 0.95 * t_est, 1.05 * t_est, 2.0 * t_est]),
        0.0, t_hi,
    ))
    candidates = candidates[(candidates > 0.0) & (candidates < t_hi)]
    if candidates.size == 0:
        return lo, hi, alloc_lo, alloc_hi
    allocs = allocations_at_levels(models, candidates, cap, alloc_lo, alloc_hi)
    residuals = allocs.sum(axis=0) - cap
    for j in range(candidates.size):
        level = float(candidates[j])
        if residuals[j] < 0.0 and level > lo:
            lo = level
            alloc_lo = allocs[:, j]
        elif residuals[j] >= 0.0 and level < hi:
            hi = level
            alloc_hi = allocs[:, j]
            break  # candidates are sorted; later ones are looser
    return lo, hi, alloc_lo, alloc_hi
