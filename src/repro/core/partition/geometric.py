"""The geometrical partitioning algorithm (Lastovetsky--Reddy, ref. [10]).

Optimal partitioning balances execution times: ``t_1(x_1) = ... = t_p(x_p)``
with ``x_1 + ... + x_p = D``.  Geometrically, the optimum is found by
bisecting the space of *lines through the origin* of the (size, speed)
plane: the line of slope ``k`` intersects processor ``i``'s speed curve at
the unique size ``x_i`` where ``s_i(x_i) = k x_i`` -- which is exactly where
the execution time ``t_i(x_i) = x_i / s_i(x_i)`` equals ``1/k``.  The
algorithm therefore bisects on the common time level ``T = 1/k``:

1. bracket ``T`` between 0 (all allocations zero) and the time the *fastest
   possible* single process would need for all of ``D``;
2. at each step, invert every (strictly increasing) time function at ``T``
   to get the allocations ``x_i(T)``;
3. narrow the bracket until ``sum x_i(T) = D``.

Convergence is guaranteed by the FPM shape restrictions, which the
piecewise model enforces by coarsening: each time function is strictly
increasing, so each ``x_i(T)`` is monotone in ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.errors import PartitionError
from repro.solver.bisect import bisect_monotone_inverse, bisect_root


@dataclass(frozen=True)
class BisectionStep:
    """One bisection step of the geometrical algorithm.

    In the paper's picture (Fig. 3) each step is a *line through the
    origin* of the (size, speed) plane; its slope is ``1 / level`` because
    the ray of slope ``k`` crosses a speed curve where the execution time
    is ``1/k``.

    Attributes:
        level: the probed common execution time ``T`` (seconds).
        slope: the corresponding line slope in speed space (``1 / T``).
        allocations: continuous per-process sizes at this level.
        excess: ``sum(allocations) - total`` -- the bisection residual.
    """

    level: float
    slope: float
    allocations: List[float]
    excess: float


def _allocation_at(model: PerformanceModel, level: float, total: int) -> float:
    """Size at which the model's time function reaches ``level``.

    Clamped to ``[0, total]``: no process can be assigned more than the
    whole problem.
    """
    if level <= 0.0:
        return 0.0
    if model.time(total) <= level:
        return float(total)
    # Sub-unit precision is enough: allocations are rounded to integers.
    x = bisect_monotone_inverse(
        model.time, level, 0.0, float(total), tol=1e-9, expand=False
    )
    return min(max(x, 0.0), float(total))


def partition_geometric(
    total: int,
    models: Sequence[PerformanceModel],
    tol: float = 1e-10,
    max_iter: int = 200,
    trace: Optional[List[BisectionStep]] = None,
) -> Distribution:
    """Partition ``total`` units by bisection on the equal-time level.

    Args:
        total: the problem size ``D`` in computation units.
        models: one performance model per process; their time functions
            should be (close to) strictly increasing.  The piecewise FPM
            guarantees this by coarsening.
        tol: relative tolerance on the bisection bracket.
        max_iter: maximum bisection steps.
        trace: optional list; when given, every probed level is appended as
            a :class:`BisectionStep` (the "lines" of the paper's Fig. 3).

    Returns:
        A :class:`Distribution` summing exactly to ``total``.
    """
    if total < 0:
        raise PartitionError(f"total must be non-negative, got {total}")
    if not models:
        raise PartitionError("need at least one model")
    size = len(models)
    if total == 0:
        return Distribution(Part(0, 0.0) for _ in range(size))
    if size == 1:
        return Distribution([Part(total, models[0].time(total))])

    # Upper bracket: the time level at which allocations certainly cover D
    # is at most the smallest single-process time for the whole problem
    # (at that level one process alone would absorb everything).
    t_hi = min(model.time(total) for model in models)
    if t_hi <= 0.0:
        raise PartitionError("models predict non-positive time for the total size")

    def excess(level: float) -> float:
        allocations = [_allocation_at(m, level, total) for m in models]
        residual = sum(allocations) - float(total)
        if trace is not None and level > 0.0:
            trace.append(
                BisectionStep(
                    level=level,
                    slope=1.0 / level,
                    allocations=allocations,
                    excess=residual,
                )
            )
        return residual

    # excess(0) = -D < 0; excess(t_hi) >= 0 because at t_hi the fastest
    # process alone reaches D.
    level = bisect_root(excess, 0.0, t_hi, tol=tol, max_iter=max_iter)
    shares: List[float] = [_allocation_at(m, level, total) for m in models]
    sizes = round_preserving_sum(shares, total)
    return Distribution(
        Part(d, models[i].time(d) if d > 0 else 0.0) for i, d in enumerate(sizes)
    )
