"""The geometrical partitioning algorithm (Lastovetsky--Reddy, ref. [10]).

Optimal partitioning balances execution times: ``t_1(x_1) = ... = t_p(x_p)``
with ``x_1 + ... + x_p = D``.  Geometrically, the optimum is found by
bisecting the space of *lines through the origin* of the (size, speed)
plane: the line of slope ``k`` intersects processor ``i``'s speed curve at
the unique size ``x_i`` where ``s_i(x_i) = k x_i`` -- which is exactly where
the execution time ``t_i(x_i) = x_i / s_i(x_i)`` equals ``1/k``.  The
algorithm therefore bisects on the common time level ``T = 1/k``:

1. bracket ``T`` between 0 (all allocations zero) and the time the *fastest
   possible* single process would need for all of ``D``;
2. at each step, invert every (strictly increasing) time function at ``T``
   to get the allocations ``x_i(T)``;
3. narrow the bracket until ``sum x_i(T) = D``.

Convergence is guaranteed by the FPM shape restrictions, which the
piecewise model enforces by coarsening: each time function is strictly
increasing, so each ``x_i(T)`` is monotone in ``T``.

The hot path is batched.  Each step probes ``probes`` interior levels at
once (multi-section: the bracket shrinks by ``probes + 1`` per step instead
of 2), and every model inverts the whole batch in a single
:meth:`~repro.core.models.base.PerformanceModel.allocation_batch` call.
The allocations found at the bracketing levels are carried to the next
step: by monotonicity of ``x_i(T)`` they bound every interior allocation,
so each model's inner search starts from an already tight bracket instead
of ``[0, D]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.core.partition.batch import allocations_at_levels
from repro.core.partition.cert import ConvergenceCert, certify
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.core.partition.validate import validate_partition_inputs
from repro.core.partition.warm import WarmStart, warm_bracket
from repro.errors import PartitionError


@dataclass(frozen=True)
class BisectionStep:
    """One probed level of the geometrical algorithm.

    In the paper's picture (Fig. 3) each step is a *line through the
    origin* of the (size, speed) plane; its slope is ``1 / level`` because
    the ray of slope ``k`` crosses a speed curve where the execution time
    is ``1/k``.

    Attributes:
        level: the probed common execution time ``T`` (seconds).
        slope: the corresponding line slope in speed space (``1 / T``).
        allocations: continuous per-process sizes at this level.
        excess: ``sum(allocations) - total`` -- the bisection residual.
    """

    level: float
    slope: float
    allocations: List[float]
    excess: float


def partition_geometric(
    total: int,
    models: Sequence[PerformanceModel],
    tol: float = 1e-10,
    max_iter: int = 200,
    trace: Optional[List[BisectionStep]] = None,
    probes: int = 8,
    strict: bool = False,
    certs: Optional[List[ConvergenceCert]] = None,
    warm_start: Optional[WarmStart] = None,
) -> Distribution:
    """Partition ``total`` units by bisection on the equal-time level.

    Args:
        total: the problem size ``D`` in computation units.
        models: one performance model per process; their time functions
            should be (close to) strictly increasing.  The piecewise FPM
            guarantees this by coarsening.
        tol: relative tolerance on the bisection bracket.
        max_iter: maximum bisection steps.
        trace: optional list; when given, every probed level is appended as
            a :class:`BisectionStep` (the "lines" of the paper's Fig. 3).
        probes: interior levels probed per step; each step shrinks the
            bracket by ``probes + 1``.
        strict: raise :class:`~repro.errors.ConvergenceError` when the
            bisection exhausts ``max_iter`` without closing the bracket.
            With ``strict=False`` (default) the midpoint partition is still
            returned, annotated with a non-converged cert, and a
            :class:`~repro.errors.ConvergenceWarning` is emitted.
        certs: optional sink; the run's :class:`ConvergenceCert` is
            appended to it (and always attached to the returned
            distribution as ``.convergence``).
        warm_start: optional :class:`~repro.core.partition.warm.WarmStart`
            from a previously solved nearby plan.  Used only to narrow
            the *initial* bracket (the stopping criterion and rounding
            are untouched), so the result is identical to a cold solve
            with fewer -- never more -- bisection iterations.  A
            misleading hint is discarded, not trusted.

    Returns:
        A :class:`Distribution` summing exactly to ``total``.
    """
    total = validate_partition_inputs(total, models)
    if probes < 1:
        raise PartitionError(f"probes must be >= 1, got {probes}")
    size = len(models)
    if total == 0:
        return certify(
            Distribution(Part(0, 0.0) for _ in range(size)),
            ConvergenceCert("geometric", True, 0, max_iter, 0.0, tol,
                            "trivial: total is 0"),
            strict, certs,
        )
    if size == 1:
        return certify(
            Distribution([Part(total, models[0].time(total))]),
            ConvergenceCert("geometric", True, 0, max_iter, 0.0, tol,
                            "trivial: single process"),
            strict, certs,
        )

    # Upper bracket: the time level at which allocations certainly cover D
    # is at most the smallest single-process time for the whole problem
    # (at that level one process alone would absorb everything).
    t_hi = min(model.time(total) for model in models)
    if t_hi <= 0.0:
        raise PartitionError("models predict non-positive time for the total size")

    cap = float(total)

    def record(level: float, allocations: np.ndarray, residual: float) -> None:
        if trace is not None and level > 0.0:
            trace.append(
                BisectionStep(
                    level=level,
                    slope=1.0 / level,
                    allocations=[float(a) for a in allocations],
                    excess=residual,
                )
            )

    # Invariant: excess(lo) < 0 <= excess(hi).  excess(0) = -D, and at
    # t_hi the fastest process alone reaches D.  alloc_lo/alloc_hi are the
    # per-model allocations at the bracketing levels; they bound every
    # allocation probed inside the bracket (x_i(T) is monotone in T).
    if warm_start is not None:
        lo, hi, alloc_lo, alloc_hi = warm_bracket(
            warm_start, total, models, cap, t_hi
        )
    else:
        lo, hi = 0.0, t_hi
        alloc_lo = np.zeros(size)
        alloc_hi = np.full(size, cap)
    level: Optional[float] = None
    exact: Optional[np.ndarray] = None
    converged = False
    detail = ""
    iterations = 0
    fractions = np.arange(1, probes + 1) / (probes + 1.0)
    for _ in range(max_iter):
        if hi - lo <= tol * max(1.0, abs(lo), abs(hi)):
            converged = True
            break
        iterations += 1
        levels = lo + (hi - lo) * fractions
        allocs = allocations_at_levels(models, levels, cap, alloc_lo, alloc_hi)
        residuals = allocs.sum(axis=0) - cap
        for j in range(levels.size):
            record(float(levels[j]), allocs[:, j], float(residuals[j]))
        hit = np.flatnonzero(residuals == 0.0)
        if hit.size:
            level = float(levels[hit[0]])
            exact = allocs[:, hit[0]]
            converged = True
            detail = "exact zero-residual level hit"
            break
        j = int(np.searchsorted(residuals > 0.0, True))
        if j < levels.size:
            hi = float(levels[j])
            alloc_hi = allocs[:, j]
        if j > 0:
            lo = float(levels[j - 1])
            alloc_lo = allocs[:, j - 1]

    if level is None:
        level = 0.5 * (lo + hi)
        exact = allocations_at_levels(
            models, np.asarray([level]), cap, alloc_lo, alloc_hi
        )[:, 0]
        if not converged:
            detail = "iteration cap hit before the bracket closed"
    # The converged level is always the last trace entry, so the trace
    # ends with an (essentially) zero residual.
    record(level, exact, float(exact.sum()) - cap)
    shares: List[float] = [float(a) for a in exact]
    sizes = round_preserving_sum(shares, total)
    dist = Distribution(
        Part(d, models[i].time(d) if d > 0 else 0.0) for i, d in enumerate(sizes)
    )
    cert = ConvergenceCert(
        algorithm="geometric",
        converged=converged,
        iterations=iterations,
        max_iter=max_iter,
        residual=float(hi - lo),
        tolerance=tol * max(1.0, abs(lo), abs(hi)),
        detail=detail,
    )
    return certify(dist, cert, strict, certs)
