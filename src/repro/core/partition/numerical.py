"""The numerical partitioning algorithm (Rychkov et al., ref. [15]).

Solves the optimal-partitioning system directly with a multidimensional
solver:

    F_i(x) = t_i(x_i) - t_p(x_p) = 0      for i = 1 .. p-1
    F_p(x) = x_1 + ... + x_p - D  = 0

Works with smooth time functions of any shape; the Akima-spline FPM is the
intended input because it supplies the continuous derivative used in the
analytic Jacobian.  The solve chain is:

1. damped Newton (:func:`repro.solver.newton_system`) from the geometrical
   solution as the initial iterate, with the analytic Jacobian when models
   expose ``time_derivative``;
2. scipy's hybrid Powell method as a fallback;
3. the geometrical solution itself if both fail (the models may be too
   irregular for a root to exist).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np
from scipy import optimize as _sciopt

from repro.core.models.base import PerformanceModel
from repro.core.partition.batch import model_times
from repro.core.partition.cert import ConvergenceCert, certify
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.validate import validate_partition_inputs
from repro.core.partition.warm import WarmStart
from repro.solver.newton import newton_system


def _residual_factory(
    total: int, models: Sequence[PerformanceModel]
) -> Callable[[np.ndarray], np.ndarray]:
    p = len(models)

    def residual(x: np.ndarray) -> np.ndarray:
        # All p time evaluations of the Newton step in one batched call.
        times = model_times(models, x)
        out = np.empty(p)
        out[: p - 1] = times[: p - 1] - times[p - 1]
        out[p - 1] = float(np.sum(x)) - float(total)
        return out

    return residual


def _jacobian_factory(
    models: Sequence[PerformanceModel],
) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    if not all(hasattr(m, "time_derivative") for m in models):
        return None
    p = len(models)

    def jacobian(x: np.ndarray) -> np.ndarray:
        jac = np.zeros((p, p))
        derivs = np.asarray(
            [
                m.time_derivative(max(float(xi), 0.0))  # type: ignore[attr-defined]
                for m, xi in zip(models, x)
            ]
        )
        jac[: p - 1, : p - 1][np.diag_indices(p - 1)] = derivs[: p - 1]
        jac[: p - 1, p - 1] = -derivs[p - 1]
        jac[p - 1, :] = 1.0
        return jac

    return jacobian


def partition_numerical(
    total: int,
    models: Sequence[PerformanceModel],
    tol: float = 1e-9,
    max_iter: int = 100,
    strict: bool = False,
    certs: Optional[List[ConvergenceCert]] = None,
    warm_start: Optional[WarmStart] = None,
) -> Distribution:
    """Partition ``total`` units by solving the equal-time system.

    Args:
        total: the problem size ``D`` in computation units.
        models: one performance model per process.  Models exposing a
            ``time_derivative`` method (the Akima FPM) get an analytic
            Jacobian; others fall back to finite differences.
        tol: residual tolerance (seconds / units, mixed system).
        max_iter: Newton iteration cap.
        strict: raise :class:`~repro.errors.ConvergenceError` when both
            Newton and the hybrid-Powell fallback fail to converge.  With
            ``strict=False`` (default) the geometrical seed is returned,
            annotated with a non-converged cert, after a
            :class:`~repro.errors.ConvergenceWarning`.
        certs: optional sink for the run's :class:`ConvergenceCert` (also
            attached to the returned distribution as ``.convergence``).
        warm_start: optional :class:`~repro.core.partition.warm.WarmStart`
            from a nearby solved plan, forwarded to the geometrical seed
            solve.  The Newton phase then starts from the *same* iterate
            a cold run would use (the seed's integer shares), so the
            result is bit-identical to a cold solve; only the seed
            computation gets cheaper.

    Returns:
        A :class:`Distribution` summing exactly to ``total``.
    """
    total = validate_partition_inputs(total, models)
    size = len(models)
    if total == 0:
        return certify(
            Distribution(Part(0, 0.0) for _ in range(size)),
            ConvergenceCert("numerical", True, 0, max_iter, 0.0, tol,
                            "trivial: total is 0"),
            strict, certs,
        )
    if size == 1:
        return certify(
            Distribution([Part(total, models[0].time(total))]),
            ConvergenceCert("numerical", True, 0, max_iter, 0.0, tol,
                            "trivial: single process"),
            strict, certs,
        )

    seed = partition_geometric(total, models, warm_start=warm_start)
    x0 = np.asarray([float(p.d) for p in seed.parts])
    # Strictly interior start helps when a part was rounded to zero.
    x0 = np.maximum(x0, 1e-3)

    residual = _residual_factory(total, models)
    jacobian = _jacobian_factory(models)
    # Residual scale: a tolerance in absolute seconds would be meaningless
    # across problem scales, so normalise by the seed's makespan.
    scale = max(seed.predicted_makespan, 1e-12)
    abs_tol = tol * max(scale, 1.0)

    result = newton_system(
        residual,
        x0,
        jacobian=jacobian,
        tol=abs_tol,
        max_iter=max_iter,
        lower=[0.0] * size,
        upper=[float(total)] * size,
    )
    shares: Optional[List[float]] = None
    detail = "damped Newton with analytic Jacobian" if jacobian else "damped Newton"
    if result.converged:
        shares = [float(v) for v in result.x]
    else:
        sol = _sciopt.root(residual, x0, method="hybr")
        if sol.success and np.all(np.asarray(sol.x) >= -1e-9):
            x = np.clip(np.asarray(sol.x, dtype=float), 0.0, float(total))
            if abs(float(np.sum(x)) - total) <= max(1e-6 * total, 1e-6):
                shares = [float(v) for v in x]
                detail = "scipy hybrid-Powell fallback after Newton failed"
    if shares is None:
        # Both solvers failed: the geometrical solution is still a valid,
        # near-balanced distribution -- but no longer returned silently.
        cert = ConvergenceCert(
            algorithm="numerical",
            converged=False,
            iterations=result.iterations,
            max_iter=max_iter,
            residual=result.residual_norm,
            tolerance=abs_tol,
            detail="Newton and hybrid-Powell both failed; geometric seed returned",
        )
        return certify(seed, cert, strict, certs)
    sizes = round_preserving_sum(shares, total)
    times = model_times(models, [float(d) for d in sizes])
    dist = Distribution(
        Part(d, float(times[i]) if d > 0 else 0.0) for i, d in enumerate(sizes)
    )
    cert = ConvergenceCert(
        algorithm="numerical",
        converged=True,
        iterations=result.iterations,
        max_iter=max_iter,
        residual=result.residual_norm if result.converged else 0.0,
        tolerance=abs_tol,
        detail=detail,
    )
    return certify(dist, cert, strict, certs)
