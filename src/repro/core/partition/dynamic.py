"""Dynamic data partitioning and load balancing (refs. [11] and [6]).

Building a *full* functional model for the whole range of problem sizes can
cost more than it saves when an application runs only a few times.  The
dynamic algorithms instead estimate the models *partially*, only around the
problem sizes that actually matter, while the application (or a cheap
benchmark) is running:

* :class:`DynamicPartitioner` (``fupermod_partition_iterate``): starting
  from the even distribution, benchmark the kernel at the current per-rank
  sizes, add the points to the partial models, re-run the partitioning
  algorithm, and repeat until the distribution stabilises to a given
  accuracy ``eps``;
* :class:`LoadBalancer` (``fupermod_balance_iterate``): no extra
  benchmarking at all -- the timings of real application iterations feed
  the partial models, and the data is redistributed whenever the observed
  imbalance exceeds a threshold.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set

from repro.core.models.base import PerformanceModel
from repro.core.partition.cert import ConvergenceCert
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.core.partition.validate import validate_total
from repro.core.point import MeasurementPoint
from repro.errors import ConvergenceError, ConvergenceWarning, PartitionError

#: A partitioning algorithm: ``(total, models) -> Distribution``.
PartitionFunction = Callable[[int, Sequence[PerformanceModel]], Distribution]

#: A group measurement: ``sizes -> points`` (None for idle ranks), as
#: provided by :meth:`repro.core.benchmark.PlatformBenchmark.measure_group`.
MeasureFunction = Callable[[Sequence[Optional[int]]], Sequence[Optional[MeasurementPoint]]]


@dataclass(frozen=True)
class DynamicResult:
    """Trace of a dynamic partitioning run.

    Attributes:
        distributions: the distribution after each iteration (the last one
            is the final answer).
        converged: whether the accuracy criterion was met within the
            iteration cap.
        iterations: number of benchmark+repartition iterations performed.
        total_cost: kernel-seconds spent on all benchmark measurements.
        points_per_rank: how many experimental points each partial model
            accumulated (compare with a full model sweep to see the saving).
        cert: the :class:`~repro.core.partition.ConvergenceCert` for the
            outer refine-repartition loop (None for legacy constructions).
    """

    distributions: List[Distribution]
    converged: bool
    iterations: int
    total_cost: float
    points_per_rank: List[int]
    cert: Optional[ConvergenceCert] = None

    @property
    def final(self) -> Distribution:
        """The final distribution."""
        return self.distributions[-1]


class DynamicPartitioner:
    """Iterative partitioning with partial model estimation (ref. [11]).

    Args:
        partition: the partitioning algorithm to run on the partial models
            (typically :func:`~repro.core.partition.partition_geometric`
            with piecewise FPMs, per the paper's Fig. 3).
        models: fresh (empty) performance models, one per rank.
        total: problem size ``D`` in computation units.
        measure: group measurement callable; sizes in, points out.
        eps: accuracy -- stop when the largest per-rank size change,
            relative to the even share, falls below this.
        max_iterations: safety cap on iterations.
        strict: raise :class:`~repro.errors.ConvergenceError` when
            :meth:`run` exhausts ``max_iterations`` without the
            distribution stabilising; with ``strict=False`` (default) a
            :class:`~repro.errors.ConvergenceWarning` is emitted and the
            last distribution is returned with a non-converged cert.
        initial: optional warm-start distribution to begin from instead
            of the even split (e.g. a cached plan from a previous run of
            the same application); a good seed means the first benchmark
            already probes near-final sizes and the loop stabilises in
            fewer iterations.
    """

    def __init__(
        self,
        partition: PartitionFunction,
        models: Sequence[PerformanceModel],
        total: int,
        measure: MeasureFunction,
        eps: float = 0.05,
        max_iterations: int = 25,
        strict: bool = False,
        initial: Optional[Distribution] = None,
    ) -> None:
        total = validate_total(total)
        if not models:
            raise PartitionError("need at least one model")
        if eps <= 0.0:
            raise PartitionError(f"eps must be positive, got {eps}")
        if max_iterations < 1:
            raise PartitionError(f"max_iterations must be >= 1, got {max_iterations}")
        self.partition = partition
        self.models = list(models)
        self.total = total
        self.measure = measure
        self.eps = eps
        self.max_iterations = max_iterations
        self.strict = strict
        if initial is not None:
            if initial.size != len(self.models):
                raise PartitionError(
                    f"initial distribution has {initial.size} parts for "
                    f"{len(self.models)} models"
                )
            if initial.total != total:
                raise PartitionError(
                    f"initial distribution totals {initial.total}, "
                    f"expected {total}"
                )
            self.dist = initial
        else:
            self.dist = Distribution.even(total, len(self.models))
        self.total_cost = 0.0

    def iterate(self) -> Distribution:
        """One step: benchmark at the current sizes, refine, re-partition.

        Ranks whose current share is zero are still probed at one unit when
        their model has no points yet, so every model stays usable by the
        partitioning algorithm.

        Model updates are O(1) record-keeping: the refit is deferred until
        the partitioning algorithm evaluates the model, so each iteration
        pays exactly one (lazy) rebuild per touched model no matter how
        many points it contributed.
        """
        sizes: List[Optional[int]] = []
        for rank, part in enumerate(self.dist.parts):
            if part.d > 0:
                sizes.append(part.d)
            elif not self.models[rank].is_ready:
                sizes.append(1)
            else:
                sizes.append(None)
        points = self.measure(sizes)
        for model, point in zip(self.models, points):
            if point is not None:
                model.update(point)
                self.total_cost += point.benchmark_cost
        self.dist = self.partition(self.total, self.models)
        return self.dist

    def run(self) -> DynamicResult:
        """Iterate until the distribution stabilises (or the cap is hit).

        Hitting the cap is never silent: the result carries a
        non-converged :class:`~repro.core.partition.ConvergenceCert`, a
        :class:`~repro.errors.ConvergenceWarning` is emitted -- or, with
        ``strict=True``, a :class:`~repro.errors.ConvergenceError` is
        raised carrying the last distribution as ``partial``.
        """
        trace: List[Distribution] = []
        converged = False
        previous = self.dist
        iterations = 0
        change = float("inf")
        for iterations in range(1, self.max_iterations + 1):
            current = self.iterate()
            trace.append(current)
            change = current.max_relative_change(previous)
            if change <= self.eps:
                converged = True
                break
            previous = current
        cert = ConvergenceCert(
            algorithm="dynamic",
            converged=converged,
            iterations=iterations,
            max_iter=self.max_iterations,
            residual=change,
            tolerance=self.eps,
            detail="" if converged else
            "iteration cap hit before the distribution stabilised",
        )
        if not converged:
            if self.strict:
                raise ConvergenceError(cert.summary(), cert=cert,
                                       partial=self.dist)
            warnings.warn(cert.summary(), ConvergenceWarning, stacklevel=2)
        return DynamicResult(
            distributions=trace,
            converged=converged,
            iterations=iterations,
            total_cost=self.total_cost,
            points_per_rank=[m.count for m in self.models],
            cert=cert,
        )


@dataclass(frozen=True)
class BalanceStep:
    """One load-balancing step: what was observed and what was decided.

    Attributes:
        iteration: application iteration number (1-based).
        sizes: per-rank sizes the iteration ran with.
        times: per-rank observed times of the iteration.
        imbalance: relative imbalance ``(t_max - t_min) / t_max`` observed.
        rebalanced: whether a new distribution was computed.
        new_sizes: per-rank sizes for the next iteration.
    """

    iteration: int
    sizes: List[int]
    times: List[float]
    imbalance: float
    rebalanced: bool
    new_sizes: List[int]


class LoadBalancer:
    """Dynamic load balancing from real iteration timings (ref. [6]).

    The application times each of its iterations and calls
    :meth:`iterate`; the balancer feeds the observations into partial
    models and repartitions when the imbalance is worth acting on.

    Args:
        partition: the partitioning algorithm for the partial models.
        models: fresh performance models, one per rank.
        total: problem size ``D`` in computation units.
        threshold: rebalance when observed imbalance exceeds this.
        initial: starting distribution (defaults to even).
        report: optional :class:`~repro.faults.ResilienceReport`; every
            convergence certificate the partitioner attaches to its
            result is recorded there (uncertified rebalances become
            ``PartitionUncertified`` events instead of vanishing).
    """

    def __init__(
        self,
        partition: PartitionFunction,
        models: Sequence[PerformanceModel],
        total: int,
        threshold: float = 0.05,
        initial: Optional[Distribution] = None,
        report=None,
    ) -> None:
        total = validate_total(total)
        if not models:
            raise PartitionError("need at least one model")
        if threshold < 0.0:
            raise PartitionError(f"threshold must be non-negative, got {threshold}")
        self.partition = partition
        self.models = list(models)
        self.total = total
        self.threshold = threshold
        self.dist = initial if initial is not None else Distribution.even(total, len(models))
        if self.dist.size != len(self.models):
            raise PartitionError(
                f"initial distribution has {self.dist.size} parts for "
                f"{len(self.models)} models"
            )
        self.history: List[BalanceStep] = []
        self.report = report
        self.certs: List[ConvergenceCert] = []
        self._iteration = 0
        self._excluded: Set[int] = set()

    @property
    def excluded(self) -> List[int]:
        """Ranks permanently quarantined from balancing, sorted."""
        return sorted(self._excluded)

    @property
    def survivors(self) -> List[int]:
        """Ranks still participating in balancing, sorted."""
        return [r for r in range(self.dist.size) if r not in self._excluded]

    def quarantine(self, rank: int) -> Distribution:
        """Permanently exclude ``rank``; its workload moves to survivors.

        Used by the resilient application runtimes when a device crashes
        or exhausts its failure budget mid-run.  If every surviving model
        is ready, the partitioner re-runs over the survivors; otherwise
        the dead rank's share is redistributed in proportion to the
        survivors' current shares (the best information available before
        the models have enough points).

        Returns:
            The new distribution (zero at every excluded rank).
        """
        if not 0 <= rank < self.dist.size:
            raise PartitionError(
                f"rank {rank} out of range 0..{self.dist.size - 1}"
            )
        self._excluded.add(rank)
        survivors = self.survivors
        if not survivors:
            raise PartitionError("cannot quarantine the last surviving rank")
        if all(self.models[r].is_ready for r in survivors):
            self.dist = self._repartition()
            return self.dist
        current = self.dist.sizes
        alive_total = sum(current[r] for r in survivors)
        if alive_total > 0:
            shares = [
                self.total * current[r] / alive_total if r in survivors else 0.0
                for r in range(self.dist.size)
            ]
        else:
            shares = [
                self.total / len(survivors) if r in survivors else 0.0
                for r in range(self.dist.size)
            ]
        self.dist = Distribution.from_sizes(
            round_preserving_sum(shares, self.total)
        )
        return self.dist

    def _repartition(self) -> Distribution:
        """Run the partitioner, restricted to the survivors if any died.

        Convergence certificates attached by the partitioner are
        harvested into :attr:`certs` (and into the optional report), so
        an uncertified rebalance leaves a trace instead of being
        silently adopted.
        """
        if not self._excluded:
            dist = self.partition(self.total, self.models)
        else:
            from repro.core.partition.resilient import partition_survivors

            dist = partition_survivors(
                self.total, self.models, self.survivors, self.partition
            )
        cert = getattr(dist, "convergence", None)
        if cert is not None:
            self.certs.append(cert)
            if self.report is not None and hasattr(self.report, "record_cert"):
                self.report.record_cert(cert, context="load-balancer")
        return dist

    def iterate(self, observed_times: Sequence[float]) -> Distribution:
        """Process one application iteration's timings.

        Args:
            observed_times: per-rank wall times of the iteration just
                finished, measured under the current distribution.  Ranks
                with zero-sized parts may report 0.

        Returns:
            The distribution the *next* iteration should use (unchanged if
            the observed imbalance is within the threshold).

        Feeding an observation is O(1); the models refit lazily, when (and
        only when) a rebalance actually evaluates them.
        """
        if len(observed_times) != self.dist.size:
            raise PartitionError(
                f"{len(observed_times)} times for {self.dist.size} parts"
            )
        self._iteration += 1
        sizes = self.dist.sizes
        for rank, (d, t) in enumerate(zip(sizes, observed_times)):
            if d > 0 and t > 0.0 and rank not in self._excluded:
                self.models[rank].update(MeasurementPoint(d=d, t=t, reps=1, ci=0.0))
        active_times = [
            t for rank, (d, t) in enumerate(zip(sizes, observed_times))
            if d > 0 and rank not in self._excluded
        ]
        tmax = max(active_times) if active_times else 0.0
        tmin = min(active_times) if active_times else 0.0
        imbalance = (tmax - tmin) / tmax if tmax > 0.0 else 0.0
        rebalanced = False
        ready = all(self.models[r].is_ready for r in self.survivors)
        if imbalance > self.threshold and ready:
            self.dist = self._repartition()
            rebalanced = True
        self.history.append(
            BalanceStep(
                iteration=self._iteration,
                sizes=sizes,
                times=list(observed_times),
                imbalance=imbalance,
                rebalanced=rebalanced,
                new_sizes=self.dist.sizes,
            )
        )
        return self.dist
