"""Redistribution plans between contiguous distributions.

Row-distributed applications (Jacobi, stencils) keep their data in
contiguous rank-ordered slabs.  When the load balancer changes the slab
sizes, the rows in the overlap of an old owner's range and a new owner's
range must travel between exactly those two ranks.  This module computes
that *plan* -- the list of (source, destination, units) transfers -- which
the application simulations price on the network and a real implementation
would turn into MPI messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import PartitionError


@dataclass(frozen=True)
class Transfer:
    """One point-to-point move of ``units`` contiguous items.

    Attributes:
        source: rank that currently owns the items.
        dest: rank that will own them under the new distribution.
        units: number of computation units (e.g. matrix rows) moved.
    """

    source: int
    dest: int
    units: int

    def __post_init__(self) -> None:
        if self.source < 0 or self.dest < 0:
            raise PartitionError(f"ranks must be non-negative: {self}")
        if self.source == self.dest:
            raise PartitionError(f"self-transfer is not a transfer: {self}")
        if self.units <= 0:
            raise PartitionError(f"transfers must move at least one unit: {self}")


def _offsets(sizes: Sequence[int]) -> List[int]:
    out = [0]
    for d in sizes:
        if d < 0:
            raise PartitionError(f"sizes must be non-negative: {list(sizes)}")
        out.append(out[-1] + d)
    return out


def redistribution_plan(
    old_sizes: Sequence[int],
    new_sizes: Sequence[int],
) -> List[Transfer]:
    """Transfers turning one contiguous layout into another.

    Both layouts must distribute the same total over the same number of
    ranks.  The plan is minimal for contiguous layouts: a unit moves if
    and only if its owner changes, and each (source, dest) pair appears at
    most once.
    """
    if len(old_sizes) != len(new_sizes):
        raise PartitionError(
            f"layouts have different rank counts: {len(old_sizes)} vs {len(new_sizes)}"
        )
    old_off = _offsets(old_sizes)
    new_off = _offsets(new_sizes)
    if old_off[-1] != new_off[-1]:
        raise PartitionError(
            f"layouts distribute different totals: {old_off[-1]} vs {new_off[-1]}"
        )
    plan: List[Transfer] = []
    p = len(old_sizes)
    for src in range(p):
        for dst in range(p):
            if src == dst:
                continue
            lo = max(old_off[src], new_off[dst])
            hi = min(old_off[src + 1], new_off[dst + 1])
            if hi > lo:
                plan.append(Transfer(source=src, dest=dst, units=hi - lo))
    return plan


def moved_units(plan: Sequence[Transfer]) -> int:
    """Total units travelling under a plan."""
    return sum(t.units for t in plan)


def apply_plan_cost(
    comm,
    plan: Sequence[Transfer],
    bytes_per_unit: float,
) -> None:
    """Charge a plan's transfers on a simulated communicator.

    ``comm`` is a :class:`repro.mpi.comm.SimCommunicator`; each transfer
    becomes one blocking point-to-point message.
    """
    for transfer in plan:
        comm.send(transfer.source, transfer.dest, transfer.units * bytes_per_unit)
