"""Partitioning over the surviving subset of a degraded platform.

When devices are quarantined mid-run (crashes, exhausted retry budgets --
see :mod:`repro.faults`), the partitioners must keep producing valid
distributions for the *full* rank space: applications index buffers,
halos and collectives by original rank, so a survivor-only distribution
with renumbered ranks would be useless to them.  This module provides the
two operations the resilient runtime needs:

* :func:`partition_survivors` -- run any static partitioner over the
  surviving models only, then expand the result back to the full rank
  space with zero-size parts for quarantined ranks;
* :func:`redistribute_to_survivors` -- given the distribution an
  application was running with when a rank died, compute the new
  distribution over the survivors *and* the contiguous-layout transfer
  plan that evacuates the dead rank's slab.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution, Part
from repro.core.partition.geometric import partition_geometric
from repro.core.partition.redistribution import Transfer, redistribution_plan
from repro.errors import PartitionError

#: A static partitioner: (total, models) -> Distribution.
Partitioner = Callable[[int, Sequence[PerformanceModel]], Distribution]


def _check_survivors(survivors: Sequence[int], size: int) -> List[int]:
    ranks = list(survivors)
    if not ranks:
        raise PartitionError("no surviving ranks to partition over")
    if len(set(ranks)) != len(ranks):
        raise PartitionError(f"duplicate survivor ranks: {ranks}")
    for r in ranks:
        if not 0 <= r < size:
            raise PartitionError(
                f"survivor rank {r} out of range for {size} models"
            )
    return sorted(ranks)


def partition_survivors(
    total: int,
    models: Sequence[PerformanceModel],
    survivors: Sequence[int],
    partitioner: Partitioner = partition_geometric,
) -> Distribution:
    """Partition ``total`` units over the surviving ranks only.

    Args:
        total: the problem size ``D`` in computation units.
        models: one model per *original* rank (quarantined ones included;
            they are never evaluated).
        survivors: ranks still alive, e.g.
            ``ResilienceReport.survivors``.
        partitioner: any static partitioner taking ``(total, models)``.

    Returns:
        A :class:`Distribution` over ``len(models)`` parts summing to
        ``total``, with zero-size parts at every quarantined rank.
    """
    if not models:
        raise PartitionError("need at least one model")
    alive = _check_survivors(survivors, len(models))
    compact = partitioner(total, [models[r] for r in alive])
    by_rank = dict(zip(alive, compact.parts))
    return Distribution(
        by_rank.get(r, Part(0, 0.0)) for r in range(len(models))
    )


def redistribute_to_survivors(
    current: Distribution,
    models: Sequence[PerformanceModel],
    survivors: Sequence[int],
    partitioner: Partitioner = partition_geometric,
) -> "Tuple[Distribution, List[Transfer]]":
    """Re-balance a running distribution after ranks were quarantined.

    Computes the survivor-balanced distribution of ``current.total`` and
    the contiguous-layout transfer plan from ``current`` to it.  Dead
    ranks appear only as *sources* in the plan (their slabs are
    evacuated); in a real deployment those transfers would be served from
    the last checkpoint of the dead rank's data.

    Returns:
        ``(new_distribution, plan)``.
    """
    if len(models) != current.size:
        raise PartitionError(
            f"{len(models)} models for a distribution of size {current.size}"
        )
    new_dist = partition_survivors(
        current.total, models, survivors, partitioner
    )
    plan = redistribution_plan(current.sizes, new_dist.sizes)
    return new_dist, plan
