"""The basic partitioning algorithm over constant performance models.

Divides the total problem size in proportion to the (constant) speeds of
the processes.  Fastest and least accurate of the three algorithms; correct
exactly when speeds really do not depend on problem size.

Any performance model can be supplied -- its speed is simply sampled at the
even share ``D / p``, which is how a constant approximation is extracted
from a functional model when a caller insists on the basic algorithm.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.models.base import PerformanceModel
from repro.core.partition.batch import model_times
from repro.core.partition.cert import ConvergenceCert, certify
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.core.partition.validate import validate_partition_inputs
from repro.errors import PartitionError


def partition_constant(
    total: int,
    models: Sequence[PerformanceModel],
    strict: bool = False,
    certs: Optional[List[ConvergenceCert]] = None,
) -> Distribution:
    """Partition ``total`` units in proportion to constant speeds.

    Args:
        total: the problem size ``D`` in computation units.
        models: one performance model per process (each must be ready).
        strict: accepted for interface uniformity with the iterative
            partitioners; the basic algorithm is closed-form and its cert
            is always converged.
        certs: optional sink for the :class:`ConvergenceCert` (also
            attached to the returned distribution as ``.convergence``).

    Returns:
        A :class:`Distribution` whose parts sum exactly to ``total``, with
        predicted times from the models.
    """
    total = validate_partition_inputs(total, models)
    size = len(models)
    _cert = ConvergenceCert("basic", True, 0, 0, 0.0, 0.0,
                            "closed-form proportional split")
    if total == 0:
        return certify(
            Distribution(Part(0, 0.0) for _ in range(size)),
            _cert, strict, certs,
        )
    probe = max(total / size, 1.0)
    # One batched probe evaluation covers every model's constant speed.
    probe_times = model_times(models, [probe] * size)
    if np.any(probe_times <= 0.0):
        rank = int(np.argmax(probe_times <= 0.0))
        raise PartitionError(
            f"model {models[rank]!r} predicts non-positive speed at size {probe}"
        )
    speeds = probe / probe_times
    total_speed = float(np.sum(speeds))
    shares = [total * float(s) / total_speed for s in speeds]
    sizes = round_preserving_sum(shares, total)
    times = model_times(models, [float(d) for d in sizes])
    dist = Distribution(
        Part(d, float(times[i]) if d > 0 else 0.0) for i, d in enumerate(sizes)
    )
    return certify(dist, _cert, strict, certs)
