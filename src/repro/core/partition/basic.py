"""The basic partitioning algorithm over constant performance models.

Divides the total problem size in proportion to the (constant) speeds of
the processes.  Fastest and least accurate of the three algorithms; correct
exactly when speeds really do not depend on problem size.

Any performance model can be supplied -- its speed is simply sampled at the
even share ``D / p``, which is how a constant approximation is extracted
from a functional model when a caller insists on the basic algorithm.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.models.base import PerformanceModel
from repro.core.partition.dist import Distribution, Part, round_preserving_sum
from repro.errors import PartitionError


def partition_constant(
    total: int,
    models: Sequence[PerformanceModel],
) -> Distribution:
    """Partition ``total`` units in proportion to constant speeds.

    Args:
        total: the problem size ``D`` in computation units.
        models: one performance model per process (each must be ready).

    Returns:
        A :class:`Distribution` whose parts sum exactly to ``total``, with
        predicted times from the models.
    """
    if total < 0:
        raise PartitionError(f"total must be non-negative, got {total}")
    if not models:
        raise PartitionError("need at least one model")
    size = len(models)
    if total == 0:
        return Distribution(Part(0, 0.0) for _ in range(size))
    probe = max(total / size, 1.0)
    speeds = []
    for model in models:
        s = model.speed(probe)
        if s <= 0.0:
            raise PartitionError(f"model {model!r} predicts non-positive speed {s}")
        speeds.append(s)
    total_speed = sum(speeds)
    shares = [total * s / total_speed for s in speeds]
    sizes = round_preserving_sum(shares, total)
    return Distribution(
        Part(d, models[i].time(d) if d > 0 else 0.0) for i, d in enumerate(sizes)
    )
