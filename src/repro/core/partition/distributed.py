"""Distributed dynamic data partitioning (ref. [11] of the paper).

:class:`~repro.core.partition.dynamic.DynamicPartitioner` is written as a
centralised loop; the algorithm of Lastovetsky--Reddy's Euro-Par 2009 paper
(ref. [11]) is the *distributed* formulation the MPI implementation uses:

1. every process benchmarks the kernel at its current share;
2. the processes **allgather their newest measurement point** -- a few
   bytes each, not whole models;
3. every process appends the received points to its local replicas of all
   partial models and runs the (deterministic) partitioning algorithm
   locally, arriving at the same distribution without a coordinator;
4. repeat until the distribution stabilises.

The simulation executes exactly that protocol: the benchmark time lands on
each rank's virtual clock, the allgather of points is priced on the
network, and the result records how much *protocol* time the distributed
partitioning itself consumed -- the quantity that makes the low-cost claim
of the dynamic algorithms concrete.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.benchmark import PlatformBenchmark
from repro.core.models.base import PerformanceModel
from repro.core.partition.cert import ConvergenceCert
from repro.core.partition.dist import Distribution
from repro.core.partition.dynamic import PartitionFunction
from repro.core.partition.validate import validate_total
from repro.errors import ConvergenceError, ConvergenceWarning
from repro.mpi.comm import SimCommunicator
from repro.mpi.network import Network

#: Wire size of one measurement point: d (int64), t, ci (doubles), reps (int32).
POINT_BYTES = 8 + 8 + 8 + 4


@dataclass(frozen=True)
class DistributedPartitionResult:
    """Outcome of a distributed dynamic partitioning run.

    Attributes:
        final: the agreed distribution.
        iterations: benchmark+exchange+repartition rounds executed.
        converged: whether the accuracy criterion was met.
        benchmark_cost: kernel-seconds spent measuring (all ranks).
        protocol_time: virtual seconds the *exchange* steps consumed on the
            slowest rank -- the distributed algorithm's own overhead.
        total_time: virtual makespan of the whole partitioning phase.
        cert: the :class:`~repro.core.partition.ConvergenceCert` for the
            protocol's outer loop (None for legacy constructions).
    """

    final: Distribution
    iterations: int
    converged: bool
    benchmark_cost: float
    protocol_time: float
    total_time: float
    cert: Optional[ConvergenceCert] = None


def distributed_partition(
    bench: PlatformBenchmark,
    partition: PartitionFunction,
    model_factory: Callable[[], PerformanceModel],
    total: int,
    eps: float = 0.05,
    max_iterations: int = 25,
    network: Optional[Network] = None,
    strict: bool = False,
) -> DistributedPartitionResult:
    """Run the distributed dynamic partitioning protocol.

    Args:
        bench: the platform benchmark (defines ranks and kernels).
        partition: the deterministic partitioning algorithm every rank runs
            on its local model replicas.
        model_factory: fresh-model constructor (piecewise FPM in ref. [11]).
        total: the problem size ``D`` in computation units.
        eps: stop when the largest per-rank share change, relative to the
            even share, falls below this.
        max_iterations: safety cap.
        network: communication model (platform-aware default).
        strict: raise :class:`~repro.errors.ConvergenceError` when the
            cap is exhausted before the shares stabilise; with
            ``strict=False`` (default) a
            :class:`~repro.errors.ConvergenceWarning` is emitted and the
            last agreed distribution is returned with a non-converged
            cert.

    Returns:
        A :class:`DistributedPartitionResult`.
    """
    total = validate_total(total)
    size = bench.size
    net = network if network is not None else Network(platform=bench.platform)
    comm = SimCommunicator(size, network=net)
    # Every rank holds replicas of all models; since updates are identical,
    # one shared replica set represents them all.
    models: List[PerformanceModel] = [model_factory() for _ in range(size)]

    dist = Distribution.even(total, size)
    benchmark_cost = 0.0
    protocol_time = 0.0
    converged = False
    iterations = 0
    change = float("inf")
    for iterations in range(1, max_iterations + 1):
        # 1. Local benchmarks at the current shares (synchronised).
        sizes: List[Optional[int]] = []
        for rank, part in enumerate(dist.parts):
            if part.d > 0:
                sizes.append(part.d)
            elif not models[rank].is_ready:
                sizes.append(1)
            else:
                sizes.append(None)
        points = bench.measure_group(sizes)
        for rank, point in enumerate(points):
            if point is not None:
                comm.compute(rank, point.benchmark_cost)
                benchmark_cost += point.benchmark_cost
        # 2. Allgather of the newest points (the protocol's only traffic).
        before = comm.max_time()
        comm.allgatherv(
            [POINT_BYTES if p is not None else 0 for p in points]
        )
        protocol_time += comm.max_time() - before
        # 3. Local model updates + local (deterministic) repartitioning.
        for model, point in zip(models, points):
            if point is not None:
                model.update(point)
        new_dist = partition(total, models)
        # 4. Convergence test on the share change.
        change = new_dist.max_relative_change(dist)
        if change <= eps:
            dist = new_dist
            converged = True
            break
        dist = new_dist

    cert = ConvergenceCert(
        algorithm="distributed",
        converged=converged,
        iterations=iterations,
        max_iter=max_iterations,
        residual=change,
        tolerance=eps,
        detail="" if converged else
        "round cap hit before the shares stabilised",
    )
    if not converged:
        if strict:
            raise ConvergenceError(cert.summary(), cert=cert, partial=dist)
        warnings.warn(cert.summary(), ConvergenceWarning, stacklevel=2)
    return DistributedPartitionResult(
        final=dist,
        iterations=iterations,
        converged=converged,
        benchmark_cost=benchmark_cost,
        protocol_time=protocol_time,
        total_time=comm.max_time(),
        cert=cert,
    )
