"""Boundary validation shared by all partitioners.

Every partitioning entry point (`basic`, `geometric`, `numerical`, the
dynamic and distributed loops) funnels its inputs through
:func:`validate_partition_inputs` before iterating, so malformed input
fails fast with one actionable :class:`~repro.errors.PartitionError`
instead of surfacing deep inside a solver as a NaN bracket, an index
error, or -- worst -- a silently wrong partition.

Checks, in order:

1. the model list is non-empty;
2. the problem size is a non-negative finite integral number (NaN,
   infinities, negatives and fractional totals are rejected);
3. each model has enough measured points to fit (``min_points``);
4. each model's fitted time function actually covers the requested
   total: it must evaluate to a finite non-negative time at ``total``.
   A model that raises or yields NaN there has a domain that excludes
   the partition range -- a benchmark/partition mismatch.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import PartitionError


def validate_total(total) -> int:
    """Validate a problem size and return it as an ``int``.

    Rejects NaN/inf, negatives and non-integral values with a
    :class:`~repro.errors.PartitionError` naming the offending value.
    """
    if isinstance(total, bool):
        raise PartitionError(f"problem size must be a number, got {total!r}")
    try:
        as_float = float(total)
    except (TypeError, ValueError):
        raise PartitionError(
            f"problem size must be a number, got {total!r}"
        ) from None
    if math.isnan(as_float) or math.isinf(as_float):
        raise PartitionError(
            f"problem size must be finite, got {as_float!r}; check the "
            "benchmark configuration that produced it"
        )
    if as_float < 0:
        raise PartitionError(
            f"problem size must be non-negative, got {as_float!r}"
        )
    if as_float != int(as_float):
        raise PartitionError(
            f"problem size must be integral, got {as_float!r}; round it to "
            "a whole number of computation units before partitioning"
        )
    return int(as_float)


def validate_partition_inputs(total, models: Sequence) -> int:
    """Validate ``(total, models)`` for any partitioner; return ``int(total)``.

    Raises :class:`~repro.errors.PartitionError` with an actionable
    message on empty model lists, bad problem sizes, models with too few
    measured points, and models whose time function cannot cover the
    requested size (see module docstring).  A ``total`` of 0 skips the
    per-model checks -- the trivial all-zero partition is always valid.
    """
    if not models:
        raise PartitionError(
            "cannot partition: the model list is empty; build at least one "
            "performance model (e.g. via build_full_models) first"
        )
    n = validate_total(total)
    if n == 0:
        return n
    for rank, model in enumerate(models):
        count = len(getattr(model, "points", ()))
        needed = getattr(model, "min_points", 1)
        if count < needed:
            raise PartitionError(
                f"model for rank {rank} has {count} measured point(s) but "
                f"needs at least {needed} to fit; benchmark more problem "
                "sizes for this device or fall back to a simpler model "
                "(e.g. 'constant')"
            )
        try:
            t = model.time(n)
        except Exception as exc:
            size_range = getattr(model, "size_range", None)
            raise PartitionError(
                f"model for rank {rank} cannot evaluate the requested "
                f"total {n} ({type(exc).__name__}: {exc}); its measured "
                f"domain is {size_range}; benchmark sizes covering the "
                "partition range or fall back to a simpler model"
            ) from exc
        if not math.isfinite(t) or t < 0.0:
            raise PartitionError(
                f"model for rank {rank} predicts time {t!r} at the "
                f"requested total {n}; its domain excludes the partition "
                "range -- re-benchmark this device or fall back to a "
                "simpler model"
            )
    return n
